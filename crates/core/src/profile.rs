//! Opt-in per-PC execution profile of the µop interpreter.
//!
//! When a run is profiled (see [`crate::Processor::run_profiled`]),
//! every retired µop bumps a [`PcCounter`] slot indexed by program
//! counter: issues, clocks (including the branch-flush penalty a taken
//! branch at that PC caused) and thread-operations. Because the
//! predecoded µop table is 1:1 with the source [`simt_isa::Program`],
//! a PC is directly an instruction index — hotspots name source
//! instructions without any side table, and for compiler-built kernels
//! the compiler's PC→IR-value source map layers on top.
//!
//! Cycle attribution is complete by construction: every clock of
//! [`crate::ExecStats::cycles`] except the initial pipeline fill
//! (`fill_cycles`, which precedes the first instruction) is charged to
//! exactly one PC, so `fill_cycles + Σ counters.cycles == cycles`.

use serde::{Deserialize, Serialize};

/// Execution counters of one program counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PcCounter {
    /// Times the instruction issued (loop iterations re-issue).
    pub issues: u64,
    /// Clocks charged to the PC: the instruction's own clocks plus the
    /// pipeline-flush penalty of a taken branch at this PC.
    pub cycles: u64,
    /// Thread-operations retired (active threads summed over operation
    /// and memory issues; 0 for control instructions).
    pub thread_ops: u64,
}

impl PcCounter {
    /// Field-wise accumulate (exhaustive destructuring — a new counter
    /// field without a merge update is a compile error).
    pub fn merge(&mut self, other: &Self) {
        let PcCounter {
            issues,
            cycles,
            thread_ops,
        } = other;
        self.issues += issues;
        self.cycles += cycles;
        self.thread_ops += thread_ops;
    }
}

/// Per-PC histogram of one (or several merged) profiled runs.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PcProfile {
    /// One counter slot per program counter (= instruction index).
    pub counters: Vec<PcCounter>,
    /// Clocks spent filling the fetch pipeline before the first issue
    /// — the only cycles not attributable to a PC.
    pub fill_cycles: u64,
}

impl PcProfile {
    /// An empty profile with one slot per instruction.
    pub fn with_len(len: usize) -> Self {
        PcProfile {
            counters: vec![PcCounter::default(); len],
            fill_cycles: 0,
        }
    }

    /// Number of PC slots.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Whether the profile has no slots.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Charge one issue at `pc`: `cycles` clocks and `thread_ops`
    /// thread-operations.
    #[inline]
    pub fn record(&mut self, pc: usize, cycles: u64, thread_ops: u64) {
        if let Some(c) = self.counters.get_mut(pc) {
            c.issues += 1;
            c.cycles += cycles;
            c.thread_ops += thread_ops;
        }
    }

    /// Accumulate another profile (e.g. repeated launches of the same
    /// kernel). Slot counts may differ; the result covers the longer.
    pub fn merge(&mut self, other: &Self) {
        if other.counters.len() > self.counters.len() {
            self.counters
                .resize(other.counters.len(), PcCounter::default());
        }
        for (dst, src) in self.counters.iter_mut().zip(&other.counters) {
            dst.merge(src);
        }
        self.fill_cycles += other.fill_cycles;
    }

    /// Clocks charged to PCs (everything except pipeline fill).
    pub fn attributed_cycles(&self) -> u64 {
        self.counters.iter().map(|c| c.cycles).sum()
    }

    /// Total clocks the profile accounts for, fill included.
    pub fn total_cycles(&self) -> u64 {
        self.fill_cycles + self.attributed_cycles()
    }

    /// Fraction of total clocks attributed to a specific PC (1.0 minus
    /// the fill share; 0 for an empty run).
    pub fn attribution_fraction(&self) -> f64 {
        let total = self.total_cycles();
        if total == 0 {
            0.0
        } else {
            self.attributed_cycles() as f64 / total as f64
        }
    }

    /// Per-PC cycle movement against a baseline profile of the same
    /// kernel (another shape, another revision): `(pc, baseline_cycles,
    /// current_cycles)` for every PC whose charge differs, ascending by
    /// PC. Missing slots on either side count as zero, so profiles of
    /// different lengths diff cleanly.
    pub fn cycle_deltas(&self, baseline: &Self) -> Vec<(usize, u64, u64)> {
        let n = self.counters.len().max(baseline.counters.len());
        (0..n)
            .filter_map(|pc| {
                let b = baseline.counters.get(pc).map(|c| c.cycles).unwrap_or(0);
                let c = self.counters.get(pc).map(|c| c.cycles).unwrap_or(0);
                (b != c).then_some((pc, b, c))
            })
            .collect()
    }

    /// The `n` hottest PCs by charged cycles, hottest first (ties break
    /// toward the lower PC). PCs that never issued are skipped.
    pub fn hottest(&self, n: usize) -> Vec<(usize, PcCounter)> {
        let mut pcs: Vec<(usize, PcCounter)> = self
            .counters
            .iter()
            .enumerate()
            .filter(|(_, c)| c.issues > 0)
            .map(|(pc, c)| (pc, *c))
            .collect();
        pcs.sort_by(|a, b| b.1.cycles.cmp(&a.1.cycles).then(a.0.cmp(&b.0)));
        pcs.truncate(n);
        pcs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_hottest() {
        let mut p = PcProfile::with_len(4);
        p.fill_cycles = 2;
        p.record(0, 1, 0);
        for _ in 0..10 {
            p.record(2, 4, 16);
        }
        p.record(3, 1, 0);
        p.record(3, 1, 0);
        assert_eq!(p.attributed_cycles(), 1 + 40 + 2);
        assert_eq!(p.total_cycles(), 45);
        let hot = p.hottest(2);
        assert_eq!(hot.len(), 2);
        assert_eq!(hot[0].0, 2);
        assert_eq!(hot[0].1.issues, 10);
        assert_eq!(hot[0].1.thread_ops, 160);
        assert_eq!(hot[1].0, 3);
        // PC 1 never issued: excluded even when asking for more.
        assert_eq!(p.hottest(10).len(), 3);
    }

    #[test]
    fn out_of_range_pc_is_ignored() {
        let mut p = PcProfile::with_len(1);
        p.record(7, 5, 5);
        assert_eq!(p.attributed_cycles(), 0);
    }

    #[test]
    fn merge_extends_and_adds() {
        let mut a = PcProfile::with_len(2);
        a.fill_cycles = 2;
        a.record(1, 3, 4);
        let mut b = PcProfile::with_len(3);
        b.fill_cycles = 2;
        b.record(1, 3, 4);
        b.record(2, 9, 0);
        a.merge(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.fill_cycles, 4);
        assert_eq!(a.counters[1].issues, 2);
        assert_eq!(a.counters[1].cycles, 6);
        assert_eq!(a.counters[2].cycles, 9);
    }

    #[test]
    fn cycle_deltas_name_moved_pcs_across_lengths() {
        let mut base = PcProfile::with_len(2);
        base.record(0, 5, 0);
        base.record(1, 3, 0);
        let mut cur = PcProfile::with_len(3);
        cur.record(0, 5, 0); // unchanged: not reported
        cur.record(1, 7, 0); // grew
        cur.record(2, 2, 0); // new PC, baseline side is zero
        assert_eq!(cur.cycle_deltas(&base), vec![(1, 3, 7), (2, 0, 2)]);
        // Symmetric view: shrinkage reports the same PCs, sides swapped.
        assert_eq!(base.cycle_deltas(&cur), vec![(1, 7, 3), (2, 2, 0)]);
        assert!(base.cycle_deltas(&base).is_empty());
    }

    #[test]
    fn serde_roundtrip() {
        let mut p = PcProfile::with_len(2);
        p.fill_cycles = 2;
        p.record(0, 3, 8);
        let json = serde_json::to_string(&p).unwrap();
        let back: PcProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
