//! The streaming multiprocessor: one SM of 16 SPs executing in lockstep
//! (§2–§3). Two execution modes share one semantic core:
//!
//! * **Functional** — computes results per thread row and accounts clocks
//!   with the closed-form counter arithmetic of
//!   [`InstructionTiming`];
//!   optionally lane-parallel via rayon for large thread counts.
//! * **CycleAccurate** — additionally steps the
//!   [`PipelineControl`] counter
//!   hardware clock by clock for every instruction and cross-checks it
//!   against the closed form (a property the tests also pin).
//!
//! Both modes produce identical results and identical [`ExecStats`].
//!
//! Two *interpreters* also share that semantic core (see
//! `docs/SIMULATOR.md`):
//!
//! * the **predecoded** fast path ([`Processor::run`]) executes the
//!   cached [`DecodedProgram`] µops with per-opcode lane loops,
//!   monomorphized over (trace on/off × mode) so the hot loop carries
//!   no trace or cross-check branches;
//! * the **reference** path ([`Processor::run_reference`]) interprets
//!   the [`Program`] directly, re-extracting fields per dynamic
//!   instruction the way the seed simulator did — kept as the
//!   differential-testing oracle and the host-throughput baseline.
//!
//! The two must never diverge: results, traces and [`ExecStats`] are
//! pinned bit-identical by `tests/prop_decode.rs`.

use crate::alu::{Datapath, Operands};
use crate::config::ProcessorConfig;
use crate::decode::{validate_program, DecodedProgram, Uop};
use crate::error::{ConfigError, ExecError, LoadError};
use crate::profile::PcProfile;
use crate::regfile::RegisterFile;
use crate::sequencer::{InstructionTiming, PipelineControl, FETCH_PIPELINE_DEPTH};
use crate::shared::SharedMemory;
use crate::stats::ExecStats;
use rayon::prelude::*;
use simt_datapath::{logic::LogicOp, ShiftKind, Signedness};
use simt_isa::{CycleClass, Guard, Instruction, Opcode, Program};
use std::sync::Arc;

/// Execution mode selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Closed-form cycle accounting (fast).
    Functional,
    /// Clock-stepped counter hardware, cross-checked (slower, used by
    /// verification tests and the cycle-model benches).
    CycleAccurate,
}

/// Options for one run.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Watchdog: abort after this many clocks.
    pub max_cycles: u64,
    /// Execution mode.
    pub mode: ExecMode,
    /// Execute thread lanes in parallel with rayon when the active
    /// thread count reaches
    /// [`ProcessorConfig::parallel_threshold`] (results are
    /// bit-identical; stores stay in thread order).
    pub parallel: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            max_cycles: 200_000_000,
            mode: ExecMode::Functional,
            parallel: false,
        }
    }
}

impl RunOptions {
    /// Cycle-accurate verification run.
    pub fn cycle_accurate() -> Self {
        RunOptions {
            mode: ExecMode::CycleAccurate,
            ..Default::default()
        }
    }

    /// Lane-parallel functional run. Fan-out additionally requires the
    /// active thread count to reach
    /// [`ProcessorConfig::parallel_threshold`], whose default disables
    /// it (measured: the vendored sequential rayon shim never wins —
    /// see `BENCH_sim.json`).
    pub fn parallel() -> Self {
        RunOptions {
            parallel: true,
            ..Default::default()
        }
    }
}

/// One issued instruction in an execution trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Program counter of the instruction.
    pub pc: usize,
    /// Opcode issued.
    pub opcode: Opcode,
    /// Active threads after dynamic scaling.
    pub active: usize,
    /// Clocks the instruction occupied the machine.
    pub clocks: u64,
    /// Taken-branch target, if the instruction redirected the PC
    /// (zero-overhead loop back-edges are not branches and appear as
    /// `None`).
    pub jumped: Option<usize>,
}

/// A full architectural checkpoint (serializable).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Snapshot {
    /// Configuration the snapshot was taken under.
    pub config: ProcessorConfig,
    /// Register file contents, `[thread][reg]` row-major.
    pub regs: Vec<u32>,
    /// Predicate nibbles, one per thread.
    pub preds: Vec<u8>,
    /// Shared memory contents.
    pub shared: Vec<u32>,
    /// Loaded program, if any.
    pub program: Option<Program>,
}

#[derive(Debug, Clone, Copy)]
struct LoopFrame {
    start: usize,
    end: usize,
    remaining: u32,
}

/// One SIMT processor instance.
#[derive(Debug, Clone)]
pub struct Processor {
    config: ProcessorConfig,
    regfile: RegisterFile,
    shared: SharedMemory,
    datapath: Datapath,
    /// The loaded program, predecoded (kept across [`Processor::reset`]).
    decoded: Option<Arc<DecodedProgram>>,
    /// Reusable `sts` gather buffer: `(addr, value)` per passing lane,
    /// in thread order — no per-store heap allocation in the run loop.
    sts_scratch: Vec<Option<(usize, u32)>>,
}

impl Processor {
    /// Build a processor for `config`.
    pub fn new(config: ProcessorConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        Ok(Processor {
            regfile: RegisterFile::new(&config),
            shared: SharedMemory::new(config.shared_words),
            datapath: Datapath::new(),
            decoded: None,
            sts_scratch: Vec::new(),
            config,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &ProcessorConfig {
        &self.config
    }

    /// The loaded program, if any.
    pub fn program(&self) -> Option<&Program> {
        self.decoded.as_ref().map(|d| d.program().as_ref())
    }

    /// The predecoded form of the loaded program, if any — shareable
    /// with other processors of the same configuration via
    /// [`Processor::load_decoded`].
    pub fn decoded(&self) -> Option<&Arc<DecodedProgram>> {
        self.decoded.as_ref()
    }

    /// Host access to the register file.
    pub fn regfile(&self) -> &RegisterFile {
        &self.regfile
    }

    /// Mutable host access to the register file (data upload).
    pub fn regfile_mut(&mut self) -> &mut RegisterFile {
        &mut self.regfile
    }

    /// Host access to shared memory.
    pub fn shared(&self) -> &SharedMemory {
        &self.shared
    }

    /// Mutable host access to shared memory.
    pub fn shared_mut(&mut self) -> &mut SharedMemory {
        &mut self.shared
    }

    /// Validate a program against this build, load it into I-Mem (the
    /// I-Mem is "externally re-loadable", Fig. 2) and predecode it into
    /// the µop cache the run loop executes.
    pub fn load_program(&mut self, program: &Program) -> Result<(), LoadError> {
        validate_program(program, &self.config)?;
        let program = Arc::new(program.clone());
        self.decoded = Some(Arc::new(DecodedProgram::decode(program, &self.config)));
        Ok(())
    }

    /// Load an already-decoded program (validated against this build),
    /// sharing the decode instead of re-deriving it — the path the
    /// runtime's compile cache and multi-core systems use. The decode's
    /// configuration must be
    /// [artifact-compatible](ProcessorConfig::artifact_compatible) with
    /// this processor's (the fan-out threshold may differ — this
    /// processor's own setting governs the run).
    pub fn load_decoded(&mut self, decoded: Arc<DecodedProgram>) -> Result<(), LoadError> {
        if !decoded.config().artifact_compatible(&self.config) {
            return Err(LoadError::ConfigMismatch);
        }
        validate_program(decoded.program(), &self.config)?;
        self.decoded = Some(decoded);
        Ok(())
    }

    /// Reset architectural state (registers, predicates, shared memory),
    /// keeping the loaded program and its decode.
    pub fn reset(&mut self) {
        self.regfile = RegisterFile::new(&self.config);
        self.shared = SharedMemory::new(self.config.shared_words);
    }

    /// Snapshot the full architectural state (registers, predicates,
    /// shared memory, loaded program) — checkpointing for long
    /// simulations and for A/B experiments from a common state.
    pub fn snapshot(&self) -> Snapshot {
        let (regs, preds) = self.regfile.raw();
        Snapshot {
            config: self.config.clone(),
            regs: regs.to_vec(),
            preds: preds.to_vec(),
            shared: self.shared.as_slice().to_vec(),
            program: self.decoded.as_ref().map(|d| d.program().as_ref().clone()),
        }
    }

    /// Restore a snapshot taken from a processor with the same
    /// configuration.
    ///
    /// # Panics
    /// If the snapshot's configuration differs from this processor's.
    pub fn restore(&mut self, snap: &Snapshot) {
        assert_eq!(
            snap.config, self.config,
            "snapshot is from a different configuration"
        );
        self.regfile.restore_raw(&snap.regs, &snap.preds);
        self.shared = SharedMemory::new(self.config.shared_words);
        self.shared
            .load_words(0, &snap.shared)
            .expect("snapshot memory fits by construction");
        self.decoded = snap.program.as_ref().map(|p| {
            // The snapshot came from a processor of this configuration,
            // so the program re-validates by construction.
            Arc::new(DecodedProgram::decode(Arc::new(p.clone()), &self.config))
        });
    }

    /// Execute the loaded program to `exit` (the predecoded fast path).
    pub fn run(&mut self, opts: RunOptions) -> Result<ExecStats, ExecError> {
        self.run_inner(opts, &mut None)
    }

    /// Execute with a per-instruction trace (issued PC, opcode, active
    /// thread count, clocks, branch target) — the simulator's equivalent
    /// of a logic-analyzer capture on the instruction block.
    pub fn run_traced(
        &mut self,
        opts: RunOptions,
    ) -> Result<(ExecStats, Vec<TraceEntry>), ExecError> {
        let mut trace = Some(Vec::new());
        let stats = self.run_inner(opts, &mut trace)?;
        Ok((stats, trace.unwrap()))
    }

    /// Execute with an opt-in per-PC profile: cycles, issues and
    /// thread-operations charged per program counter (see
    /// [`PcProfile`]). The µop table is 1:1 with the source program, so
    /// each slot names a source instruction directly. Statistics and
    /// architectural results are bit-exact with [`Processor::run`]; the
    /// profiled loop is a separate monomorphization, so unprofiled runs
    /// pay nothing.
    pub fn run_profiled(&mut self, opts: RunOptions) -> Result<(ExecStats, PcProfile), ExecError> {
        let len = self.decoded.as_ref().map(|d| d.len()).unwrap_or(0);
        let mut profile = Some(PcProfile::with_len(len));
        let stats = self.run_dispatch(opts, &mut None, &mut profile)?;
        Ok((stats, profile.unwrap()))
    }

    /// Execute through the **reference interpreter**: field extraction
    /// per dynamic instruction, generic per-lane dispatch through
    /// [`Datapath::eval`] — semantically identical to [`Processor::run`]
    /// (pinned by proptest), kept as the differential-testing oracle and
    /// the `tables --sim` host-throughput baseline.
    pub fn run_reference(&mut self, opts: RunOptions) -> Result<ExecStats, ExecError> {
        self.run_reference_inner(opts, &mut None)
    }

    /// [`Processor::run_reference`] with a per-instruction trace.
    pub fn run_reference_traced(
        &mut self,
        opts: RunOptions,
    ) -> Result<(ExecStats, Vec<TraceEntry>), ExecError> {
        let mut trace = Some(Vec::new());
        let stats = self.run_reference_inner(opts, &mut trace)?;
        Ok((stats, trace.unwrap()))
    }

    fn run_inner(
        &mut self,
        opts: RunOptions,
        trace: &mut Option<Vec<TraceEntry>>,
    ) -> Result<ExecStats, ExecError> {
        self.run_dispatch(opts, trace, &mut None)
    }

    fn run_dispatch(
        &mut self,
        opts: RunOptions,
        trace: &mut Option<Vec<TraceEntry>>,
        profile: &mut Option<PcProfile>,
    ) -> Result<ExecStats, ExecError> {
        let decoded = self
            .decoded
            .clone()
            .expect("no program loaded — call load_program first");
        // Monomorphize the run loop over (trace, profile, mode): the
        // fast path carries no trace pushes, no per-PC counter updates
        // and no counter-hardware stepping.
        let stats = match (trace.is_some(), profile.is_some(), opts.mode) {
            (false, false, ExecMode::Functional) => {
                self.run_loop::<false, false, false>(&decoded, opts, trace, profile)
            }
            (true, false, ExecMode::Functional) => {
                self.run_loop::<true, false, false>(&decoded, opts, trace, profile)
            }
            (false, false, ExecMode::CycleAccurate) => {
                self.run_loop::<false, false, true>(&decoded, opts, trace, profile)
            }
            (true, false, ExecMode::CycleAccurate) => {
                self.run_loop::<true, false, true>(&decoded, opts, trace, profile)
            }
            (false, true, ExecMode::Functional) => {
                self.run_loop::<false, true, false>(&decoded, opts, trace, profile)
            }
            (true, true, ExecMode::Functional) => {
                self.run_loop::<true, true, false>(&decoded, opts, trace, profile)
            }
            (false, true, ExecMode::CycleAccurate) => {
                self.run_loop::<false, true, true>(&decoded, opts, trace, profile)
            }
            (true, true, ExecMode::CycleAccurate) => {
                self.run_loop::<true, true, true>(&decoded, opts, trace, profile)
            }
        }?;
        // Always-on retirement counters: one relaxed add per counter per
        // *finished run*, never per instruction — the process-wide
        // dyn-instr / thread-op totals the metrics layer reports.
        simt_metrics::sim::retire_run(stats.instructions, stats.thread_ops);
        Ok(stats)
    }

    /// The predecoded run loop, monomorphized over trace capture,
    /// per-PC profiling and cycle accuracy.
    fn run_loop<const TRACED: bool, const PROFILED: bool, const CYCLE_ACCURATE: bool>(
        &mut self,
        decoded: &DecodedProgram,
        opts: RunOptions,
        trace: &mut Option<Vec<TraceEntry>>,
        profile: &mut Option<PcProfile>,
    ) -> Result<ExecStats, ExecError> {
        let uops = decoded.uops();
        let threshold = self.config.parallel_threshold;
        self.shared.reset_stats();
        let mut stats = ExecStats {
            cycles: FETCH_PIPELINE_DEPTH,
            fill_cycles: FETCH_PIPELINE_DEPTH,
            ..Default::default()
        };
        let mut pc = 0usize;
        let mut call_stack: Vec<usize> = Vec::with_capacity(self.config.call_stack_depth);
        let mut loop_stack: Vec<LoopFrame> = Vec::with_capacity(self.config.loop_stack_depth);

        loop {
            if stats.cycles > opts.max_cycles {
                return Err(ExecError::Watchdog {
                    cycles: opts.max_cycles,
                });
            }
            let u = match uops.get(pc) {
                Some(u) => *u,
                None => return Err(ExecError::PcOutOfRange { pc }),
            };
            let active = u.active as usize;

            // ---- clock accounting (both modes agree; cycle-accurate
            // additionally steps the counter hardware) ----
            let clocks = if CYCLE_ACCURATE {
                let stepped = PipelineControl::start(u.class, active).run_to_end();
                debug_assert_eq!(stepped, u.clocks as u64);
                stepped
            } else {
                u.clocks as u64
            };
            stats.cycles += clocks;
            stats.instructions += 1;
            match u.class {
                CycleClass::Operation => stats.op_cycles += clocks,
                CycleClass::Load => stats.load_cycles += clocks,
                CycleClass::Store => stats.store_cycles += clocks,
                CycleClass::SingleCycle => stats.single_cycles += clocks,
            }
            if u.class != CycleClass::SingleCycle {
                stats.thread_ops += active as u64;
            }

            // ---- semantics ----
            let mut jumped: Option<usize> = None;
            match u.opcode {
                Opcode::Bra => {
                    jumped = Some(u.target as usize);
                }
                Opcode::Brp => {
                    if u.guard_passes(self.regfile.pred_nibble(0)) {
                        jumped = Some(u.target as usize);
                    }
                }
                Opcode::Call => {
                    if u.guard_passes(self.regfile.pred_nibble(0)) {
                        if call_stack.len() == self.config.call_stack_depth {
                            return Err(ExecError::CallStackOverflow {
                                pc,
                                depth: self.config.call_stack_depth,
                            });
                        }
                        call_stack.push(pc + 1);
                        jumped = Some(u.target as usize);
                    }
                }
                Opcode::Ret => {
                    if u.guard_passes(self.regfile.pred_nibble(0)) {
                        match call_stack.pop() {
                            Some(ra) => jumped = Some(ra),
                            None => return Err(ExecError::CallStackUnderflow { pc }),
                        }
                    }
                }
                Opcode::Loop => {
                    let count = u.imm;
                    let end = u.target as usize;
                    if count == 0 || end < pc + 1 {
                        // Empty or zero-trip loop: skip the body. A
                        // skip is a taken branch; fall through to flush
                        // accounting below.
                        jumped = Some(end.max(pc) + 1);
                    } else {
                        if loop_stack.len() == self.config.loop_stack_depth {
                            return Err(ExecError::LoopStackOverflow {
                                pc,
                                depth: self.config.loop_stack_depth,
                            });
                        }
                        loop_stack.push(LoopFrame {
                            start: pc + 1,
                            end,
                            remaining: count,
                        });
                    }
                }
                Opcode::Exit => {
                    if TRACED {
                        trace.as_mut().unwrap().push(TraceEntry {
                            pc,
                            opcode: u.opcode,
                            active,
                            clocks,
                            jumped: None,
                        });
                    }
                    if PROFILED {
                        let prof = profile.as_mut().unwrap();
                        prof.fill_cycles = stats.fill_cycles;
                        prof.record(pc, clocks, 0);
                    }
                    stats.mem = self.shared.stats();
                    return Ok(stats);
                }
                Opcode::Nop | Opcode::Bar => {}
                _ => {
                    let parallel = opts.parallel && active >= threshold;
                    self.exec_uop(&u, pc, active, parallel)?;
                }
            }

            if TRACED {
                trace.as_mut().unwrap().push(TraceEntry {
                    pc,
                    opcode: u.opcode,
                    active,
                    clocks,
                    jumped,
                });
            }

            if PROFILED {
                // Charge the taken-branch flush to the branching PC so
                // every clock except pipeline fill has an owner.
                let flush = if jumped.is_some() {
                    FETCH_PIPELINE_DEPTH
                } else {
                    0
                };
                let ops = if u.class != CycleClass::SingleCycle {
                    active as u64
                } else {
                    0
                };
                profile.as_mut().unwrap().record(pc, clocks + flush, ops);
            }

            // ---- PC update ----
            match jumped {
                Some(target) => {
                    // "A branch taken zeroes out the following
                    // instructions in the pipeline."
                    stats.branches_taken += 1;
                    stats.branch_flush_cycles += FETCH_PIPELINE_DEPTH;
                    stats.cycles += FETCH_PIPELINE_DEPTH;
                    pc = target;
                }
                None => {
                    // Zero-overhead loop back-edges: the "next thread
                    // block" / branch logic of Fig. 2 redirects without a
                    // flush. Nested loops may share an end address — an
                    // exhausted inner frame pops and the enclosing frame
                    // gets its check in the same clock.
                    let mut redirected = false;
                    while let Some(top) = loop_stack.last_mut() {
                        if top.end != pc {
                            break;
                        }
                        if top.remaining > 1 {
                            top.remaining -= 1;
                            pc = top.start;
                            stats.loop_backedges += 1;
                            redirected = true;
                            break;
                        }
                        loop_stack.pop();
                    }
                    if !redirected {
                        pc += 1;
                    }
                }
            }
        }
    }

    /// Execute one data µop (operation / load / store) across the active
    /// thread set: one dense dispatch per *instruction*, then a
    /// specialized lane loop per opcode with the guard test and operand
    /// indices pre-resolved — no per-lane field extraction or opcode
    /// dispatch.
    fn exec_uop(
        &mut self,
        u: &Uop,
        pc: usize,
        active: usize,
        parallel: bool,
    ) -> Result<(), ExecError> {
        let Processor {
            config,
            regfile,
            shared,
            datapath: dp,
            sts_scratch,
            ..
        } = self;
        let ntid = config.threads as u32;
        let (regs, preds, rpt) = regfile.split_mut();
        let preds: &mut [u8] = preds;
        let (rd, ra, rb, rc) = (u.rd as usize, u.ra as usize, u.rb as usize, u.rc as usize);
        let imm = u.imm;

        match u.opcode {
            // ---- shared memory --------------------------------------
            Opcode::Lds => {
                shared.account_read_rows(u.lanes as usize, u.depth as usize);
                let shared_size = shared.words();
                let data = shared.as_slice();
                let active_regs = &mut regs[..active * rpt];
                let active_preds = &preds[..active];
                let mut reads = 0u64;
                let body = |tid: usize, w: &mut [u32]| -> Result<(), ExecError> {
                    let addr = w[ra].wrapping_add(imm) as usize;
                    match data.get(addr) {
                        Some(&v) => {
                            w[rd] = v;
                            Ok(())
                        }
                        None => Err(ExecError::SharedOutOfBounds {
                            pc,
                            thread: tid,
                            addr,
                            size: shared_size,
                        }),
                    }
                };
                if parallel {
                    reads += active_regs
                        .par_chunks_mut(rpt)
                        .zip(active_preds.par_iter())
                        .enumerate()
                        .map(|(tid, (w, p))| {
                            if u.guard_passes(*p) {
                                body(tid, w).map(|()| 1)
                            } else {
                                Ok(0)
                            }
                        })
                        .try_reduce(|| 0, |x, y| Ok(x + y))?;
                } else if u.guard_and == 0 {
                    // Unguarded: every active lane reads exactly once.
                    for (tid, w) in active_regs.chunks_exact_mut(rpt).enumerate() {
                        body(tid, w)?;
                    }
                    reads += active as u64;
                } else {
                    for (tid, (w, p)) in active_regs
                        .chunks_exact_mut(rpt)
                        .zip(active_preds.iter())
                        .enumerate()
                    {
                        if u.guard_passes(*p) {
                            body(tid, w)?;
                            reads += 1;
                        }
                    }
                }
                shared.bump_reads(reads);
                Ok(())
            }
            Opcode::Sts => {
                shared.account_write_rows(u.lanes as usize, u.depth as usize);
                // Stores stream through the single write port in thread
                // order; on address conflicts the highest thread id wins.
                // Gather (addr, value) pairs into the processor's
                // reusable scratch buffer (parallel-safe), then apply in
                // order.
                let active_regs = &regs[..active * rpt];
                let active_preds = &preds[..active];
                let gather = |(w, p): (&[u32], &u8)| -> Option<(usize, u32)> {
                    if !u.guard_passes(*p) {
                        return None;
                    }
                    Some((w[ra].wrapping_add(imm) as usize, w[rb]))
                };
                if parallel {
                    active_regs
                        .par_chunks(rpt)
                        .zip(active_preds.par_iter())
                        .map(gather)
                        .collect_into_vec(sts_scratch);
                } else {
                    sts_scratch.clear();
                    sts_scratch.extend(
                        active_regs
                            .chunks_exact(rpt)
                            .zip(active_preds.iter())
                            .map(gather),
                    );
                }
                for (tid, pair) in sts_scratch.drain(..).enumerate() {
                    if let Some((addr, value)) = pair {
                        shared.write(pc, tid, addr, value)?;
                    }
                }
                Ok(())
            }

            // ---- compares (predicate writers) -----------------------
            Opcode::SetpEq => setp_lanes(regs, preds, rpt, active, parallel, u, |a, b| {
                dp.eval_setp(Opcode::SetpEq, a, b)
            }),
            Opcode::SetpNe => setp_lanes(regs, preds, rpt, active, parallel, u, |a, b| {
                dp.eval_setp(Opcode::SetpNe, a, b)
            }),
            Opcode::SetpLt => setp_lanes(regs, preds, rpt, active, parallel, u, |a, b| {
                dp.eval_setp(Opcode::SetpLt, a, b)
            }),
            Opcode::SetpLe => setp_lanes(regs, preds, rpt, active, parallel, u, |a, b| {
                dp.eval_setp(Opcode::SetpLe, a, b)
            }),
            Opcode::SetpGt => setp_lanes(regs, preds, rpt, active, parallel, u, |a, b| {
                dp.eval_setp(Opcode::SetpGt, a, b)
            }),
            Opcode::SetpGe => setp_lanes(regs, preds, rpt, active, parallel, u, |a, b| {
                dp.eval_setp(Opcode::SetpGe, a, b)
            }),
            Opcode::SetpLtu => setp_lanes(regs, preds, rpt, active, parallel, u, |a, b| {
                dp.eval_setp(Opcode::SetpLtu, a, b)
            }),
            Opcode::SetpGeu => setp_lanes(regs, preds, rpt, active, parallel, u, |a, b| {
                dp.eval_setp(Opcode::SetpGeu, a, b)
            }),

            // ---- integer arithmetic (adder datapath) ----------------
            Opcode::Add => lanes(regs, preds, rpt, active, parallel, u, |_, w| {
                w[rd] = dp.adder.add(w[ra], w[rb])
            }),
            Opcode::Sub => lanes(regs, preds, rpt, active, parallel, u, |_, w| {
                w[rd] = dp.adder.sub(w[ra], w[rb])
            }),
            Opcode::Min => lanes(regs, preds, rpt, active, parallel, u, |_, w| {
                w[rd] = dp.adder.min_s(w[ra], w[rb])
            }),
            Opcode::Max => lanes(regs, preds, rpt, active, parallel, u, |_, w| {
                w[rd] = dp.adder.max_s(w[ra], w[rb])
            }),
            Opcode::Abs => lanes(regs, preds, rpt, active, parallel, u, |_, w| {
                w[rd] = dp.adder.abs(w[ra])
            }),
            Opcode::Neg => lanes(regs, preds, rpt, active, parallel, u, |_, w| {
                w[rd] = dp.adder.neg(w[ra])
            }),
            Opcode::Sad => lanes(regs, preds, rpt, active, parallel, u, |_, w| {
                w[rd] = dp.adder.sad(w[ra], w[rb], w[rc])
            }),
            Opcode::Addi => lanes(regs, preds, rpt, active, parallel, u, |_, w| {
                w[rd] = dp.adder.add(w[ra], imm)
            }),
            Opcode::Subi => lanes(regs, preds, rpt, active, parallel, u, |_, w| {
                w[rd] = dp.adder.sub(w[ra], imm)
            }),

            // ---- multiplier datapath --------------------------------
            Opcode::MulLo => lanes(regs, preds, rpt, active, parallel, u, |_, w| {
                w[rd] = dp.mult.mul_lo(w[ra], w[rb], Signedness::Signed)
            }),
            Opcode::MulHi => lanes(regs, preds, rpt, active, parallel, u, |_, w| {
                w[rd] = dp.mult.mul_hi(w[ra], w[rb], Signedness::Signed)
            }),
            Opcode::MuluHi => lanes(regs, preds, rpt, active, parallel, u, |_, w| {
                w[rd] = dp.mult.mul_hi(w[ra], w[rb], Signedness::Unsigned)
            }),
            Opcode::MadLo => lanes(regs, preds, rpt, active, parallel, u, |_, w| {
                w[rd] = dp
                    .adder
                    .add(dp.mult.mul_lo(w[ra], w[rb], Signedness::Signed), w[rc])
            }),
            Opcode::MadHi => lanes(regs, preds, rpt, active, parallel, u, |_, w| {
                w[rd] = dp
                    .adder
                    .add(dp.mult.mul_hi(w[ra], w[rb], Signedness::Signed), w[rc])
            }),
            Opcode::Muli => lanes(regs, preds, rpt, active, parallel, u, |_, w| {
                w[rd] = dp.mult.mul_lo(w[ra], imm, Signedness::Signed)
            }),

            // ---- bitwise logic (soft-logic ALU) ---------------------
            Opcode::And => lanes(regs, preds, rpt, active, parallel, u, |_, w| {
                w[rd] = dp.logic.eval(LogicOp::And, w[ra], w[rb])
            }),
            Opcode::Or => lanes(regs, preds, rpt, active, parallel, u, |_, w| {
                w[rd] = dp.logic.eval(LogicOp::Or, w[ra], w[rb])
            }),
            Opcode::Xor => lanes(regs, preds, rpt, active, parallel, u, |_, w| {
                w[rd] = dp.logic.eval(LogicOp::Xor, w[ra], w[rb])
            }),
            Opcode::Not => lanes(regs, preds, rpt, active, parallel, u, |_, w| {
                w[rd] = dp.logic.eval(LogicOp::Not, w[ra], 0)
            }),
            Opcode::Cnot => lanes(regs, preds, rpt, active, parallel, u, |_, w| {
                w[rd] = dp.logic.eval(LogicOp::Cnot, w[ra], 0)
            }),
            Opcode::Andi => lanes(regs, preds, rpt, active, parallel, u, |_, w| {
                w[rd] = dp.logic.eval(LogicOp::And, w[ra], imm)
            }),
            Opcode::Ori => lanes(regs, preds, rpt, active, parallel, u, |_, w| {
                w[rd] = dp.logic.eval(LogicOp::Or, w[ra], imm)
            }),
            Opcode::Xori => lanes(regs, preds, rpt, active, parallel, u, |_, w| {
                w[rd] = dp.logic.eval(LogicOp::Xor, w[ra], imm)
            }),
            Opcode::Popc => lanes(regs, preds, rpt, active, parallel, u, |_, w| {
                w[rd] = dp.logic.eval(LogicOp::Popc, w[ra], 0)
            }),
            Opcode::Clz => lanes(regs, preds, rpt, active, parallel, u, |_, w| {
                w[rd] = dp.logic.eval(LogicOp::Clz, w[ra], 0)
            }),
            Opcode::Brev => lanes(regs, preds, rpt, active, parallel, u, |_, w| {
                w[rd] = dp.logic.eval(LogicOp::Brev, w[ra], 0)
            }),

            // ---- shifts (multiplicative shifter) --------------------
            Opcode::Shl => lanes(regs, preds, rpt, active, parallel, u, |_, w| {
                w[rd] = dp.shifter.shift(ShiftKind::Lsl, w[ra], w[rb])
            }),
            Opcode::Lsr => lanes(regs, preds, rpt, active, parallel, u, |_, w| {
                w[rd] = dp.shifter.shift(ShiftKind::Lsr, w[ra], w[rb])
            }),
            Opcode::Asr => lanes(regs, preds, rpt, active, parallel, u, |_, w| {
                w[rd] = dp.shifter.shift(ShiftKind::Asr, w[ra], w[rb])
            }),
            Opcode::Shli => lanes(regs, preds, rpt, active, parallel, u, |_, w| {
                w[rd] = dp.shifter.shift(ShiftKind::Lsl, w[ra], imm)
            }),
            Opcode::Lsri => lanes(regs, preds, rpt, active, parallel, u, |_, w| {
                w[rd] = dp.shifter.shift(ShiftKind::Lsr, w[ra], imm)
            }),
            Opcode::Asri => lanes(regs, preds, rpt, active, parallel, u, |_, w| {
                w[rd] = dp.shifter.shift(ShiftKind::Asr, w[ra], imm)
            }),

            // ---- fixed-point / address helpers ----------------------
            Opcode::SatAdd => lanes(regs, preds, rpt, active, parallel, u, |_, w| {
                w[rd] = dp.adder.sat_add(w[ra], w[rb])
            }),
            Opcode::SatSub => lanes(regs, preds, rpt, active, parallel, u, |_, w| {
                w[rd] = dp.adder.sat_sub(w[ra], w[rb])
            }),
            Opcode::MulShr => {
                // Fixed-point scaling: full 64-bit signed product,
                // arithmetic shift right by imm (0..=63), low 32 bits.
                let sh = imm & 63;
                lanes(regs, preds, rpt, active, parallel, u, |_, w| {
                    let full = dp.mult.mul_full(w[ra], w[rb], Signedness::Signed) as i64;
                    w[rd] = (full >> sh) as u32;
                })
            }
            Opcode::ShAdd => {
                // Address generation: (a << imm) + b.
                let sh = imm & 31;
                lanes(regs, preds, rpt, active, parallel, u, |_, w| {
                    w[rd] = dp
                        .adder
                        .add(dp.shifter.shift(ShiftKind::Lsl, w[ra], sh), w[rb])
                })
            }
            Opcode::Bfe => {
                let pos = imm & 0x1F;
                let len = (imm >> 5) & 0x3F;
                lanes(regs, preds, rpt, active, parallel, u, |_, w| {
                    let shifted = dp.shifter.shift(ShiftKind::Lsr, w[ra], pos);
                    w[rd] = if len >= 32 {
                        shifted
                    } else {
                        shifted & ((1u32 << len) - 1)
                    };
                })
            }
            Opcode::Rotri => lanes(regs, preds, rpt, active, parallel, u, |_, w| {
                w[rd] = dp.shifter.rotate_right(w[ra], imm)
            }),

            // ---- predicated select and data movement ----------------
            Opcode::Selp => {
                let bit = u.pred_bit;
                lanes_pred_src(regs, preds, rpt, active, parallel, u, |w, p| {
                    w[rd] = if p & bit != 0 { w[ra] } else { w[rb] }
                })
            }
            Opcode::Mov => lanes(regs, preds, rpt, active, parallel, u, |_, w| w[rd] = w[ra]),
            Opcode::Movi => lanes(regs, preds, rpt, active, parallel, u, |_, w| w[rd] = imm),
            Opcode::Stid => lanes(regs, preds, rpt, active, parallel, u, |tid, w| {
                w[rd] = tid as u32
            }),
            Opcode::Sntid => lanes(regs, preds, rpt, active, parallel, u, |_, w| w[rd] = ntid),

            // Control flow is handled by the run loop.
            Opcode::Bra
            | Opcode::Brp
            | Opcode::Call
            | Opcode::Ret
            | Opcode::Loop
            | Opcode::Exit
            | Opcode::Nop
            | Opcode::Bar => {
                unreachable!("{:?} is not a data opcode", u.opcode)
            }
        }
    }

    fn run_reference_inner(
        &mut self,
        opts: RunOptions,
        trace: &mut Option<Vec<TraceEntry>>,
    ) -> Result<ExecStats, ExecError> {
        let program: Arc<Program> = Arc::clone(
            self.decoded
                .as_ref()
                .expect("no program loaded — call load_program first")
                .program(),
        );
        self.shared.reset_stats();
        let mut stats = ExecStats {
            cycles: FETCH_PIPELINE_DEPTH,
            fill_cycles: FETCH_PIPELINE_DEPTH,
            ..Default::default()
        };
        let mut pc = 0usize;
        let mut call_stack: Vec<usize> = Vec::with_capacity(self.config.call_stack_depth);
        let mut loop_stack: Vec<LoopFrame> = Vec::with_capacity(self.config.loop_stack_depth);

        loop {
            if stats.cycles > opts.max_cycles {
                return Err(ExecError::Watchdog {
                    cycles: opts.max_cycles,
                });
            }
            let instr = match program.fetch(pc) {
                Some(i) => *i,
                None => return Err(ExecError::PcOutOfRange { pc }),
            };
            let active = InstructionTiming::scaled_threads(self.config.threads, instr.scale);
            let class = instr.opcode.cycle_class();

            // ---- clock accounting (both modes agree; cycle-accurate
            // additionally steps the counter hardware) ----
            let clocks = match opts.mode {
                ExecMode::Functional => InstructionTiming::cycles(class, active),
                ExecMode::CycleAccurate => {
                    let stepped = PipelineControl::start(class, active).run_to_end();
                    debug_assert_eq!(stepped, InstructionTiming::cycles(class, active));
                    stepped
                }
            };
            stats.cycles += clocks;
            stats.instructions += 1;
            match class {
                CycleClass::Operation => stats.op_cycles += clocks,
                CycleClass::Load => stats.load_cycles += clocks,
                CycleClass::Store => stats.store_cycles += clocks,
                CycleClass::SingleCycle => stats.single_cycles += clocks,
            }
            if class != CycleClass::SingleCycle {
                stats.thread_ops += active as u64;
            }

            // ---- semantics ----
            let mut jumped: Option<usize> = None;
            match instr.opcode {
                Opcode::Bra => {
                    jumped = Some(instr.target());
                }
                Opcode::Brp => {
                    if self.control_condition(&instr) {
                        jumped = Some(instr.target());
                    }
                }
                Opcode::Call => {
                    if self.control_condition(&instr) {
                        if call_stack.len() == self.config.call_stack_depth {
                            return Err(ExecError::CallStackOverflow {
                                pc,
                                depth: self.config.call_stack_depth,
                            });
                        }
                        call_stack.push(pc + 1);
                        jumped = Some(instr.target());
                    }
                }
                Opcode::Ret => {
                    if self.control_condition(&instr) {
                        match call_stack.pop() {
                            Some(ra) => jumped = Some(ra),
                            None => return Err(ExecError::CallStackUnderflow { pc }),
                        }
                    }
                }
                Opcode::Loop => {
                    let count = instr.loop_count();
                    let end = instr.loop_end();
                    if count == 0 || end < pc + 1 {
                        // Empty or zero-trip loop: skip the body.
                        jumped = Some(end.max(pc) + 1);
                        // A skip is a taken branch; fall through to flush
                        // accounting below.
                    } else {
                        if loop_stack.len() == self.config.loop_stack_depth {
                            return Err(ExecError::LoopStackOverflow {
                                pc,
                                depth: self.config.loop_stack_depth,
                            });
                        }
                        loop_stack.push(LoopFrame {
                            start: pc + 1,
                            end,
                            remaining: count,
                        });
                    }
                }
                Opcode::Exit => {
                    if let Some(t) = trace.as_mut() {
                        t.push(TraceEntry {
                            pc,
                            opcode: instr.opcode,
                            active,
                            clocks,
                            jumped: None,
                        });
                    }
                    stats.mem = self.shared.stats();
                    // Same always-on retirement accounting as the
                    // predecoded path (one relaxed add per run).
                    simt_metrics::sim::retire_run(stats.instructions, stats.thread_ops);
                    return Ok(stats);
                }
                Opcode::Nop | Opcode::Bar => {}
                _ => {
                    self.exec_data_instruction(&instr, pc, active, &opts)?;
                }
            }

            if let Some(t) = trace.as_mut() {
                t.push(TraceEntry {
                    pc,
                    opcode: instr.opcode,
                    active,
                    clocks,
                    jumped,
                });
            }

            // ---- PC update ----
            match jumped {
                Some(target) => {
                    // "A branch taken zeroes out the following
                    // instructions in the pipeline."
                    stats.branches_taken += 1;
                    stats.branch_flush_cycles += FETCH_PIPELINE_DEPTH;
                    stats.cycles += FETCH_PIPELINE_DEPTH;
                    pc = target;
                }
                None => {
                    // Zero-overhead loop back-edges (see run_loop).
                    let mut redirected = false;
                    while let Some(top) = loop_stack.last_mut() {
                        if top.end != pc {
                            break;
                        }
                        if top.remaining > 1 {
                            top.remaining -= 1;
                            pc = top.start;
                            stats.loop_backedges += 1;
                            redirected = true;
                            break;
                        }
                        loop_stack.pop();
                    }
                    if !redirected {
                        pc += 1;
                    }
                }
            }
        }
    }

    /// Uniform control condition: thread 0's view of the instruction's
    /// guard (branches are decided once, in the instruction block).
    fn control_condition(&self, instr: &Instruction) -> bool {
        match instr.guard {
            Some(Guard { pred, negate }) => self.regfile.read_pred(0, pred.index()) != negate,
            None => true,
        }
    }

    /// Execute a data instruction (operation / load / store) across the
    /// active thread set — the reference interpreter's generic per-lane
    /// dispatch through [`Datapath::eval`].
    fn exec_data_instruction(
        &mut self,
        instr: &Instruction,
        pc: usize,
        active: usize,
        opts: &RunOptions,
    ) -> Result<(), ExecError> {
        let Processor {
            config,
            regfile,
            shared,
            datapath,
            sts_scratch,
            ..
        } = self;
        let ntid = config.threads as u32;
        let parallel = opts.parallel && active >= config.parallel_threshold;
        let (regs, preds, rpt) = regfile.split_mut();
        let preds: &mut [u8] = preds;

        match instr.opcode {
            Opcode::Lds => {
                let (lanes, depth) = InstructionTiming::block_shape(active);
                for _ in 0..depth {
                    shared.account_read_row(lanes);
                }
                let shared_size = shared.words();
                let data = shared.as_slice();
                let mut reads = 0u64;
                let body = |tid: usize, window: &mut [u32], pred: &u8| -> Result<u64, ExecError> {
                    if !guard_pass(*pred, instr.guard) {
                        return Ok(0);
                    }
                    let addr = window[instr.ra.index()].wrapping_add(instr.imm16()) as usize;
                    match data.get(addr) {
                        Some(&v) => {
                            window[instr.rd.index()] = v;
                            Ok(1)
                        }
                        None => Err(ExecError::SharedOutOfBounds {
                            pc,
                            thread: tid,
                            addr,
                            size: shared_size,
                        }),
                    }
                };
                if parallel {
                    reads += regs
                        .par_chunks_mut(rpt)
                        .zip(preds.par_iter())
                        .take(active)
                        .enumerate()
                        .map(|(tid, (window, pred))| body(tid, window, pred))
                        .try_reduce(|| 0, |x, y| Ok(x + y))?;
                } else {
                    for (tid, (window, pred)) in regs
                        .chunks_mut(rpt)
                        .zip(preds.iter())
                        .take(active)
                        .enumerate()
                    {
                        reads += body(tid, window, pred)?;
                    }
                }
                shared.bump_reads(reads);
                Ok(())
            }
            Opcode::Sts => {
                let (lanes, depth) = InstructionTiming::block_shape(active);
                for _ in 0..depth {
                    shared.account_write_row(lanes);
                }
                // Stores stream through the single write port in thread
                // order; on address conflicts the highest thread id wins.
                // Compute (addr, value) pairs first (parallel-safe, into
                // the reusable scratch buffer), then apply in order.
                let gather = |(window, pred): (&[u32], &u8)| -> Option<(usize, u32)> {
                    if !guard_pass(*pred, instr.guard) {
                        return None;
                    }
                    let addr = window[instr.ra.index()].wrapping_add(instr.imm16()) as usize;
                    Some((addr, window[instr.rb.index()]))
                };
                if parallel {
                    regs.par_chunks(rpt)
                        .zip(preds.par_iter())
                        .take(active)
                        .map(gather)
                        .collect_into_vec(sts_scratch);
                } else {
                    sts_scratch.clear();
                    sts_scratch.extend(regs.chunks(rpt).zip(preds.iter()).take(active).map(gather));
                }
                for (tid, pair) in sts_scratch.drain(..).enumerate() {
                    if let Some((addr, value)) = pair {
                        shared.write(pc, tid, addr, value)?;
                    }
                }
                Ok(())
            }
            Opcode::SetpEq
            | Opcode::SetpNe
            | Opcode::SetpLt
            | Opcode::SetpLe
            | Opcode::SetpGt
            | Opcode::SetpGe
            | Opcode::SetpLtu
            | Opcode::SetpGeu => {
                let dst = instr.dst_pred().index();
                let body = |window: &[u32], pred: &mut u8| {
                    if !guard_pass(*pred, instr.guard) {
                        return;
                    }
                    let a = window[instr.ra.index()];
                    let b = window[instr.rb.index()];
                    let v = datapath.eval_setp(instr.opcode, a, b);
                    let bit = 1u8 << dst;
                    if v {
                        *pred |= bit;
                    } else {
                        *pred &= !bit;
                    }
                };
                if parallel {
                    regs.par_chunks(rpt)
                        .zip(preds.par_iter_mut())
                        .take(active)
                        .for_each(|(w, p)| body(w, p));
                } else {
                    for (w, p) in regs.chunks(rpt).zip(preds.iter_mut()).take(active) {
                        body(w, p);
                    }
                }
                Ok(())
            }
            _ => {
                // Generic ALU-value instruction writing rd.
                let reads = instr.opcode.reg_reads();
                let has_rb = reads >= 2 && instr.opcode.imm_form() != simt_isa::ImmForm::Imm32;
                let body = |tid: usize, window: &mut [u32], pred: &u8| {
                    if !guard_pass(*pred, instr.guard) {
                        return;
                    }
                    let ops = Operands {
                        a: if reads >= 1 {
                            window[instr.ra.index()]
                        } else {
                            0
                        },
                        b: if has_rb { window[instr.rb.index()] } else { 0 },
                        c: if instr.opcode.reads_rc() {
                            window[instr.rc.index()]
                        } else {
                            0
                        },
                        tid: tid as u32,
                        ntid,
                        sel_pred: if instr.opcode == Opcode::Selp {
                            *pred >> instr.sel_pred().index() & 1 != 0
                        } else {
                            false
                        },
                    };
                    let v = datapath.eval(instr, ops);
                    if instr.opcode.writes_rd() {
                        window[instr.rd.index()] = v;
                    }
                };
                if parallel {
                    regs.par_chunks_mut(rpt)
                        .zip(preds.par_iter())
                        .take(active)
                        .enumerate()
                        .for_each(|(tid, (w, p))| body(tid, w, p));
                } else {
                    for (tid, (w, p)) in regs
                        .chunks_mut(rpt)
                        .zip(preds.iter())
                        .take(active)
                        .enumerate()
                    {
                        body(tid, w, p);
                    }
                }
                Ok(())
            }
        }
    }
}

/// Drive a register-writing lane body over the active thread set with
/// the µop's precomputed guard test; `f(tid, window)` runs only where
/// the guard passes. The active window is sliced up front (no per-lane
/// `take` bookkeeping) and the unguarded common case skips the guard
/// test entirely.
#[inline(always)]
fn lanes<F>(
    regs: &mut [u32],
    preds: &[u8],
    rpt: usize,
    active: usize,
    parallel: bool,
    u: &Uop,
    f: F,
) -> Result<(), ExecError>
where
    F: Fn(usize, &mut [u32]),
{
    let regs = &mut regs[..active * rpt];
    let preds = &preds[..active];
    if parallel {
        regs.par_chunks_mut(rpt)
            .zip(preds.par_iter())
            .enumerate()
            .for_each(|(tid, (w, p))| {
                if u.guard_passes(*p) {
                    f(tid, w);
                }
            });
    } else if u.guard_and == 0 {
        // Unguarded common case: no per-lane branch, so the lane body
        // can vectorize across the register file.
        for (tid, w) in regs.chunks_exact_mut(rpt).enumerate() {
            f(tid, w);
        }
    } else {
        for (tid, (w, p)) in regs.chunks_exact_mut(rpt).zip(preds.iter()).enumerate() {
            if u.guard_passes(*p) {
                f(tid, w);
            }
        }
    }
    Ok(())
}

/// [`lanes`] variant whose body also reads the lane's predicate nibble
/// (`selp`).
#[inline(always)]
fn lanes_pred_src<F>(
    regs: &mut [u32],
    preds: &[u8],
    rpt: usize,
    active: usize,
    parallel: bool,
    u: &Uop,
    f: F,
) -> Result<(), ExecError>
where
    F: Fn(&mut [u32], u8),
{
    let regs = &mut regs[..active * rpt];
    let preds = &preds[..active];
    if parallel {
        regs.par_chunks_mut(rpt)
            .zip(preds.par_iter())
            .for_each(|(w, p)| {
                if u.guard_passes(*p) {
                    f(w, *p);
                }
            });
    } else {
        for (w, p) in regs.chunks_exact_mut(rpt).zip(preds.iter()) {
            if u.guard_passes(*p) {
                f(w, *p);
            }
        }
    }
    Ok(())
}

/// Drive a predicate-writing compare over the active thread set: the
/// µop's pre-shifted destination bit is set or cleared per lane from
/// `f(a, b)`.
#[inline(always)]
fn setp_lanes<F>(
    regs: &[u32],
    preds: &mut [u8],
    rpt: usize,
    active: usize,
    parallel: bool,
    u: &Uop,
    f: F,
) -> Result<(), ExecError>
where
    F: Fn(u32, u32) -> bool,
{
    let (ra, rb, bit) = (u.ra as usize, u.rb as usize, u.pred_bit);
    let regs = &regs[..active * rpt];
    let preds = &mut preds[..active];
    let body = |(w, p): (&[u32], &mut u8)| {
        if !u.guard_passes(*p) {
            return;
        }
        if f(w[ra], w[rb]) {
            *p |= bit;
        } else {
            *p &= !bit;
        }
    };
    if parallel {
        regs.par_chunks(rpt)
            .zip(preds.par_iter_mut())
            .for_each(body);
    } else {
        for x in regs.chunks_exact(rpt).zip(preds.iter_mut()) {
            body(x);
        }
    }
    Ok(())
}

/// Evaluate a predicate guard against a thread's predicate nibble.
#[inline]
fn guard_pass(pred_nibble: u8, guard: Option<Guard>) -> bool {
    match guard {
        Some(Guard { pred, negate }) => (pred_nibble >> pred.index() & 1 != 0) != negate,
        None => true,
    }
}
