//! The streaming multiprocessor: one SM of 16 SPs executing in lockstep
//! (§2–§3). Two execution modes share one semantic core:
//!
//! * **Functional** — computes results per thread row and accounts clocks
//!   with the closed-form counter arithmetic of
//!   [`InstructionTiming`];
//!   optionally lane-parallel via rayon for large thread counts.
//! * **CycleAccurate** — additionally steps the
//!   [`PipelineControl`] counter
//!   hardware clock by clock for every instruction and cross-checks it
//!   against the closed form (a property the tests also pin).
//!
//! Both modes produce identical results and identical [`ExecStats`].

use crate::alu::{Datapath, Operands};
use crate::config::ProcessorConfig;
use crate::error::{ConfigError, ExecError, LoadError};
use crate::regfile::RegisterFile;
use crate::sequencer::{InstructionTiming, PipelineControl, FETCH_PIPELINE_DEPTH};
use crate::shared::SharedMemory;
use crate::stats::ExecStats;
use rayon::prelude::*;
use simt_isa::{CycleClass, Guard, Instruction, Opcode, Program};

/// Execution mode selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Closed-form cycle accounting (fast).
    Functional,
    /// Clock-stepped counter hardware, cross-checked (slower, used by
    /// verification tests and the cycle-model benches).
    CycleAccurate,
}

/// Options for one run.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Watchdog: abort after this many clocks.
    pub max_cycles: u64,
    /// Execution mode.
    pub mode: ExecMode,
    /// Execute thread lanes in parallel with rayon when the thread count
    /// is large (results are bit-identical; stores stay in thread order).
    pub parallel: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            max_cycles: 200_000_000,
            mode: ExecMode::Functional,
            parallel: false,
        }
    }
}

impl RunOptions {
    /// Cycle-accurate verification run.
    pub fn cycle_accurate() -> Self {
        RunOptions {
            mode: ExecMode::CycleAccurate,
            ..Default::default()
        }
    }

    /// Lane-parallel functional run.
    pub fn parallel() -> Self {
        RunOptions {
            parallel: true,
            ..Default::default()
        }
    }
}

/// Thread count threshold above which the parallel option engages.
const PARALLEL_THRESHOLD: usize = 256;

/// One issued instruction in an execution trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Program counter of the instruction.
    pub pc: usize,
    /// Opcode issued.
    pub opcode: Opcode,
    /// Active threads after dynamic scaling.
    pub active: usize,
    /// Clocks the instruction occupied the machine.
    pub clocks: u64,
    /// Taken-branch target, if the instruction redirected the PC
    /// (zero-overhead loop back-edges are not branches and appear as
    /// `None`).
    pub jumped: Option<usize>,
}

/// A full architectural checkpoint (serializable).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Snapshot {
    /// Configuration the snapshot was taken under.
    pub config: ProcessorConfig,
    /// Register file contents, `[thread][reg]` row-major.
    pub regs: Vec<u32>,
    /// Predicate nibbles, one per thread.
    pub preds: Vec<u8>,
    /// Shared memory contents.
    pub shared: Vec<u32>,
    /// Loaded program, if any.
    pub program: Option<Program>,
}

#[derive(Debug, Clone, Copy)]
struct LoopFrame {
    start: usize,
    end: usize,
    remaining: u32,
}

/// One SIMT processor instance.
#[derive(Debug, Clone)]
pub struct Processor {
    config: ProcessorConfig,
    regfile: RegisterFile,
    shared: SharedMemory,
    datapath: Datapath,
    program: Option<Program>,
}

impl Processor {
    /// Build a processor for `config`.
    pub fn new(config: ProcessorConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        Ok(Processor {
            regfile: RegisterFile::new(&config),
            shared: SharedMemory::new(config.shared_words),
            datapath: Datapath::new(),
            program: None,
            config,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &ProcessorConfig {
        &self.config
    }

    /// The loaded program, if any.
    pub fn program(&self) -> Option<&Program> {
        self.program.as_ref()
    }

    /// Host access to the register file.
    pub fn regfile(&self) -> &RegisterFile {
        &self.regfile
    }

    /// Mutable host access to the register file (data upload).
    pub fn regfile_mut(&mut self) -> &mut RegisterFile {
        &mut self.regfile
    }

    /// Host access to shared memory.
    pub fn shared(&self) -> &SharedMemory {
        &self.shared
    }

    /// Mutable host access to shared memory.
    pub fn shared_mut(&mut self) -> &mut SharedMemory {
        &mut self.shared
    }

    /// Validate a program against this build and load it into I-Mem
    /// (the I-Mem is "externally re-loadable", Fig. 2).
    pub fn load_program(&mut self, program: &Program) -> Result<(), LoadError> {
        if program.len() > self.config.imem_capacity {
            return Err(LoadError::TooLarge {
                len: program.len(),
                capacity: self.config.imem_capacity,
            });
        }
        if !program.has_terminator() {
            return Err(LoadError::NoTerminator);
        }
        for (pc, i) in program.instructions().iter().enumerate() {
            if i.uses_predicates() && !self.config.predicates {
                return Err(LoadError::PredicatesDisabled { pc });
            }
            let limit = self.config.regs_per_thread;
            let check = |r: simt_isa::Reg| -> Result<(), LoadError> {
                if r.index() >= limit {
                    Err(LoadError::RegisterRange {
                        pc,
                        reg: r.0,
                        limit,
                    })
                } else {
                    Ok(())
                }
            };
            // setp's rd field holds a predicate index, not a register.
            let writes_gpr = i.opcode.writes_rd()
                && !matches!(
                    i.opcode,
                    Opcode::SetpEq
                        | Opcode::SetpNe
                        | Opcode::SetpLt
                        | Opcode::SetpLe
                        | Opcode::SetpGt
                        | Opcode::SetpGe
                        | Opcode::SetpLtu
                        | Opcode::SetpGeu
                );
            if writes_gpr {
                check(i.rd)?;
            }
            if i.opcode.reg_reads() >= 1 {
                check(i.ra)?;
            }
            if i.opcode.reg_reads() >= 2 && i.opcode.imm_form() != simt_isa::ImmForm::Imm32 {
                check(i.rb)?;
            }
            if i.opcode.reads_rc() && i.opcode != Opcode::Selp {
                check(i.rc)?;
            }
            match i.opcode {
                Opcode::Bra | Opcode::Brp | Opcode::Call if i.target() >= program.len() => {
                    return Err(LoadError::BadTarget {
                        pc,
                        target: i.target(),
                    });
                }
                Opcode::Loop if i.loop_end() >= program.len() => {
                    return Err(LoadError::BadTarget {
                        pc,
                        target: i.loop_end(),
                    });
                }
                _ => {}
            }
        }
        self.program = Some(program.clone());
        Ok(())
    }

    /// Reset architectural state (registers, predicates, shared memory),
    /// keeping the loaded program.
    pub fn reset(&mut self) {
        self.regfile = RegisterFile::new(&self.config);
        self.shared = SharedMemory::new(self.config.shared_words);
    }

    /// Snapshot the full architectural state (registers, predicates,
    /// shared memory, loaded program) — checkpointing for long
    /// simulations and for A/B experiments from a common state.
    pub fn snapshot(&self) -> Snapshot {
        let (regs, preds) = self.regfile.raw();
        Snapshot {
            config: self.config.clone(),
            regs: regs.to_vec(),
            preds: preds.to_vec(),
            shared: self.shared.as_slice().to_vec(),
            program: self.program.clone(),
        }
    }

    /// Restore a snapshot taken from a processor with the same
    /// configuration.
    ///
    /// # Panics
    /// If the snapshot's configuration differs from this processor's.
    pub fn restore(&mut self, snap: &Snapshot) {
        assert_eq!(
            snap.config, self.config,
            "snapshot is from a different configuration"
        );
        self.regfile.restore_raw(&snap.regs, &snap.preds);
        self.shared = SharedMemory::new(self.config.shared_words);
        self.shared
            .load_words(0, &snap.shared)
            .expect("snapshot memory fits by construction");
        self.program = snap.program.clone();
    }

    /// Execute the loaded program to `exit`.
    pub fn run(&mut self, opts: RunOptions) -> Result<ExecStats, ExecError> {
        self.run_inner(opts, &mut None)
    }

    /// Execute with a per-instruction trace (issued PC, opcode, active
    /// thread count, clocks, branch target) — the simulator's equivalent
    /// of a logic-analyzer capture on the instruction block.
    pub fn run_traced(
        &mut self,
        opts: RunOptions,
    ) -> Result<(ExecStats, Vec<TraceEntry>), ExecError> {
        let mut trace = Some(Vec::new());
        let stats = self.run_inner(opts, &mut trace)?;
        Ok((stats, trace.unwrap()))
    }

    fn run_inner(
        &mut self,
        opts: RunOptions,
        trace: &mut Option<Vec<TraceEntry>>,
    ) -> Result<ExecStats, ExecError> {
        let program = self
            .program
            .clone()
            .expect("no program loaded — call load_program first");
        self.shared.reset_stats();
        let mut stats = ExecStats {
            cycles: FETCH_PIPELINE_DEPTH,
            fill_cycles: FETCH_PIPELINE_DEPTH,
            ..Default::default()
        };
        let mut pc = 0usize;
        let mut call_stack: Vec<usize> = Vec::with_capacity(self.config.call_stack_depth);
        let mut loop_stack: Vec<LoopFrame> = Vec::with_capacity(self.config.loop_stack_depth);

        loop {
            if stats.cycles > opts.max_cycles {
                return Err(ExecError::Watchdog {
                    cycles: opts.max_cycles,
                });
            }
            let instr = match program.fetch(pc) {
                Some(i) => *i,
                None => return Err(ExecError::PcOutOfRange { pc }),
            };
            let active = InstructionTiming::scaled_threads(self.config.threads, instr.scale);
            let class = instr.opcode.cycle_class();

            // ---- clock accounting (both modes agree; cycle-accurate
            // additionally steps the counter hardware) ----
            let clocks = match opts.mode {
                ExecMode::Functional => InstructionTiming::cycles(class, active),
                ExecMode::CycleAccurate => {
                    let stepped = PipelineControl::start(class, active).run_to_end();
                    debug_assert_eq!(stepped, InstructionTiming::cycles(class, active));
                    stepped
                }
            };
            stats.cycles += clocks;
            stats.instructions += 1;
            match class {
                CycleClass::Operation => stats.op_cycles += clocks,
                CycleClass::Load => stats.load_cycles += clocks,
                CycleClass::Store => stats.store_cycles += clocks,
                CycleClass::SingleCycle => stats.single_cycles += clocks,
            }
            if class != CycleClass::SingleCycle {
                stats.thread_ops += active as u64;
            }

            // ---- semantics ----
            let mut jumped: Option<usize> = None;
            match instr.opcode {
                Opcode::Bra => {
                    jumped = Some(instr.target());
                }
                Opcode::Brp => {
                    if self.control_condition(&instr) {
                        jumped = Some(instr.target());
                    }
                }
                Opcode::Call => {
                    if self.control_condition(&instr) {
                        if call_stack.len() == self.config.call_stack_depth {
                            return Err(ExecError::CallStackOverflow {
                                pc,
                                depth: self.config.call_stack_depth,
                            });
                        }
                        call_stack.push(pc + 1);
                        jumped = Some(instr.target());
                    }
                }
                Opcode::Ret => {
                    if self.control_condition(&instr) {
                        match call_stack.pop() {
                            Some(ra) => jumped = Some(ra),
                            None => return Err(ExecError::CallStackUnderflow { pc }),
                        }
                    }
                }
                Opcode::Loop => {
                    let count = instr.loop_count();
                    let end = instr.loop_end();
                    if count == 0 || end < pc + 1 {
                        // Empty or zero-trip loop: skip the body.
                        jumped = Some(end.max(pc) + 1);
                        // A skip is a taken branch; fall through to flush
                        // accounting below.
                    } else {
                        if loop_stack.len() == self.config.loop_stack_depth {
                            return Err(ExecError::LoopStackOverflow {
                                pc,
                                depth: self.config.loop_stack_depth,
                            });
                        }
                        loop_stack.push(LoopFrame {
                            start: pc + 1,
                            end,
                            remaining: count,
                        });
                    }
                }
                Opcode::Exit => {
                    if let Some(t) = trace.as_mut() {
                        t.push(TraceEntry {
                            pc,
                            opcode: instr.opcode,
                            active,
                            clocks,
                            jumped: None,
                        });
                    }
                    stats.mem = self.shared.stats();
                    return Ok(stats);
                }
                Opcode::Nop | Opcode::Bar => {}
                _ => {
                    self.exec_data_instruction(&instr, pc, active, &opts)?;
                }
            }

            if let Some(t) = trace.as_mut() {
                t.push(TraceEntry {
                    pc,
                    opcode: instr.opcode,
                    active,
                    clocks,
                    jumped,
                });
            }

            // ---- PC update ----
            match jumped {
                Some(target) => {
                    // "A branch taken zeroes out the following
                    // instructions in the pipeline."
                    stats.branches_taken += 1;
                    stats.branch_flush_cycles += FETCH_PIPELINE_DEPTH;
                    stats.cycles += FETCH_PIPELINE_DEPTH;
                    pc = target;
                }
                None => {
                    // Zero-overhead loop back-edges: the "next thread
                    // block" / branch logic of Fig. 2 redirects without a
                    // flush. Nested loops may share an end address — an
                    // exhausted inner frame pops and the enclosing frame
                    // gets its check in the same clock.
                    let mut redirected = false;
                    while let Some(top) = loop_stack.last_mut() {
                        if top.end != pc {
                            break;
                        }
                        if top.remaining > 1 {
                            top.remaining -= 1;
                            pc = top.start;
                            stats.loop_backedges += 1;
                            redirected = true;
                            break;
                        }
                        loop_stack.pop();
                    }
                    if !redirected {
                        pc += 1;
                    }
                }
            }
        }
    }

    /// Uniform control condition: thread 0's view of the instruction's
    /// guard (branches are decided once, in the instruction block).
    fn control_condition(&self, instr: &Instruction) -> bool {
        match instr.guard {
            Some(Guard { pred, negate }) => self.regfile.read_pred(0, pred.index()) != negate,
            None => true,
        }
    }

    /// Execute a data instruction (operation / load / store) across the
    /// active thread set.
    fn exec_data_instruction(
        &mut self,
        instr: &Instruction,
        pc: usize,
        active: usize,
        opts: &RunOptions,
    ) -> Result<(), ExecError> {
        let ntid = self.config.threads as u32;
        let parallel = opts.parallel && active >= PARALLEL_THRESHOLD;
        let datapath = &self.datapath;

        match instr.opcode {
            Opcode::Lds => {
                let (lanes, depth) = InstructionTiming::block_shape(active);
                for _ in 0..depth {
                    self.shared.account_read_row(lanes);
                }
                let shared_size = self.shared.words();
                let data = self.shared.as_slice();
                let mut reads = 0u64;
                let (regs, preds, rpt) = self.regfile.split_mut();
                let body = |tid: usize, window: &mut [u32], pred: &u8| -> Result<u64, ExecError> {
                    if !guard_pass(*pred, instr.guard) {
                        return Ok(0);
                    }
                    let addr = window[instr.ra.index()].wrapping_add(instr.imm16()) as usize;
                    match data.get(addr) {
                        Some(&v) => {
                            window[instr.rd.index()] = v;
                            Ok(1)
                        }
                        None => Err(ExecError::SharedOutOfBounds {
                            pc,
                            thread: tid,
                            addr,
                            size: shared_size,
                        }),
                    }
                };
                if parallel {
                    reads += regs
                        .par_chunks_mut(rpt)
                        .zip(preds.par_iter())
                        .take(active)
                        .enumerate()
                        .map(|(tid, (window, pred))| body(tid, window, pred))
                        .try_reduce(|| 0, |x, y| Ok(x + y))?;
                } else {
                    for (tid, (window, pred)) in regs
                        .chunks_mut(rpt)
                        .zip(preds.iter())
                        .take(active)
                        .enumerate()
                    {
                        reads += body(tid, window, pred)?;
                    }
                }
                self.shared.bump_reads(reads);
                Ok(())
            }
            Opcode::Sts => {
                let (lanes, depth) = InstructionTiming::block_shape(active);
                for _ in 0..depth {
                    self.shared.account_write_row(lanes);
                }
                // Stores stream through the single write port in thread
                // order; on address conflicts the highest thread id wins.
                // Compute (addr, value) pairs first (parallel-safe), then
                // apply in order.
                let (regs, preds, rpt) = self.regfile.split_mut();
                let gather = |(window, pred): (&[u32], &u8)| -> Option<(usize, u32)> {
                    if !guard_pass(*pred, instr.guard) {
                        return None;
                    }
                    let addr = window[instr.ra.index()].wrapping_add(instr.imm16()) as usize;
                    Some((addr, window[instr.rb.index()]))
                };
                let pairs: Vec<Option<(usize, u32)>> = if parallel {
                    regs.par_chunks(rpt)
                        .zip(preds.par_iter())
                        .take(active)
                        .map(gather)
                        .collect()
                } else {
                    regs.chunks(rpt)
                        .zip(preds.iter())
                        .take(active)
                        .map(gather)
                        .collect()
                };
                for (tid, pair) in pairs.into_iter().enumerate() {
                    if let Some((addr, value)) = pair {
                        self.shared.write(pc, tid, addr, value)?;
                    }
                }
                Ok(())
            }
            Opcode::SetpEq
            | Opcode::SetpNe
            | Opcode::SetpLt
            | Opcode::SetpLe
            | Opcode::SetpGt
            | Opcode::SetpGe
            | Opcode::SetpLtu
            | Opcode::SetpGeu => {
                let (regs, preds, rpt) = self.regfile.split_mut();
                let dst = instr.dst_pred().index();
                let body = |window: &[u32], pred: &mut u8| {
                    if !guard_pass(*pred, instr.guard) {
                        return;
                    }
                    let a = window[instr.ra.index()];
                    let b = window[instr.rb.index()];
                    let v = datapath.eval_setp(instr.opcode, a, b);
                    let bit = 1u8 << dst;
                    if v {
                        *pred |= bit;
                    } else {
                        *pred &= !bit;
                    }
                };
                if parallel {
                    regs.par_chunks(rpt)
                        .zip(preds.par_iter_mut())
                        .take(active)
                        .for_each(|(w, p)| body(w, p));
                } else {
                    for (w, p) in regs.chunks(rpt).zip(preds.iter_mut()).take(active) {
                        body(w, p);
                    }
                }
                Ok(())
            }
            _ => {
                // Generic ALU-value instruction writing rd.
                let (regs, preds, rpt) = self.regfile.split_mut();
                let reads = instr.opcode.reg_reads();
                let has_rb = reads >= 2 && instr.opcode.imm_form() != simt_isa::ImmForm::Imm32;
                let body = |tid: usize, window: &mut [u32], pred: &u8| {
                    if !guard_pass(*pred, instr.guard) {
                        return;
                    }
                    let ops = Operands {
                        a: if reads >= 1 {
                            window[instr.ra.index()]
                        } else {
                            0
                        },
                        b: if has_rb { window[instr.rb.index()] } else { 0 },
                        c: if instr.opcode.reads_rc() {
                            window[instr.rc.index()]
                        } else {
                            0
                        },
                        tid: tid as u32,
                        ntid,
                        sel_pred: if instr.opcode == Opcode::Selp {
                            *pred >> instr.sel_pred().index() & 1 != 0
                        } else {
                            false
                        },
                    };
                    let v = datapath.eval(instr, ops);
                    if instr.opcode.writes_rd() {
                        window[instr.rd.index()] = v;
                    }
                };
                if parallel {
                    regs.par_chunks_mut(rpt)
                        .zip(preds.par_iter())
                        .take(active)
                        .enumerate()
                        .for_each(|(tid, (w, p))| body(tid, w, p));
                } else {
                    for (tid, (w, p)) in regs
                        .chunks_mut(rpt)
                        .zip(preds.iter())
                        .take(active)
                        .enumerate()
                    {
                        body(tid, w, p);
                    }
                }
                Ok(())
            }
        }
    }
}

/// Evaluate a predicate guard against a thread's predicate nibble.
#[inline]
fn guard_pass(pred_nibble: u8, guard: Option<Guard>) -> bool {
    match guard {
        Some(Guard { pred, negate }) => (pred_nibble >> pred.index() & 1 != 0) != negate,
        None => true,
    }
}
