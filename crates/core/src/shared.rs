//! The multi-port shared memory (§2).
//!
//! "The shared memory architecture is multi-port, a departure from the
//! banked memory typically found in commercial GPGPUs. The multi-port
//! memory (configured as 4R-1W) has a lower potential bandwidth, but a
//! much simpler arbitration mechanism."
//!
//! The port schedule is fixed and conflict-free (no arbitration stalls —
//! that is the whole point): a 16-thread row reads through the 16:4
//! read-address mux in 4 clocks (4 threads per clock), and writes through
//! the 16:1 write muxes one thread per clock. Dynamic thread scaling
//! shortens both by shrinking the row count.

use crate::error::ExecError;
use serde::{Deserialize, Serialize};
use simt_isa::{SHARED_READ_PORTS, SP_COUNT};

/// Cycle-level access statistics of the memory system.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SharedMemStats {
    /// Total word reads served.
    pub reads: u64,
    /// Total word writes served.
    pub writes: u64,
    /// Clocks spent streaming read rows (4 per full row).
    pub read_cycles: u64,
    /// Clocks spent streaming write rows (16 per full row).
    pub write_cycles: u64,
}

impl SharedMemStats {
    /// Field-wise accumulate another run's memory statistics into
    /// `self`. The exhaustive destructuring makes forgetting a new
    /// field a compile error (see [`crate::ExecStats::merge`]).
    pub fn merge(&mut self, other: &Self) {
        let SharedMemStats {
            reads,
            writes,
            read_cycles,
            write_cycles,
        } = other;
        self.reads += reads;
        self.writes += writes;
        self.read_cycles += read_cycles;
        self.write_cycles += write_cycles;
    }
}

/// The shared memory array plus its port model.
#[derive(Debug, Clone)]
pub struct SharedMemory {
    data: Vec<u32>,
    stats: SharedMemStats,
}

impl SharedMemory {
    /// Allocate and zero `words` 32-bit words.
    pub fn new(words: usize) -> Self {
        SharedMemory {
            data: vec![0; words],
            stats: SharedMemStats::default(),
        }
    }

    /// Size in words.
    pub fn words(&self) -> usize {
        self.data.len()
    }

    /// Access statistics so far.
    pub fn stats(&self) -> SharedMemStats {
        self.stats
    }

    /// Reset statistics (not contents).
    pub fn reset_stats(&mut self) {
        self.stats = SharedMemStats::default();
    }

    /// Host-side bulk write starting at word `offset`.
    pub fn load_words(&mut self, offset: usize, words: &[u32]) -> Result<(), ExecError> {
        let end = offset + words.len();
        if end > self.data.len() {
            return Err(ExecError::SharedOutOfBounds {
                pc: 0,
                thread: 0,
                addr: end - 1,
                size: self.data.len(),
            });
        }
        self.data[offset..end].copy_from_slice(words);
        Ok(())
    }

    /// Host-side bulk read.
    pub fn read_words(&self, offset: usize, len: usize) -> Result<Vec<u32>, ExecError> {
        let end = offset + len;
        if end > self.data.len() {
            return Err(ExecError::SharedOutOfBounds {
                pc: 0,
                thread: 0,
                addr: end.saturating_sub(1),
                size: self.data.len(),
            });
        }
        Ok(self.data[offset..end].to_vec())
    }

    /// Single-word read through one read port (bounds-checked trap).
    #[inline]
    pub fn read(&mut self, pc: usize, thread: usize, addr: usize) -> Result<u32, ExecError> {
        match self.data.get(addr) {
            Some(&v) => {
                self.stats.reads += 1;
                Ok(v)
            }
            None => Err(ExecError::SharedOutOfBounds {
                pc,
                thread,
                addr,
                size: self.data.len(),
            }),
        }
    }

    /// Single-word write through the write port.
    #[inline]
    pub fn write(
        &mut self,
        pc: usize,
        thread: usize,
        addr: usize,
        value: u32,
    ) -> Result<(), ExecError> {
        let size = self.data.len();
        match self.data.get_mut(addr) {
            Some(slot) => {
                *slot = value;
                self.stats.writes += 1;
                Ok(())
            }
            None => Err(ExecError::SharedOutOfBounds {
                pc,
                thread,
                addr,
                size,
            }),
        }
    }

    /// Clocks to stream a read row of `lanes` threads through the 16:4
    /// mux: always the full `SP_COUNT / SHARED_READ_PORTS = 4` for a full
    /// row; a partial final row still takes ⌈lanes/4⌉ mux slots.
    pub fn read_row_cycles(lanes: usize) -> u64 {
        debug_assert!((1..=SP_COUNT).contains(&lanes));
        lanes.div_ceil(SHARED_READ_PORTS) as u64
    }

    /// Clocks to stream a write row of `lanes` threads through the 16:1
    /// write mux: one thread per clock.
    pub fn write_row_cycles(lanes: usize) -> u64 {
        debug_assert!((1..=SP_COUNT).contains(&lanes));
        lanes as u64
    }

    /// Account the port cycles of a read row (the sequencer calls this as
    /// its width counter steps).
    pub fn account_read_row(&mut self, lanes: usize) {
        self.stats.read_cycles += Self::read_row_cycles(lanes);
    }

    /// Account the port cycles of a write row.
    pub fn account_write_row(&mut self, lanes: usize) {
        self.stats.write_cycles += Self::write_row_cycles(lanes);
    }

    /// Account `rows` read rows at once (the predecoded path knows the
    /// block depth up front instead of stepping the width counter).
    pub fn account_read_rows(&mut self, lanes: usize, rows: usize) {
        self.stats.read_cycles += Self::read_row_cycles(lanes) * rows as u64;
    }

    /// Account `rows` write rows at once.
    pub fn account_write_rows(&mut self, lanes: usize, rows: usize) {
        self.stats.write_cycles += Self::write_row_cycles(lanes) * rows as u64;
    }

    /// Direct slice view (diagnostics, host verification, and the
    /// simulator's lane-parallel load path).
    pub fn as_slice(&self) -> &[u32] {
        &self.data
    }

    /// Account `n` word reads performed through [`SharedMemory::as_slice`]
    /// (the simulator's parallel load path bypasses [`SharedMemory::read`]).
    pub(crate) fn bump_reads(&mut self, n: u64) {
        self.stats.reads += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_are_trapped() {
        let mut m = SharedMemory::new(16);
        assert!(m.read(0, 0, 15).is_ok());
        let e = m.read(7, 3, 16).unwrap_err();
        assert_eq!(
            e,
            ExecError::SharedOutOfBounds {
                pc: 7,
                thread: 3,
                addr: 16,
                size: 16
            }
        );
        assert!(m.write(0, 0, 15, 1).is_ok());
        assert!(m.write(0, 0, 99, 1).is_err());
    }

    #[test]
    fn port_schedule_full_row() {
        // 16 threads: read = 4 clocks (4R ports), write = 16 clocks (1W).
        assert_eq!(SharedMemory::read_row_cycles(16), 4);
        assert_eq!(SharedMemory::write_row_cycles(16), 16);
    }

    #[test]
    fn port_schedule_partial_rows() {
        assert_eq!(SharedMemory::read_row_cycles(1), 1);
        assert_eq!(SharedMemory::read_row_cycles(4), 1);
        assert_eq!(SharedMemory::read_row_cycles(5), 2);
        assert_eq!(SharedMemory::write_row_cycles(3), 3);
    }

    #[test]
    fn bulk_io() {
        let mut m = SharedMemory::new(8);
        m.load_words(2, &[10, 20, 30]).unwrap();
        assert_eq!(m.read_words(0, 8).unwrap(), vec![0, 0, 10, 20, 30, 0, 0, 0]);
        assert!(m.load_words(6, &[1, 2, 3]).is_err());
        assert!(m.read_words(7, 2).is_err());
    }

    #[test]
    fn stats_accumulate() {
        let mut m = SharedMemory::new(8);
        m.read(0, 0, 0).unwrap();
        m.write(0, 0, 1, 5).unwrap();
        m.account_read_row(16);
        m.account_write_row(16);
        let s = m.stats();
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.read_cycles, 4);
        assert_eq!(s.write_cycles, 16);
        m.reset_stats();
        assert_eq!(m.stats(), SharedMemStats::default());
    }
}
