//! Error types for processor configuration, program loading and execution.

use std::fmt;

/// Configuration validation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// Thread count outside 1..=4096.
    Threads { requested: usize, max: usize },
    /// Registers per thread outside 1..=256.
    RegsPerThread { requested: usize },
    /// Total registers exceed the 64 K limit.
    TotalRegisters { requested: usize, max: usize },
    /// Shared memory must be non-empty.
    SharedWords { requested: usize },
    /// Stack depths must be non-zero.
    StackDepth,
    /// I-Mem capacity must be non-zero.
    ImemCapacity,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Threads { requested, max } => {
                write!(f, "thread count {requested} outside 1..={max}")
            }
            ConfigError::RegsPerThread { requested } => {
                write!(f, "regs per thread {requested} outside 1..=256")
            }
            ConfigError::TotalRegisters { requested, max } => {
                write!(f, "total registers {requested} exceed {max}")
            }
            ConfigError::SharedWords { requested } => {
                write!(f, "shared memory of {requested} words is invalid")
            }
            ConfigError::StackDepth => write!(f, "stack depths must be non-zero"),
            ConfigError::ImemCapacity => write!(f, "I-Mem capacity must be non-zero"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Program-load errors (the checks the host performs before writing the
/// externally re-loadable I-Mem).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// Program longer than the configured I-Mem.
    TooLarge { len: usize, capacity: usize },
    /// Program uses predicates but the processor was built without them
    /// (the optional parameter of §2).
    PredicatesDisabled { pc: usize },
    /// Program references a register beyond `regs_per_thread`.
    RegisterRange { pc: usize, reg: u8, limit: usize },
    /// Program has no terminating instruction.
    NoTerminator,
    /// A branch, call or loop targets an address outside the program.
    BadTarget { pc: usize, target: usize },
    /// A pre-decoded program was built for a different processor
    /// configuration (decodes bake in the thread count and timing).
    ConfigMismatch,
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::TooLarge { len, capacity } => {
                write!(
                    f,
                    "program of {len} words exceeds I-Mem capacity {capacity}"
                )
            }
            LoadError::PredicatesDisabled { pc } => write!(
                f,
                "instruction at {pc} uses predicates but the build has them disabled"
            ),
            LoadError::RegisterRange { pc, reg, limit } => write!(
                f,
                "instruction at {pc} references r{reg} but only {limit} regs/thread exist"
            ),
            LoadError::NoTerminator => write!(f, "program does not end in exit/bra/ret"),
            LoadError::BadTarget { pc, target } => {
                write!(
                    f,
                    "instruction at {pc} targets {target}, outside the program"
                )
            }
            LoadError::ConfigMismatch => {
                write!(f, "decoded program was built for a different configuration")
            }
        }
    }
}

impl std::error::Error for LoadError {}

/// Runtime execution errors (hardware traps).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// PC ran off the end of the program without `exit`.
    PcOutOfRange { pc: usize },
    /// Shared-memory access out of bounds.
    SharedOutOfBounds {
        pc: usize,
        thread: usize,
        addr: usize,
        size: usize,
    },
    /// Call stack overflow (Fig. 2's stack is finite).
    CallStackOverflow { pc: usize, depth: usize },
    /// `ret` with an empty call stack.
    CallStackUnderflow { pc: usize },
    /// Loop stack overflow.
    LoopStackOverflow { pc: usize, depth: usize },
    /// Execution exceeded the watchdog cycle budget.
    Watchdog { cycles: u64 },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::PcOutOfRange { pc } => write!(f, "PC {pc} out of program range"),
            ExecError::SharedOutOfBounds {
                pc,
                thread,
                addr,
                size,
            } => write!(
                f,
                "pc {pc}: thread {thread} accessed shared[{addr}] beyond size {size}"
            ),
            ExecError::CallStackOverflow { pc, depth } => {
                write!(f, "pc {pc}: call stack overflow (depth {depth})")
            }
            ExecError::CallStackUnderflow { pc } => {
                write!(f, "pc {pc}: ret with empty call stack")
            }
            ExecError::LoopStackOverflow { pc, depth } => {
                write!(f, "pc {pc}: loop stack overflow (depth {depth})")
            }
            ExecError::Watchdog { cycles } => {
                write!(f, "watchdog: execution exceeded {cycles} cycles")
            }
        }
    }
}

impl std::error::Error for ExecError {}
