//! Predecoded µop programs — the instruction cache of the host-side
//! simulator.
//!
//! The fetch/decode machine of [`sm`](crate::sm) used to re-extract
//! every instruction field (operand indices, immediates, guard
//! predicates, loop packing, cycle class and timing) on every *dynamic*
//! instruction. A [`DecodedProgram`] does all of that once, at
//! [`Processor::load_program`](crate::Processor::load_program) time,
//! lowering each [`Instruction`] into a flat, repr-packed [`Uop`]:
//!
//! * operand register fields resolved to plain indices;
//! * immediates widened per [`ImmForm`](simt_isa::ImmForm) (and loop
//!   count / end address unpacked);
//! * the optional predicate guard folded into two bytes (`guard_and`,
//!   `guard_xor`) so a lane's pass test is one AND + one XOR with no
//!   `Option` branch — see [`Uop::guard_passes`];
//! * `setp` destination and `selp` source predicate bits pre-shifted;
//! * the active-thread count after dynamic scaling, the block shape and
//!   the closed-form clock count pre-resolved against the processor
//!   configuration.
//!
//! A decode is specialized to one [`ProcessorConfig`] (the thread count
//! bakes into `active`/`clocks`) and is immutable, so it can be shared:
//! the compile cache keeps one per compiled artifact, a multi-core
//! `simt_system::System` hands one `Arc` to every core, and
//! [`Processor::reset`](crate::Processor::reset) keeps it alive across
//! runs. Decoding performs **no validation** — a `DecodedProgram` is
//! paired with the [`validate_program`] checks at
//! [`Processor::load_decoded`](crate::Processor::load_decoded) time,
//! exactly the checks `load_program` has always run.

use crate::config::ProcessorConfig;
use crate::error::LoadError;
use crate::sequencer::InstructionTiming;
use simt_isa::{CycleClass, Guard, Instruction, Opcode, Program};
use std::sync::Arc;

/// One predecoded micro-operation: an [`Instruction`] with every field
/// the inner loop needs pre-extracted, pre-widened and pre-timed.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Uop {
    /// The opcode — the dense dispatch discriminant of the run loop.
    pub opcode: Opcode,
    /// Sequencer cycle-counting class.
    pub class: CycleClass,
    /// Guard test byte: a lane executes iff
    /// `(pred & guard_and) ^ guard_xor != 0`.
    pub guard_and: u8,
    /// Guard flip byte (see `guard_and`).
    pub guard_xor: u8,
    /// Pre-shifted predicate bit: `1 << dst` for `setp.*`,
    /// `1 << sel` for `selp`, 0 otherwise.
    pub pred_bit: u8,
    /// Destination register index (0 for control flow).
    pub rd: u16,
    /// First source register index.
    pub ra: u16,
    /// Second source register index.
    pub rb: u16,
    /// Third source register index.
    pub rc: u16,
    /// Widened immediate: `imm32` for Imm32 forms, zero-extended
    /// `imm16` for Imm16 forms, the trip count for `loop`.
    pub imm: u32,
    /// Branch / call target; loop end address for `loop`.
    pub target: u32,
    /// Active threads after dynamic scaling.
    pub active: u32,
    /// Closed-form clocks this instruction occupies the machine.
    pub clocks: u32,
    /// Thread-block row width in lanes (memory port accounting).
    pub lanes: u16,
    /// Thread-block depth in rows (memory port accounting).
    pub depth: u16,
}

impl Uop {
    /// Lower one instruction for a processor configuration.
    fn decode(instr: &Instruction, config: &ProcessorConfig) -> Uop {
        let (guard_and, guard_xor) = match instr.guard {
            None => (0, 1),
            Some(Guard { pred, negate }) => {
                let mask = 1u8 << pred.index();
                (mask, if negate { mask } else { 0 })
            }
        };
        let pred_bit = match instr.opcode {
            Opcode::SetpEq
            | Opcode::SetpNe
            | Opcode::SetpLt
            | Opcode::SetpLe
            | Opcode::SetpGt
            | Opcode::SetpGe
            | Opcode::SetpLtu
            | Opcode::SetpGeu => 1u8 << instr.dst_pred().index(),
            Opcode::Selp => 1u8 << instr.sel_pred().index(),
            _ => 0,
        };
        let (imm, target, rd) = match instr.opcode {
            // Loop form: trip count in `imm`, end address in `target`
            // (the zero/empty-trip skip destination is derived from
            // `target` and the PC on that cold path — a u16 field
            // could not hold every address the I-Mem capacity allows).
            Opcode::Loop => (instr.loop_count(), instr.loop_end() as u32, 0),
            Opcode::Bra | Opcode::Brp | Opcode::Call => (0, instr.target() as u32, 0),
            _ => {
                let imm = match instr.imm_form() {
                    simt_isa::ImmForm::Imm32 => instr.imm32(),
                    simt_isa::ImmForm::Imm16 => instr.imm16(),
                    _ => 0,
                };
                (imm, 0, instr.rd.index() as u16)
            }
        };
        let active = InstructionTiming::scaled_threads(config.threads, instr.scale);
        let class = instr.opcode.cycle_class();
        let (lanes, depth) = InstructionTiming::block_shape(active);
        Uop {
            opcode: instr.opcode,
            class,
            guard_and,
            guard_xor,
            pred_bit,
            rd,
            ra: instr.ra.index() as u16,
            rb: instr.rb.index() as u16,
            rc: instr.rc.index() as u16,
            imm,
            target,
            active: active as u32,
            clocks: InstructionTiming::cycles(class, active) as u32,
            lanes: lanes as u16,
            depth: depth as u16,
        }
    }

    /// Whether a lane with predicate nibble `pred` executes this µop.
    #[inline(always)]
    pub fn guard_passes(&self, pred: u8) -> bool {
        (pred & self.guard_and) ^ self.guard_xor != 0
    }
}

/// A program lowered to flat µops for one processor configuration.
///
/// Immutable and cheap to share (`Arc<DecodedProgram>`): the runtime's
/// compile cache attaches one to every compiled artifact so repeated
/// stream launches and graph replays skip re-decoding entirely, and
/// `simt_system::System::load_all` decodes once for all cores.
#[derive(Debug)]
pub struct DecodedProgram {
    uops: Vec<Uop>,
    program: Arc<Program>,
    config: ProcessorConfig,
}

impl DecodedProgram {
    /// Lower `program` for `config`.
    ///
    /// Decoding never fails; pair it with [`validate_program`] (which
    /// [`Processor::load_decoded`](crate::Processor::load_decoded)
    /// runs) before executing the result.
    pub fn decode(program: Arc<Program>, config: &ProcessorConfig) -> Self {
        let uops = program
            .instructions()
            .iter()
            .map(|i| Uop::decode(i, config))
            .collect();
        DecodedProgram {
            uops,
            program,
            config: config.clone(),
        }
    }

    /// The source program.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// The configuration the decode is specialized to.
    pub fn config(&self) -> &ProcessorConfig {
        &self.config
    }

    /// Number of µops (equal to the program's instruction count).
    pub fn len(&self) -> usize {
        self.uops.len()
    }

    /// True when the program holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.uops.is_empty()
    }

    /// The µop stream.
    #[inline]
    pub(crate) fn uops(&self) -> &[Uop] {
        &self.uops
    }
}

/// The host-side checks performed before writing the externally
/// re-loadable I-Mem (Fig. 2): capacity, terminator, predicate build,
/// register ranges and control-flow targets.
pub fn validate_program(program: &Program, config: &ProcessorConfig) -> Result<(), LoadError> {
    if program.len() > config.imem_capacity {
        return Err(LoadError::TooLarge {
            len: program.len(),
            capacity: config.imem_capacity,
        });
    }
    if !program.has_terminator() {
        return Err(LoadError::NoTerminator);
    }
    for (pc, i) in program.instructions().iter().enumerate() {
        if i.uses_predicates() && !config.predicates {
            return Err(LoadError::PredicatesDisabled { pc });
        }
        let limit = config.regs_per_thread;
        let check = |r: simt_isa::Reg| -> Result<(), LoadError> {
            if r.index() >= limit {
                Err(LoadError::RegisterRange {
                    pc,
                    reg: r.0,
                    limit,
                })
            } else {
                Ok(())
            }
        };
        // setp's rd field holds a predicate index, not a register.
        let writes_gpr = i.opcode.writes_rd()
            && !matches!(
                i.opcode,
                Opcode::SetpEq
                    | Opcode::SetpNe
                    | Opcode::SetpLt
                    | Opcode::SetpLe
                    | Opcode::SetpGt
                    | Opcode::SetpGe
                    | Opcode::SetpLtu
                    | Opcode::SetpGeu
            );
        if writes_gpr {
            check(i.rd)?;
        }
        if i.opcode.reg_reads() >= 1 {
            check(i.ra)?;
        }
        if i.opcode.reg_reads() >= 2 && i.opcode.imm_form() != simt_isa::ImmForm::Imm32 {
            check(i.rb)?;
        }
        if i.opcode.reads_rc() && i.opcode != Opcode::Selp {
            check(i.rc)?;
        }
        match i.opcode {
            Opcode::Bra | Opcode::Brp | Opcode::Call if i.target() >= program.len() => {
                return Err(LoadError::BadTarget {
                    pc,
                    target: i.target(),
                });
            }
            Opcode::Loop if i.loop_end() >= program.len() => {
                return Err(LoadError::BadTarget {
                    pc,
                    target: i.loop_end(),
                });
            }
            _ => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ProcessorConfig {
        ProcessorConfig::small()
    }

    #[test]
    fn guard_bytes_cover_all_three_cases() {
        let plain = Uop::decode(&Instruction::new(Opcode::Add), &cfg());
        for p in 0..16u8 {
            assert!(plain.guard_passes(p));
        }
        let pos = Uop::decode(&Instruction::new(Opcode::Add).guarded(2, false), &cfg());
        let neg = Uop::decode(&Instruction::new(Opcode::Add).guarded(2, true), &cfg());
        for p in 0..16u8 {
            let bit = p >> 2 & 1 != 0;
            assert_eq!(pos.guard_passes(p), bit, "@p2 nibble {p:#06b}");
            assert_eq!(neg.guard_passes(p), !bit, "@!p2 nibble {p:#06b}");
        }
    }

    #[test]
    fn immediates_widen_per_form() {
        let i32op = Uop::decode(&Instruction::new(Opcode::Addi).imm(0xDEAD_BEEF), &cfg());
        assert_eq!(i32op.imm, 0xDEAD_BEEF);
        let i16op = Uop::decode(&Instruction::new(Opcode::Shli).imm(0xDEAD_BEEF), &cfg());
        assert_eq!(i16op.imm, 0xBEEF);
        let none = Uop::decode(&Instruction::new(Opcode::Add).imm(7), &cfg());
        assert_eq!(none.imm, 0);
    }

    #[test]
    fn loop_fields_unpack() {
        let l = Uop::decode(&Instruction::new(Opcode::Loop).imm(0x0030_0005), &cfg());
        assert_eq!(l.imm, 5); // trip count
        assert_eq!(l.target, 0x30); // end address
        assert_eq!(l.rd, 0); // dead GPR field stays clear
    }

    #[test]
    fn timing_is_preresolved_against_the_config() {
        let c = cfg(); // 64 threads
        let sts = Uop::decode(&Instruction::new(Opcode::Sts), &c);
        assert_eq!(sts.active, 64);
        assert_eq!(sts.clocks, 64); // 4 rows x 16-lane write mux
        assert_eq!((sts.lanes, sts.depth), (16, 4));
        let scaled = Uop::decode(&Instruction::new(Opcode::Sts).scaled(4), &c);
        assert_eq!(scaled.active, 4);
        assert_eq!(scaled.clocks, 4);
        assert_eq!((scaled.lanes, scaled.depth), (4, 1));
    }

    #[test]
    fn decode_matches_program_length_and_keeps_source() {
        let p = Arc::new(Program::from_instructions(vec![
            Instruction::new(Opcode::Stid).rd(1),
            Instruction::new(Opcode::Exit),
        ]));
        let d = DecodedProgram::decode(Arc::clone(&p), &cfg());
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
        assert!(Arc::ptr_eq(d.program(), &p));
        assert_eq!(d.config(), &cfg());
    }

    #[test]
    fn validation_matches_load_checks() {
        let no_term = Program::from_instructions(vec![Instruction::new(Opcode::Nop)]);
        assert_eq!(
            validate_program(&no_term, &cfg()),
            Err(LoadError::NoTerminator)
        );
        let bad_reg = Program::from_instructions(vec![
            Instruction::new(Opcode::Add).rd(99).ra(1).rb(1),
            Instruction::new(Opcode::Exit),
        ]);
        assert!(matches!(
            validate_program(&bad_reg, &cfg()),
            Err(LoadError::RegisterRange { pc: 0, reg: 99, .. })
        ));
        let bad_target = Program::from_instructions(vec![
            Instruction::new(Opcode::Bra).imm(9),
            Instruction::new(Opcode::Exit),
        ]);
        assert!(matches!(
            validate_program(&bad_target, &cfg()),
            Err(LoadError::BadTarget { pc: 0, target: 9 })
        ));
        let pred = Program::from_instructions(vec![
            Instruction::new(Opcode::Add)
                .rd(1)
                .ra(1)
                .rb(1)
                .guarded(0, false),
            Instruction::new(Opcode::Exit),
        ]);
        let no_preds = ProcessorConfig::small().with_predicates(false);
        assert_eq!(
            validate_program(&pred, &no_preds),
            Err(LoadError::PredicatesDisabled { pc: 0 })
        );
    }
}
