//! Per-thread instruction semantics, routed through the bit-exact
//! datapath models of `simt-datapath` — the simulator computes every
//! multiply through the DSP-vector composition and every shift through
//! the multiplicative shifter, so an RTL bug class (wrong vector
//! arrangement, wrong carry, wrong mask) would surface as a wrong result
//! here, not just as a wrong cycle count.

use simt_datapath::{
    logic::LogicOp, Int32Multiplier, LogicUnit, MultiplicativeShifter, PipelinedAdder32, ShiftKind,
    Signedness,
};
use simt_isa::{Instruction, Opcode};

/// The execution datapath of one SP (all SPs are identical; the
/// simulator shares one instance since the models are stateless).
#[derive(Debug, Clone, Default)]
pub struct Datapath {
    pub(crate) mult: Int32Multiplier,
    pub(crate) shifter: MultiplicativeShifter,
    pub(crate) adder: PipelinedAdder32,
    pub(crate) logic: LogicUnit,
}

/// Operand bundle for one thread's lane.
#[derive(Debug, Clone, Copy)]
pub struct Operands {
    /// `ra` value.
    pub a: u32,
    /// `rb` value (or 0 where dead).
    pub b: u32,
    /// `rc` value (or 0).
    pub c: u32,
    /// Thread id.
    pub tid: u32,
    /// Configured thread count (`sntid`).
    pub ntid: u32,
    /// Predicate source for `selp`.
    pub sel_pred: bool,
}

impl Datapath {
    /// New datapath.
    pub fn new() -> Self {
        Self::default()
    }

    /// Evaluate a non-memory, non-control instruction for one lane.
    /// Returns the value destined for `rd`.
    ///
    /// # Panics
    /// If called with a memory, control or `setp` opcode (those are
    /// handled by the SM loop).
    pub fn eval(&self, instr: &Instruction, ops: Operands) -> u32 {
        let Operands { a, b, c, .. } = ops;
        let imm = instr.imm32();
        let imm16 = instr.imm16();
        match instr.opcode {
            Opcode::Add => self.adder.add(a, b),
            Opcode::Sub => self.adder.sub(a, b),
            Opcode::Min => self.adder.min_s(a, b),
            Opcode::Max => self.adder.max_s(a, b),
            Opcode::Abs => self.adder.abs(a),
            Opcode::Neg => self.adder.neg(a),
            Opcode::Sad => self.adder.sad(a, b, c),
            Opcode::Addi => self.adder.add(a, imm),
            Opcode::Subi => self.adder.sub(a, imm),
            Opcode::MulLo => self.mult.mul_lo(a, b, Signedness::Signed),
            Opcode::MulHi => self.mult.mul_hi(a, b, Signedness::Signed),
            Opcode::MuluHi => self.mult.mul_hi(a, b, Signedness::Unsigned),
            Opcode::MadLo => self
                .adder
                .add(self.mult.mul_lo(a, b, Signedness::Signed), c),
            Opcode::MadHi => self
                .adder
                .add(self.mult.mul_hi(a, b, Signedness::Signed), c),
            Opcode::Muli => self.mult.mul_lo(a, imm, Signedness::Signed),
            Opcode::And => self.logic.eval(LogicOp::And, a, b),
            Opcode::Or => self.logic.eval(LogicOp::Or, a, b),
            Opcode::Xor => self.logic.eval(LogicOp::Xor, a, b),
            Opcode::Not => self.logic.eval(LogicOp::Not, a, 0),
            Opcode::Cnot => self.logic.eval(LogicOp::Cnot, a, 0),
            Opcode::Andi => self.logic.eval(LogicOp::And, a, imm),
            Opcode::Ori => self.logic.eval(LogicOp::Or, a, imm),
            Opcode::Xori => self.logic.eval(LogicOp::Xor, a, imm),
            Opcode::Popc => self.logic.eval(LogicOp::Popc, a, 0),
            Opcode::Clz => self.logic.eval(LogicOp::Clz, a, 0),
            Opcode::Brev => self.logic.eval(LogicOp::Brev, a, 0),
            Opcode::Shl => self.shifter.shift(ShiftKind::Lsl, a, b),
            Opcode::Lsr => self.shifter.shift(ShiftKind::Lsr, a, b),
            Opcode::Asr => self.shifter.shift(ShiftKind::Asr, a, b),
            Opcode::Shli => self.shifter.shift(ShiftKind::Lsl, a, imm16),
            Opcode::Lsri => self.shifter.shift(ShiftKind::Lsr, a, imm16),
            Opcode::Asri => self.shifter.shift(ShiftKind::Asr, a, imm16),
            Opcode::SatAdd => self.adder.sat_add(a, b),
            Opcode::SatSub => self.adder.sat_sub(a, b),
            Opcode::MulShr => {
                // Fixed-point scaling: full 64-bit signed product,
                // arithmetic shift right by imm (0..=63), low 32 bits.
                let full = self.mult.mul_full(a, b, Signedness::Signed) as i64;
                (full >> (imm16 & 63)) as u32
            }
            Opcode::ShAdd => {
                // Address generation: (a << imm) + b.
                self.adder
                    .add(self.shifter.shift(ShiftKind::Lsl, a, imm16 & 31), b)
            }
            Opcode::Bfe => {
                let pos = imm16 & 0x1F;
                let len = (imm16 >> 5) & 0x3F;
                let shifted = self.shifter.shift(ShiftKind::Lsr, a, pos);
                if len >= 32 {
                    shifted
                } else {
                    shifted & ((1u32 << len) - 1)
                }
            }
            Opcode::Rotri => self.shifter.rotate_right(a, imm16),
            Opcode::Selp => {
                if ops.sel_pred {
                    a
                } else {
                    b
                }
            }
            Opcode::Mov => a,
            Opcode::Movi => imm,
            Opcode::Stid => ops.tid,
            Opcode::Sntid => ops.ntid,
            Opcode::SetpEq
            | Opcode::SetpNe
            | Opcode::SetpLt
            | Opcode::SetpLe
            | Opcode::SetpGt
            | Opcode::SetpGe
            | Opcode::SetpLtu
            | Opcode::SetpGeu
            | Opcode::Lds
            | Opcode::Sts
            | Opcode::Bra
            | Opcode::Brp
            | Opcode::Call
            | Opcode::Ret
            | Opcode::Loop
            | Opcode::Exit
            | Opcode::Nop
            | Opcode::Bar => {
                unreachable!("{:?} is not an ALU-value opcode", instr.opcode)
            }
        }
    }

    /// Evaluate a `setp.*` comparison; routed through the shared
    /// subtractor's flags exactly as the hardware compares.
    pub fn eval_setp(&self, opcode: Opcode, a: u32, b: u32) -> bool {
        let (_, f) = self.adder.add_carry(a, !b, true);
        let lt_signed = f.negative != f.overflow;
        let eq = a == b;
        let lt_unsigned = !f.carry; // borrow
        match opcode {
            Opcode::SetpEq => eq,
            Opcode::SetpNe => !eq,
            Opcode::SetpLt => lt_signed,
            Opcode::SetpLe => lt_signed || eq,
            Opcode::SetpGt => !(lt_signed || eq),
            Opcode::SetpGe => !lt_signed,
            Opcode::SetpLtu => lt_unsigned,
            Opcode::SetpGeu => !lt_unsigned,
            _ => unreachable!("{opcode:?} is not a setp opcode"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_isa::Instruction;

    fn ops(a: u32, b: u32, c: u32) -> Operands {
        Operands {
            a,
            b,
            c,
            tid: 3,
            ntid: 64,
            sel_pred: false,
        }
    }

    #[test]
    fn arithmetic_semantics() {
        let dp = Datapath::new();
        let i = |op| Instruction::new(op);
        assert_eq!(dp.eval(&i(Opcode::Add), ops(2, 3, 0)), 5);
        assert_eq!(dp.eval(&i(Opcode::Sub), ops(2, 3, 0)) as i32, -1);
        assert_eq!(dp.eval(&i(Opcode::Sad), ops(2, 7, 10)), 15);
        assert_eq!(
            dp.eval(&i(Opcode::MulLo), ops(-4i32 as u32, 3, 0)) as i32,
            -12
        );
        assert_eq!(dp.eval(&i(Opcode::MadLo), ops(4, 3, 5)), 17);
        assert_eq!(
            dp.eval(&i(Opcode::MuluHi), ops(0xFFFF_FFFF, 2, 0)),
            1 // 0xFFFFFFFF*2 = 0x1_FFFFFFFE
        );
    }

    #[test]
    fn mulshr_fixed_point_scaling() {
        let dp = Datapath::new();
        // Q15 multiply: 0.5 * 0.5 = 0.25 -> (16384 * 16384) >> 15 = 8192
        let i = Instruction::new(Opcode::MulShr).imm(15);
        assert_eq!(dp.eval(&i, ops(16384, 16384, 0)), 8192);
        // negative operand keeps sign through the arithmetic shift
        let r = dp.eval(&i, ops(-16384i32 as u32, 16384, 0));
        assert_eq!(r as i32, -8192);
    }

    #[test]
    fn shadd_and_bfe() {
        let dp = Datapath::new();
        let sh = Instruction::new(Opcode::ShAdd).imm(2);
        assert_eq!(dp.eval(&sh, ops(5, 3, 0)), 23); // (5<<2)+3
        let bfe = Instruction::new(Opcode::Bfe).imm(4 | (8 << 5));
        assert_eq!(dp.eval(&bfe, ops(0xABCD_EF12, 0, 0)), 0xF1);
    }

    #[test]
    fn selp_and_specials() {
        let dp = Datapath::new();
        let i = Instruction::new(Opcode::Selp);
        let mut o = ops(11, 22, 0);
        o.sel_pred = true;
        assert_eq!(dp.eval(&i, o), 11);
        o.sel_pred = false;
        assert_eq!(dp.eval(&i, o), 22);
        assert_eq!(dp.eval(&Instruction::new(Opcode::Stid), o), 3);
        assert_eq!(dp.eval(&Instruction::new(Opcode::Sntid), o), 64);
    }

    #[test]
    fn setp_all_conditions() {
        let dp = Datapath::new();
        let a = -5i32 as u32;
        let b = 3u32;
        assert!(!dp.eval_setp(Opcode::SetpEq, a, b));
        assert!(dp.eval_setp(Opcode::SetpNe, a, b));
        assert!(dp.eval_setp(Opcode::SetpLt, a, b)); // -5 < 3 signed
        assert!(!dp.eval_setp(Opcode::SetpLtu, a, b)); // 0xFFFFFFFB > 3 unsigned
        assert!(dp.eval_setp(Opcode::SetpGeu, a, b));
        assert!(dp.eval_setp(Opcode::SetpLe, 3, 3));
        assert!(!dp.eval_setp(Opcode::SetpGt, 3, 3));
        assert!(dp.eval_setp(Opcode::SetpGe, 3, 3));
    }

    #[test]
    fn shifts_by_register_value() {
        let dp = Datapath::new();
        assert_eq!(dp.eval(&Instruction::new(Opcode::Shl), ops(1, 4, 0)), 16);
        assert_eq!(dp.eval(&Instruction::new(Opcode::Shl), ops(1, 32, 0)), 0); // out of range
        assert_eq!(
            dp.eval(&Instruction::new(Opcode::Asr), ops(0x8000_0000, 40, 0)),
            0xFFFF_FFFF // negative, out of range -> -1
        );
    }
}
