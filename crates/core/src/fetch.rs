//! Clock-granular model of the instruction fetch/decode pipeline
//! (Fig. 2): the four stage registers between the PC and the issue
//! point, taken-branch zeroing, and the zero-overhead loop buffer.
//!
//! The [`Processor`](crate::Processor) accounts clocks with closed-form
//! arithmetic; this module re-derives the same totals *mechanically*, by
//! replaying an execution trace through explicit stage registers:
//!
//! * instructions move `PC → IF (I-Mem read) → DE (decode) → DC (control
//!   delay chain) → issue`, one stage per clock, stalling while the
//!   issue unit's [`PipelineControl`] counters run;
//! * a taken branch "zeroes out the following instructions in the
//!   pipeline" (§3) — the wrong-path instructions in IF/DE/DC become
//!   bubbles, which is exactly where the
//!   [`FETCH_PIPELINE_DEPTH`]-clock flush
//!   penalty comes from;
//! * zero-overhead loop back-edges redirect the PC from the sequencer's
//!   loop-end comparison *without* zeroing — the body instructions
//!   re-enter fetch early enough to issue back-to-back (the
//!   "single-cycle DSP processor-like loop instructions" of §3).
//!
//! A replay returns a [`ClockLog`] whose totals are asserted equal to
//! the simulator's [`ExecStats`](crate::ExecStats) — the two independent
//! derivations of the machine's timing must agree clock for clock.

use crate::sequencer::{PipelineControl, FETCH_PIPELINE_DEPTH};
use crate::sm::TraceEntry;
use serde::{Deserialize, Serialize};
use simt_isa::Program;

/// What occupied the issue point on one clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClockEvent {
    /// Filling: the stage registers hold no issuable instruction yet.
    Fill,
    /// The issue unit is streaming thread rows of the instruction at
    /// `pc` (one event per clock it occupies the machine).
    Busy {
        /// Program counter of the in-flight instruction.
        pc: usize,
    },
    /// A flush bubble from a taken branch (a zeroed wrong-path slot).
    FlushBubble {
        /// PC of the branch that caused the zeroing.
        branch_pc: usize,
    },
}

/// The clock-by-clock log of a replay.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClockLog {
    /// One event per clock, in order.
    pub events: Vec<ClockEvent>,
    /// Instructions issued.
    pub issued: u64,
    /// Wrong-path instructions zeroed by taken branches.
    pub zeroed_instructions: u64,
    /// Loop back-edges taken without a flush.
    pub loop_backedges: u64,
}

impl ClockLog {
    /// Total clocks.
    pub fn cycles(&self) -> u64 {
        self.events.len() as u64
    }

    /// Clocks spent on fill bubbles.
    pub fn fill_cycles(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| matches!(e, ClockEvent::Fill))
            .count() as u64
    }

    /// Clocks spent on flush bubbles.
    pub fn flush_cycles(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| matches!(e, ClockEvent::FlushBubble { .. }))
            .count() as u64
    }
}

/// The four fetch stages between the PC and the issue point.
const STAGES: usize = FETCH_PIPELINE_DEPTH as usize;

/// Stage registers: each slot holds the PC of an in-flight (not yet
/// issued) instruction, or a bubble.
#[derive(Debug, Clone)]
struct StageRegs {
    /// `slots[0]` is the oldest (next to issue, the DC output);
    /// `slots[STAGES-1]` the youngest (just fetched).
    slots: [Option<usize>; STAGES],
}

impl StageRegs {
    fn empty() -> Self {
        StageRegs {
            slots: [None; STAGES],
        }
    }

    /// Advance one clock: shift toward issue, fetching `fetch_pc` into
    /// the youngest slot. Returns the instruction PC that reached the
    /// issue point (if any).
    fn shift_in(&mut self, fetch_pc: Option<usize>) -> Option<usize> {
        let out = self.slots[0];
        for i in 0..STAGES - 1 {
            self.slots[i] = self.slots[i + 1];
        }
        self.slots[STAGES - 1] = fetch_pc;
        out
    }

    /// Zero every in-flight instruction (taken branch, §3). Returns how
    /// many real instructions were killed.
    fn zero(&mut self) -> u64 {
        let killed = self.slots.iter().filter(|s| s.is_some()).count() as u64;
        self.slots = [None; STAGES];
        killed
    }

    /// Pre-fill the stages with sequential PCs starting at `start` — the
    /// zero-overhead loop buffer re-injecting the body.
    fn prefill(&mut self, start: usize) {
        for (i, slot) in self.slots.iter_mut().enumerate() {
            *slot = Some(start + i);
        }
    }
}

/// Replay a trace through the stage-register model.
///
/// `trace` must be the transcript of a completed run
/// ([`Processor::run_traced`](crate::Processor::run_traced)); `program`
/// the program it executed.
///
/// # Panics
/// If the trace is inconsistent with the program (wrong PCs) — that
/// would mean the simulator and this model disagree about the
/// instruction stream itself.
pub fn replay(program: &Program, trace: &[TraceEntry]) -> ClockLog {
    let mut log = ClockLog {
        events: Vec::new(),
        issued: 0,
        zeroed_instructions: 0,
        loop_backedges: 0,
    };
    let mut stages = StageRegs::empty();
    let mut fetch_pc = 0usize;
    let mut idx = 0usize; // next trace entry to issue

    while idx < trace.len() {
        // Advance fetch one clock.
        let arrived = stages.shift_in(Some(fetch_pc));
        fetch_pc += 1;
        match arrived {
            None => {
                log.events.push(ClockEvent::Fill);
                continue;
            }
            Some(pc) => {
                let entry = &trace[idx];
                assert_eq!(
                    pc, entry.pc,
                    "stage model delivered pc {pc}, simulator issued {}",
                    entry.pc
                );
                let instr = program.fetch(pc).expect("trace pc in program");
                // The issue unit occupies the machine for the
                // instruction's clocks; re-derive them from the counter
                // hardware rather than trusting the trace.
                let clocks =
                    PipelineControl::start(instr.opcode.cycle_class(), entry.active).run_to_end();
                assert_eq!(
                    clocks, entry.clocks,
                    "counter hardware disagrees with the simulator at pc {pc}"
                );
                for _ in 0..clocks {
                    log.events.push(ClockEvent::Busy { pc });
                }
                log.issued += 1;
                idx += 1;

                // Where does fetch continue?
                let next_pc = trace.get(idx).map(|e| e.pc);
                match entry.jumped {
                    Some(target) => {
                        // Taken branch: zero the wrong path, pay the
                        // refill as flush bubbles.
                        log.zeroed_instructions += stages.zero();
                        for _ in 0..FETCH_PIPELINE_DEPTH {
                            log.events.push(ClockEvent::FlushBubble { branch_pc: pc });
                        }
                        stages.prefill(target);
                        fetch_pc = target + STAGES;
                        // The prefilled stages deliver `target` on the
                        // next shift; drop the redundant shift clock by
                        // consuming one slot now.
                        continue;
                    }
                    None => {
                        if let Some(np) = next_pc {
                            if np != pc + 1 {
                                // Zero-overhead loop back-edge: redirect
                                // without zeroing — the loop buffer
                                // replays the body.
                                log.loop_backedges += 1;
                                stages.prefill(np);
                                fetch_pc = np + STAGES;
                            }
                        }
                    }
                }
            }
        }
    }
    log
}

/// Convenience: run a program traced and replay it, asserting the two
/// derivations agree; returns (stats, log).
pub fn run_and_replay(
    cpu: &mut crate::Processor,
    opts: crate::RunOptions,
) -> Result<(crate::ExecStats, ClockLog), crate::ExecError> {
    let program = cpu.program().cloned().expect("no program loaded");
    let (stats, trace) = cpu.run_traced(opts)?;
    let log = replay(&program, &trace);
    assert_eq!(
        log.cycles(),
        stats.cycles,
        "stage-register replay and closed-form accounting disagree"
    );
    Ok((stats, log))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Processor, ProcessorConfig, RunOptions};
    use simt_isa::assemble;

    fn replay_src(src: &str) -> (crate::ExecStats, ClockLog) {
        let mut cpu = Processor::new(ProcessorConfig::small()).unwrap();
        let p = assemble(src).unwrap();
        cpu.load_program(&p).unwrap();
        run_and_replay(&mut cpu, RunOptions::default()).unwrap()
    }

    #[test]
    fn straight_line_replay_matches() {
        let (stats, log) =
            replay_src("  stid r1\n  add r2, r1, r1\n  lds r3, [r1+0]\n  sts [r1+0], r2\n  exit");
        assert_eq!(log.cycles(), stats.cycles);
        assert_eq!(log.fill_cycles(), FETCH_PIPELINE_DEPTH);
        assert_eq!(log.flush_cycles(), 0);
        assert_eq!(log.issued, 5);
        assert_eq!(log.zeroed_instructions, 0);
    }

    #[test]
    fn taken_branch_zeroes_wrong_path() {
        let (stats, log) = replay_src("  bra skip\n  nop\n  nop\nskip:\n  exit");
        assert_eq!(log.cycles(), stats.cycles);
        assert_eq!(log.flush_cycles(), FETCH_PIPELINE_DEPTH);
        // The wrong-path nops (and more sequential fetches) were zeroed.
        assert!(log.zeroed_instructions >= 2, "{}", log.zeroed_instructions);
    }

    #[test]
    fn loop_backedge_has_no_bubbles() {
        let (stats, log) =
            replay_src("  loop 8, done\n  addi r1, r1, 1\n  addi r2, r2, 1\ndone:\n  exit");
        assert_eq!(log.cycles(), stats.cycles);
        assert_eq!(log.flush_cycles(), 0, "zero-overhead means zero bubbles");
        assert_eq!(log.loop_backedges, 7);
        assert_eq!(log.issued, 1 + 8 * 2 + 1);
    }

    #[test]
    fn call_ret_pays_two_flushes() {
        let (stats, log) = replay_src("  call f\n  exit\nf:\n  addi r1, r1, 1\n  ret");
        assert_eq!(log.cycles(), stats.cycles);
        assert_eq!(log.flush_cycles(), 2 * FETCH_PIPELINE_DEPTH);
    }

    #[test]
    fn busy_clocks_match_store_width() {
        let (_, log) = replay_src("  stid r1\n  sts [r1+0], r1\n  exit");
        // 64 threads -> 4 rows x 16 lanes = 64 busy clocks on the store.
        let store_busy = log
            .events
            .iter()
            .filter(|e| matches!(e, ClockEvent::Busy { pc: 1 }))
            .count();
        assert_eq!(store_busy, 64);
    }

    #[test]
    fn predicated_branch_not_taken_is_free() {
        let mut cpu = Processor::new(ProcessorConfig::small()).unwrap();
        // p0 is false -> brp falls through: no flush.
        let p = assemble(
            "  movi r1, 1\n  movi r2, 2\n  setp.gt p0, r1, r2\n  @p0 brp back\nback:\n  exit",
        )
        .unwrap();
        cpu.load_program(&p).unwrap();
        let (stats, log) = run_and_replay(&mut cpu, RunOptions::default()).unwrap();
        assert_eq!(log.cycles(), stats.cycles);
        assert_eq!(log.flush_cycles(), 0);
    }
}
