//! Execution statistics and derived performance figures.

use crate::shared::SharedMemStats;
use serde::{Deserialize, Serialize};

/// Cycle-exact accounting of one program run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecStats {
    /// Total clocks, including pipeline fill and branch flushes.
    pub cycles: u64,
    /// Instructions issued (loop iterations re-issue body instructions).
    pub instructions: u64,
    /// Clocks spent filling the fetch pipeline at start.
    pub fill_cycles: u64,
    /// Clocks lost to taken-branch pipeline flushes.
    pub branch_flush_cycles: u64,
    /// Number of taken branches (bra / taken brp / call / ret).
    pub branches_taken: u64,
    /// Zero-overhead loop back-edges taken (no flush cost).
    pub loop_backedges: u64,
    /// Clocks in operation-class instructions.
    pub op_cycles: u64,
    /// Clocks in loads.
    pub load_cycles: u64,
    /// Clocks in stores.
    pub store_cycles: u64,
    /// Clocks in single-cycle instructions.
    pub single_cycles: u64,
    /// Shared-memory statistics.
    pub mem: SharedMemStats,
    /// Thread-operations retired (sum of active threads over operation
    /// and memory instructions) — the numerator of GOPS.
    pub thread_ops: u64,
}

impl ExecStats {
    /// Field-wise accumulate another run's statistics into `self`.
    ///
    /// Lives next to the struct (rather than as a helper in a consumer
    /// crate) and destructures `other` exhaustively, so adding a field
    /// to [`ExecStats`] without extending the merge is a compile error
    /// — counters can't silently drop out of aggregates.
    pub fn merge(&mut self, other: &Self) {
        let ExecStats {
            cycles,
            instructions,
            fill_cycles,
            branch_flush_cycles,
            branches_taken,
            loop_backedges,
            op_cycles,
            load_cycles,
            store_cycles,
            single_cycles,
            mem,
            thread_ops,
        } = other;
        self.cycles += cycles;
        self.instructions += instructions;
        self.fill_cycles += fill_cycles;
        self.branch_flush_cycles += branch_flush_cycles;
        self.branches_taken += branches_taken;
        self.loop_backedges += loop_backedges;
        self.op_cycles += op_cycles;
        self.load_cycles += load_cycles;
        self.store_cycles += store_cycles;
        self.single_cycles += single_cycles;
        self.mem.merge(mem);
        self.thread_ops += thread_ops;
    }

    /// Instructions per clock.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Mean clocks per instruction.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }

    /// Wall-clock seconds at a given clock frequency in MHz (e.g. the
    /// 956 MHz restricted Fmax of §5).
    pub fn seconds_at(&self, fmax_mhz: f64) -> f64 {
        self.cycles as f64 / (fmax_mhz * 1e6)
    }

    /// Thread-operations per second at a clock frequency in MHz
    /// (effective GOPS when divided by 1e9).
    pub fn ops_per_second_at(&self, fmax_mhz: f64) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.thread_ops as f64 / self.seconds_at(fmax_mhz)
        }
    }

    /// Consistency check: the per-class cycle buckets plus fill and
    /// flushes account for every clock.
    pub fn buckets_consistent(&self) -> bool {
        self.fill_cycles
            + self.branch_flush_cycles
            + self.op_cycles
            + self.load_cycles
            + self.store_cycles
            + self.single_cycles
            == self.cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_fieldwise() {
        let mut a = ExecStats {
            cycles: 10,
            instructions: 2,
            ..Default::default()
        };
        let mut b = ExecStats {
            cycles: 5,
            instructions: 3,
            thread_ops: 7,
            ..Default::default()
        };
        b.mem.reads = 11;
        b.mem.write_cycles = 13;
        a.merge(&b);
        assert_eq!(a.cycles, 15);
        assert_eq!(a.instructions, 5);
        assert_eq!(a.thread_ops, 7);
        assert_eq!(a.mem.reads, 11);
        assert_eq!(a.mem.write_cycles, 13);
    }

    #[test]
    fn derived_metrics() {
        let s = ExecStats {
            cycles: 1000,
            instructions: 250,
            thread_ops: 16000,
            ..Default::default()
        };
        assert!((s.ipc() - 0.25).abs() < 1e-12);
        assert!((s.cpi() - 4.0).abs() < 1e-12);
        let secs = s.seconds_at(1000.0); // 1 GHz -> 1 ns/clk
        assert!((secs - 1e-6).abs() < 1e-15);
        assert!((s.ops_per_second_at(1000.0) - 16e9).abs() < 1.0);
    }

    #[test]
    fn zero_safe() {
        let s = ExecStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.cpi(), 0.0);
        assert_eq!(s.ops_per_second_at(950.0), 0.0);
        assert!(s.buckets_consistent());
    }
}
