//! # simt-core — cycle-accurate simulator of the 950 MHz SIMT soft processor
//!
//! One streaming multiprocessor (SM) of 16 scalar processors (SPs)
//! executing all threads in lockstep: "every thread in the current
//! instruction is issued before the next instruction is started" (§2).
//! The simulator reproduces, at clock granularity, the machinery the
//! paper builds for its near-GHz fetch/decode (§3):
//!
//! * the **pipeline-advance control** of Fig. 3 with its width/depth
//!   counters, the *registered* end-of-instruction comparison (count to
//!   N−1), the single-cycle-instruction trap, and per-instruction
//!   **dynamic thread scaling** ([`sequencer`]);
//! * the **4R-1W multi-port shared memory** whose fixed, conflict-free
//!   port schedule makes loads cost 4 clocks per 16-thread row and stores
//!   16 ([`shared`]);
//! * a register file of up to 4096 threads × 64 K registers ([`regfile`]);
//! * per-lane execution routed through the **bit-exact datapath models**
//!   of `simt-datapath` — every multiply goes through the DSP-vector
//!   composition, every shift through the multiplicative shifter
//!   ([`alu`]);
//! * uniform control flow with the Fig. 2 call stack, zero-overhead
//!   loops, and taken-branch pipeline zeroing ([`sm`]).
//!
//! ## Quick example
//!
//! ```
//! use simt_core::{Processor, ProcessorConfig, RunOptions};
//! use simt_isa::assemble;
//!
//! let mut cpu = Processor::new(ProcessorConfig::small()).unwrap();
//! let program = assemble(
//!     "  stid r1         ; r1 = thread id
//!        add r2, r1, r1  ; r2 = 2*tid
//!        sts [r1+0], r2  ; shared[tid] = 2*tid
//!        exit",
//! )
//! .unwrap();
//! cpu.load_program(&program).unwrap();
//! let stats = cpu.run(RunOptions::default()).unwrap();
//! assert_eq!(cpu.shared().as_slice()[5], 10);
//! assert!(stats.cycles > 0);
//! ```

pub mod alu;
pub mod config;
pub mod decode;
pub mod error;
pub mod fetch;
pub mod profile;
pub mod regfile;
pub mod sequencer;
pub mod shared;
pub mod sm;
pub mod stats;

pub use alu::{Datapath, Operands};
pub use config::{DspMode, ProcessorConfig};
pub use decode::{validate_program, DecodedProgram};
pub use error::{ConfigError, ExecError, LoadError};
pub use fetch::{replay, run_and_replay, ClockEvent, ClockLog};
pub use profile::{PcCounter, PcProfile};
pub use regfile::RegisterFile;
pub use sequencer::{InstructionTiming, PipelineControl, FETCH_PIPELINE_DEPTH};
pub use shared::{SharedMemStats, SharedMemory};
pub use sm::{ExecMode, Processor, RunOptions, Snapshot, TraceEntry};
pub use stats::ExecStats;
