//! The instruction fetch/decode pipeline-advance control (§3, Figs. 2–3).
//!
//! "The end of an instruction is defined when the number of clocks that
//! instruction requires has been reached. This signal is now registered
//! to improve performance, so the circuit must check for the number of
//! cycles minus one." (§3.1)
//!
//! This module provides both:
//!
//! * the **closed-form** clock counts ([`InstructionTiming`]) that the
//!   functional simulator uses, and
//! * a **clock-steppable** model of the counter hardware
//!   ([`PipelineControl`]) with the width/depth counters, the registered
//!   end-of-instruction comparison (count to *N−1*), and the single-cycle
//!   trap — which the cycle-accurate simulator ticks and which property
//!   tests check against the closed forms.

use serde::{Deserialize, Serialize};
use simt_isa::{CycleClass, SHARED_READ_PORTS, SP_COUNT};

/// Depth of the instruction fetch/decode pipeline in clocks (PC → I-Mem →
/// decode → control-register delay chain → issue). A taken branch "zeroes
/// out the following instructions in the pipeline" (§3), costing this
/// many bubble clocks; program start pays the same fill.
pub const FETCH_PIPELINE_DEPTH: u64 = 4;

/// Closed-form clock counts of the pipeline control (Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstructionTiming;

impl InstructionTiming {
    /// Thread-block shape for `active` threads: `(width_lanes, depth)` —
    /// lanes in a (possibly scaled) row and number of rows. Dynamic
    /// thread scaling changes *both* for loads/stores ("both the thread
    /// block width and depth can change") but only depth matters for
    /// operation instructions.
    pub fn block_shape(active: usize) -> (usize, usize) {
        let lanes = active.clamp(1, SP_COUNT);
        let depth = active.div_ceil(SP_COUNT).max(1);
        (lanes, depth)
    }

    /// Clocks for an instruction of `class` over `active` threads.
    ///
    /// * operation: `depth` (one 16-thread row per clock — "512 threads
    ///   would require 32 clocks per operation instruction");
    /// * load: `ceil(lanes/4) × depth` (the 16:4 read mux — "4 clocks per
    ///   block width");
    /// * store: `lanes × depth` (the 16:1 write mux);
    /// * single-cycle: 1 (trapped a decode stage early).
    pub fn cycles(class: CycleClass, active: usize) -> u64 {
        let (lanes, depth) = Self::block_shape(active);
        match class {
            CycleClass::Operation => depth as u64,
            CycleClass::Load => (lanes.div_ceil(SHARED_READ_PORTS) * depth) as u64,
            CycleClass::Store => (lanes * depth) as u64,
            CycleClass::SingleCycle => 1,
        }
    }

    /// Active thread count after applying a dynamic thread scale of `k`
    /// (threads >> k, floor 1).
    pub fn scaled_threads(threads: usize, scale: Option<u8>) -> usize {
        match scale {
            Some(k) => (threads >> k).max(1),
            None => threads,
        }
    }
}

/// Clock-steppable model of the Fig. 3 counter hardware.
///
/// The comparators check "the width and depth combination one cycle
/// before the end", and the end signal is registered — so `tick()`
/// reports completion exactly `cycles()` clocks after `start`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineControl {
    /// Width counter limit (1 for operations — depth-only counting).
    width_limit: u32,
    /// Depth counter limit.
    depth_limit: u32,
    width_count: u32,
    depth_count: u32,
    /// The registered end-of-instruction signal (`increment_pipe`).
    end_registered: bool,
    /// Single-cycle trap from the previous decode stage.
    single_cycle: bool,
    elapsed: u64,
    done: bool,
}

impl PipelineControl {
    /// Arm the counters for one instruction.
    pub fn start(class: CycleClass, active: usize) -> Self {
        let (lanes, depth) = InstructionTiming::block_shape(active);
        let (width_limit, depth_limit, single) = match class {
            CycleClass::Operation => (1, depth as u32, depth == 1),
            CycleClass::Load => (
                lanes.div_ceil(SHARED_READ_PORTS) as u32,
                depth as u32,
                false,
            ),
            CycleClass::Store => (lanes as u32, depth as u32, false),
            CycleClass::SingleCycle => (1, 1, true),
        };
        // A load/store of a single 4-or-fewer-lane row can still be one
        // clock; the same trap catches it.
        let single_cycle = single || (width_limit == 1 && depth_limit == 1);
        PipelineControl {
            width_limit,
            depth_limit,
            width_count: 0,
            depth_count: 0,
            end_registered: single_cycle,
            single_cycle,
            elapsed: 0,
            done: false,
        }
    }

    /// Advance one clock; returns `true` on the clock the instruction
    /// completes (`increment_pipe` asserts and the PC advances).
    pub fn tick(&mut self) -> bool {
        assert!(!self.done, "tick after completion");
        self.elapsed += 1;
        if self.end_registered {
            // The registered signal (or the single-cycle trap) fires now.
            self.done = true;
            return true;
        }
        // Comparators look at the *current* counts — the combination one
        // cycle before the end — then the result is registered.
        let last_width =
            self.width_count == self.width_limit.saturating_sub(2) || self.width_limit == 1;
        let last_depth = self.depth_count
            == if self.width_limit == 1 {
                self.depth_limit.saturating_sub(2)
            } else {
                self.depth_limit - 1
            };
        // For width×depth instructions the end comparison is
        // (depth == D-1, width == W-2); for depth-only it is (depth == D-2).
        let about_to_end = if self.width_limit == 1 {
            last_depth
        } else {
            last_depth && last_width
        };
        if about_to_end {
            self.end_registered = true;
        }
        // Step the counters.
        self.width_count += 1;
        if self.width_count == self.width_limit {
            self.width_count = 0;
            self.depth_count += 1;
        }
        false
    }

    /// Clocks elapsed since `start`.
    pub fn elapsed(&self) -> u64 {
        self.elapsed
    }

    /// Whether the single-cycle trap was taken.
    pub fn was_single_cycle(&self) -> bool {
        self.single_cycle
    }

    /// Run to completion, returning total clocks (used by tests; the
    /// simulator calls [`PipelineControl::tick`] itself).
    pub fn run_to_end(mut self) -> u64 {
        while !self.tick() {}
        self.elapsed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_512_threads() {
        // §3.1: 512 threads, parallelism 16 -> 32 clocks per operation;
        // a load runs 4 clocks per width over depth 32 -> 128 clocks.
        assert_eq!(InstructionTiming::cycles(CycleClass::Operation, 512), 32);
        assert_eq!(InstructionTiming::cycles(CycleClass::Load, 512), 128);
        assert_eq!(InstructionTiming::cycles(CycleClass::Store, 512), 512);
        assert_eq!(InstructionTiming::cycles(CycleClass::SingleCycle, 512), 1);
    }

    #[test]
    fn dynamic_scaling_shrinks_width_and_depth() {
        // 512 threads scaled by k=5 -> 16 active: store drops from 512
        // clocks to 16, load from 128 to 4.
        let active = InstructionTiming::scaled_threads(512, Some(5));
        assert_eq!(active, 16);
        assert_eq!(InstructionTiming::cycles(CycleClass::Store, active), 16);
        assert_eq!(InstructionTiming::cycles(CycleClass::Load, active), 4);
        // k=7 on 512 -> 4 active: a *partial* row, width shrinks too.
        let active = InstructionTiming::scaled_threads(512, Some(7));
        assert_eq!(active, 4);
        assert_eq!(InstructionTiming::cycles(CycleClass::Store, active), 4);
        assert_eq!(InstructionTiming::cycles(CycleClass::Load, active), 1);
        assert_eq!(InstructionTiming::cycles(CycleClass::Operation, active), 1);
    }

    #[test]
    fn scaled_threads_floor_one() {
        assert_eq!(InstructionTiming::scaled_threads(4, Some(7)), 1);
        assert_eq!(InstructionTiming::scaled_threads(1024, None), 1024);
    }

    #[test]
    fn stepped_counters_match_closed_form() {
        for &threads in &[1usize, 3, 4, 5, 15, 16, 17, 31, 32, 33, 64, 512, 1000, 4096] {
            for class in [
                CycleClass::Operation,
                CycleClass::Load,
                CycleClass::Store,
                CycleClass::SingleCycle,
            ] {
                let want = InstructionTiming::cycles(class, threads);
                let got = PipelineControl::start(class, threads).run_to_end();
                assert_eq!(got, want, "{class:?} threads={threads}");
            }
        }
    }

    #[test]
    fn single_cycle_trap() {
        let pc = PipelineControl::start(CycleClass::SingleCycle, 4096);
        assert!(pc.was_single_cycle());
        assert_eq!(pc.run_to_end(), 1);
        // A 16-thread operation is one row -> also trapped single-cycle.
        let pc = PipelineControl::start(CycleClass::Operation, 16);
        assert!(pc.was_single_cycle());
        assert_eq!(pc.run_to_end(), 1);
        // A 32-thread operation is two rows -> not single-cycle.
        let pc = PipelineControl::start(CycleClass::Operation, 32);
        assert!(!pc.was_single_cycle());
        assert_eq!(pc.run_to_end(), 2);
    }

    #[test]
    #[should_panic(expected = "tick after completion")]
    fn tick_after_done_is_a_bug() {
        let mut pc = PipelineControl::start(CycleClass::SingleCycle, 16);
        assert!(pc.tick());
        pc.tick();
    }
}
