//! # simt-system — multi-processor SIMT systems
//!
//! The paper's §6 names the next step: "A multi-processor design will
//! show how the FPGA can support high performance systems. This will
//! encompass both packing processors together ... and combining with a
//! high speed interconnect fabric", with "a system performance (i.e. a
//! design consisting of multiple SIMT cores plus some accelerators) of
//! 850 MHz \[as\] a reasonable target" (§5.1).
//!
//! This crate builds that system on the reproduction's substrates:
//!
//! * N [`simt_core::Processor`] cores (the stamps of §5.1), each with its
//!   own register file and shared memory;
//! * a word-serial **interconnect**: point-to-point links that move data
//!   between cores' shared memories at one word per system clock after a
//!   fixed setup latency (the sector-boundary pipeline stages of §6);
//! * **bulk-synchronous execution**: each phase runs every core's kernel
//!   to `exit` (cores are independent lockstep machines), then the host
//!   moves data; phase time is the slowest core, exactly as a hardware
//!   barrier would behave;
//! * a system clock derived from the *stamped* compile of `fpga-fitter`
//!   — the Table 2 result is what multi-core systems actually run at.

pub mod accel;

use fpga_fabric::Device;
use fpga_fitter::{best_of, seed_sweep, CompileOptions};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use simt_core::{
    ConfigError, ExecError, ExecStats, LoadError, Processor, ProcessorConfig, RunOptions,
};
use simt_isa::Program;

pub use accel::{dispatch, Accelerator, MacAccelerator, Mailbox};

/// Configuration of a multi-core system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Number of SIMT cores (stamps).
    pub cores: usize,
    /// Per-core processor configuration.
    pub core: ProcessorConfig,
    /// Interconnect payload width in words per clock.
    pub link_width_words: usize,
    /// Link setup latency in clocks (arbitration + the sector-crossing
    /// pipeline stages of §6).
    pub link_latency: u64,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            cores: 3, // the paper's 3-stamp system
            core: ProcessorConfig::default(),
            link_width_words: 1,
            link_latency: 12,
        }
    }
}

/// Cycle accounting for a system run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SystemStats {
    /// Total system clocks across all phases and transfers.
    pub cycles: u64,
    /// Clocks spent in compute phases (max over cores per phase).
    pub compute_cycles: u64,
    /// Clocks spent in interconnect transfers.
    pub transfer_cycles: u64,
    /// Number of compute phases run.
    pub phases: u64,
    /// Number of transfers performed.
    pub transfers: u64,
    /// Words moved over the interconnect.
    pub words_moved: u64,
    /// Last phase's per-core statistics.
    pub last_phase: Vec<ExecStats>,
}

impl SystemStats {
    /// Wall-clock seconds at a system frequency in MHz.
    pub fn seconds_at(&self, fmax_mhz: f64) -> f64 {
        self.cycles as f64 / (fmax_mhz * 1e6)
    }
}

/// A multi-core SIMT system.
#[derive(Debug)]
pub struct System {
    config: SystemConfig,
    cores: Vec<Processor>,
    stats: SystemStats,
}

impl System {
    /// Build a system of identical cores.
    pub fn new(config: SystemConfig) -> Result<Self, ConfigError> {
        assert!(config.cores >= 1, "at least one core");
        assert!(config.link_width_words >= 1, "link width must be non-zero");
        let cores = (0..config.cores)
            .map(|_| Processor::new(config.core.clone()))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(System {
            config,
            cores,
            stats: SystemStats::default(),
        })
    }

    /// The configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Core count.
    pub fn cores(&self) -> usize {
        self.cores.len()
    }

    /// Immutable access to a core.
    pub fn core(&self, i: usize) -> &Processor {
        &self.cores[i]
    }

    /// Mutable access to a core (data upload).
    pub fn core_mut(&mut self, i: usize) -> &mut Processor {
        &mut self.cores[i]
    }

    /// Statistics so far.
    pub fn stats(&self) -> &SystemStats {
        &self.stats
    }

    /// Load the same program on every core: the program is validated
    /// and predecoded **once** (cores are identical, so the µop decode
    /// is too) and the remaining cores share the decode — per-phase
    /// re-runs then never re-decode either, since each core keeps its
    /// decode across [`Processor::reset`].
    pub fn load_all(&mut self, program: &Program) -> Result<(), LoadError> {
        let (first, rest) = self.cores.split_first_mut().expect("at least one core");
        first.load_program(program)?;
        let decoded = first
            .decoded()
            .cloned()
            .expect("load_program leaves a decode");
        for c in rest {
            c.load_decoded(std::sync::Arc::clone(&decoded))?;
        }
        Ok(())
    }

    /// Load a distinct program per core.
    ///
    /// # Panics
    /// If `programs.len() != cores`.
    pub fn load_each(&mut self, programs: &[Program]) -> Result<(), LoadError> {
        assert_eq!(programs.len(), self.cores.len(), "one program per core");
        for (c, p) in self.cores.iter_mut().zip(programs) {
            c.load_program(p)?;
        }
        Ok(())
    }

    /// Run *one core* of the system to `exit` — the single-core entry
    /// point the phase machinery (and external schedulers such as
    /// `simt-runtime`) build on. Does **not** advance the system clock:
    /// callers compose the returned stats into a phase via
    /// [`System::account_phase`] or use [`System::run_phase`] /
    /// [`System::run_phase_subset`], which do both.
    pub fn run_core(&mut self, i: usize, opts: RunOptions) -> Result<ExecStats, ExecError> {
        self.cores[i].run(opts)
    }

    /// Account one completed bulk-synchronous phase from per-core stats:
    /// the phase costs the *slowest* participating core's clocks — the
    /// hardware barrier semantics of a stamped system on one clock
    /// network.
    pub fn account_phase(&mut self, phase: Vec<ExecStats>) -> &[ExecStats] {
        let slowest = phase.iter().map(|s| s.cycles).max().unwrap_or(0);
        self.stats.compute_cycles += slowest;
        self.stats.cycles += slowest;
        self.stats.phases += 1;
        self.stats.last_phase = phase;
        &self.stats.last_phase
    }

    /// Run one bulk-synchronous compute phase over every core.
    pub fn run_phase(&mut self, opts: RunOptions) -> Result<&[ExecStats], ExecError> {
        let all: Vec<usize> = (0..self.cores.len()).collect();
        self.run_phase_subset(&all, opts)
    }

    /// Run one bulk-synchronous compute phase over a subset of cores
    /// (the idle cores neither execute nor contribute to the barrier) —
    /// the reusable single-phase entry point for hosts that keep parts
    /// of the pool busy with other work.
    ///
    /// # Panics
    /// If `cores` is empty or contains an out-of-range or duplicate
    /// index.
    pub fn run_phase_subset(
        &mut self,
        cores: &[usize],
        opts: RunOptions,
    ) -> Result<&[ExecStats], ExecError> {
        assert!(!cores.is_empty(), "a phase needs at least one core");
        let mut seen = vec![false; self.cores.len()];
        for &i in cores {
            assert!(i < self.cores.len(), "core index {i} out of range");
            assert!(!seen[i], "duplicate core index {i}");
            seen[i] = true;
        }
        let selected: Vec<&mut Processor> = self
            .cores
            .iter_mut()
            .enumerate()
            .filter(|(i, _)| seen[*i])
            .map(|(_, c)| c)
            .collect();
        let results: Vec<Result<ExecStats, ExecError>> =
            selected.into_par_iter().map(|c| c.run(opts)).collect();
        let mut phase: Vec<ExecStats> = Vec::with_capacity(results.len());
        for r in results {
            phase.push(r?);
        }
        Ok(self.account_phase(phase))
    }

    /// Move `len` words from `src` core's shared memory at `src_off` to
    /// `dst` core's at `dst_off`, and account the interconnect clocks:
    /// `latency + ceil(len / width)`.
    pub fn transfer(
        &mut self,
        src: usize,
        src_off: usize,
        dst: usize,
        dst_off: usize,
        len: usize,
    ) -> Result<u64, ExecError> {
        assert!(
            src < self.cores.len() && dst < self.cores.len(),
            "core index"
        );
        assert_ne!(src, dst, "transfer endpoints must differ");
        let words = self.cores[src].shared().read_words(src_off, len)?;
        self.cores[dst].shared_mut().load_words(dst_off, &words)?;
        let clocks = self.config.link_latency + (len.div_ceil(self.config.link_width_words)) as u64;
        self.stats.transfer_cycles += clocks;
        self.stats.cycles += clocks;
        self.stats.transfers += 1;
        self.stats.words_moved += len as u64;
        Ok(clocks)
    }

    /// The system clock this many-core design achieves on the device:
    /// the best-of-5-seeds stamped compile of Table 2 (§5.1 argues ~850
    /// MHz is the reasonable system target).
    pub fn derive_system_fmax(&self, device: &Device) -> f64 {
        let sweep = seed_sweep(
            &self.config.core,
            device,
            &CompileOptions::stamped(self.cores.len(), 0.93),
            &[0, 1, 2, 3, 4],
        );
        best_of(&sweep).fmax_restricted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_isa::assemble;

    fn small_system(cores: usize) -> System {
        System::new(SystemConfig {
            cores,
            core: ProcessorConfig::small(),
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn phase_runs_all_cores() {
        let mut sys = small_system(3);
        let p = assemble("  stid r1\n  muli r2, r1, 2\n  sts [r1+0], r2\n  exit").unwrap();
        sys.load_all(&p).unwrap();
        let phase = sys.run_phase(RunOptions::default()).unwrap().to_vec();
        assert_eq!(phase.len(), 3);
        for i in 0..3 {
            assert_eq!(sys.core(i).shared().as_slice()[7], 14);
        }
        assert_eq!(sys.stats().phases, 1);
        assert_eq!(sys.stats().compute_cycles, phase[0].cycles);
    }

    #[test]
    fn phase_cost_is_slowest_core() {
        let mut sys = small_system(2);
        let fast = assemble("  exit").unwrap();
        let slow = assemble("  loop 50, e\n  addi r1, r1, 1\ne:\n  exit").unwrap();
        sys.load_each(&[fast, slow]).unwrap();
        let phase = sys.run_phase(RunOptions::default()).unwrap();
        let max = phase.iter().map(|s| s.cycles).max().unwrap();
        let min = phase.iter().map(|s| s.cycles).min().unwrap();
        assert!(max > min);
        assert_eq!(sys.stats().cycles, max);
    }

    #[test]
    fn subset_phase_runs_only_selected_cores() {
        let mut sys = small_system(3);
        let p = assemble("  stid r1\n  muli r2, r1, 3\n  sts [r1+0], r2\n  exit").unwrap();
        sys.load_all(&p).unwrap();
        let phase = sys
            .run_phase_subset(&[0, 2], RunOptions::default())
            .unwrap();
        assert_eq!(phase.len(), 2);
        assert_eq!(sys.core(0).shared().as_slice()[5], 15);
        assert_eq!(sys.core(2).shared().as_slice()[5], 15);
        // Core 1 never ran: its shared memory is untouched.
        assert_eq!(sys.core(1).shared().as_slice()[5], 0);
        assert_eq!(sys.stats().phases, 1);
    }

    #[test]
    fn run_core_composes_into_a_phase() {
        let mut sys = small_system(2);
        let fast = assemble("  exit").unwrap();
        let slow = assemble("  loop 50, e\n  addi r1, r1, 1\ne:\n  exit").unwrap();
        sys.load_each(&[fast, slow]).unwrap();
        let a = sys.run_core(0, RunOptions::default()).unwrap();
        let b = sys.run_core(1, RunOptions::default()).unwrap();
        assert!(b.cycles > a.cycles);
        // run_core does not advance the system clock; account_phase does.
        assert_eq!(sys.stats().cycles, 0);
        sys.account_phase(vec![a, b]);
        assert_eq!(sys.stats().cycles, b.cycles);
        assert_eq!(sys.stats().phases, 1);
    }

    #[test]
    #[should_panic(expected = "duplicate core index")]
    fn subset_phase_rejects_duplicates() {
        let mut sys = small_system(2);
        let p = assemble("  exit").unwrap();
        sys.load_all(&p).unwrap();
        let _ = sys.run_phase_subset(&[1, 1], RunOptions::default());
    }

    #[test]
    fn transfers_move_data_and_cost_clocks() {
        let mut sys = small_system(2);
        sys.core_mut(0)
            .shared_mut()
            .load_words(0, &[1, 2, 3, 4])
            .unwrap();
        let clocks = sys.transfer(0, 0, 1, 100, 4).unwrap();
        assert_eq!(sys.core(1).shared().as_slice()[100..104], [1, 2, 3, 4]);
        assert_eq!(clocks, 12 + 4);
        assert_eq!(sys.stats().transfer_cycles, 16);
        assert_eq!(sys.stats().words_moved, 4);
    }

    #[test]
    fn transfer_bounds_trap() {
        let mut sys = small_system(2);
        assert!(sys.transfer(0, 1020, 1, 0, 10).is_err());
        assert!(sys.transfer(0, 0, 1, 1020, 10).is_err());
    }

    #[test]
    #[should_panic(expected = "endpoints must differ")]
    fn self_transfer_rejected() {
        let mut sys = small_system(2);
        let _ = sys.transfer(0, 0, 0, 64, 4);
    }

    #[test]
    fn wider_links_are_faster() {
        let mut narrow = small_system(2);
        let mut wide = System::new(SystemConfig {
            cores: 2,
            core: ProcessorConfig::small(),
            link_width_words: 4,
            link_latency: 12,
        })
        .unwrap();
        narrow
            .core_mut(0)
            .shared_mut()
            .load_words(0, &[0; 64])
            .unwrap();
        wide.core_mut(0)
            .shared_mut()
            .load_words(0, &[0; 64])
            .unwrap();
        let n = narrow.transfer(0, 0, 1, 0, 64).unwrap();
        let w = wide.transfer(0, 0, 1, 0, 64).unwrap();
        assert_eq!(n, 12 + 64);
        assert_eq!(w, 12 + 16);
    }

    #[test]
    fn derived_system_fmax_tracks_table2() {
        let sys = System::new(SystemConfig {
            cores: 3,
            ..Default::default()
        })
        .unwrap();
        let f = sys.derive_system_fmax(&Device::agfd019());
        // §5.1: "a system performance ... of 850 MHz is a reasonable
        // target"; Table 2's 3-stamp best is 854.
        assert!((f - 854.0).abs() / 854.0 < 0.02, "{f:.1}");
    }
}
