//! Accelerator management — the paper's §1 motivation: the soft GPGPU
//! has "the ability to act as both an accelerator and a controller (i.e.
//! managing other, more traditional FPGA accelerator cores)".
//!
//! An [`Accelerator`] is a fixed-function datapath block sharing the
//! device with the SIMT cores (the "system" of §5.1 that targets
//! 850 MHz). The controller core talks to it through a shared-memory
//! **mailbox**: the kernel prepares inputs and a descriptor, the host
//! (standing in for the command fabric) kicks the accelerator, and the
//! accelerator writes results and cycle cost back.

use serde::{Deserialize, Serialize};
use simt_core::{ExecError, Processor};

/// A fixed-function accelerator block.
pub trait Accelerator {
    /// Block name (for reports).
    fn name(&self) -> &str;
    /// Process `input`, returning the output words.
    fn process(&mut self, input: &[u32]) -> Vec<u32>;
    /// Clocks the block needs for `len` input words (its own pipeline
    /// rate, usually 1 word/clock plus a fixed startup).
    fn cycles(&self, len: usize) -> u64;
}

/// Mailbox layout in the controller's shared memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mailbox {
    /// Descriptor word: input offset.
    pub in_off: usize,
    /// Descriptor word: input length.
    pub len_off: usize,
    /// Output region offset.
    pub out_off: usize,
    /// Status word (0 = idle, 1 = done) the kernel can poll.
    pub status_off: usize,
}

impl Default for Mailbox {
    fn default() -> Self {
        Mailbox {
            in_off: 0,
            len_off: 1,
            out_off: 2,
            status_off: 3,
        }
    }
}

/// Dispatch one accelerator job described by the mailbox: reads the
/// descriptor the kernel wrote, runs the block, writes results + status,
/// and returns the accelerator clocks consumed.
pub fn dispatch(
    core: &mut Processor,
    mailbox: Mailbox,
    accel: &mut dyn Accelerator,
) -> Result<u64, ExecError> {
    let desc = core.shared().read_words(mailbox.in_off, 2)?;
    let (in_off, len) = (
        desc[0] as usize,
        core.shared().read_words(mailbox.len_off, 1)?[0] as usize,
    );
    let input = core.shared().read_words(in_off, len)?;
    let output = accel.process(&input);
    let out_off = core.shared().read_words(mailbox.out_off, 1)?[0] as usize;
    core.shared_mut().load_words(out_off, &output)?;
    core.shared_mut().load_words(mailbox.status_off, &[1])?;
    Ok(accel.cycles(len))
}

/// A sample accelerator: a streaming Q15 multiply-accumulate (the
/// "traditional FPGA accelerator" archetype) computing a running MAC of
/// input pairs at one pair per clock after an 8-clock startup.
#[derive(Debug, Default)]
pub struct MacAccelerator {
    jobs: u64,
}

impl MacAccelerator {
    /// New block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Jobs processed.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }
}

impl Accelerator for MacAccelerator {
    fn name(&self) -> &str {
        "q15-mac"
    }

    fn process(&mut self, input: &[u32]) -> Vec<u32> {
        self.jobs += 1;
        // Pairs (a, b) -> running sum of (a*b)>>15.
        let mut acc = 0i64;
        let mut out = Vec::with_capacity(input.len() / 2);
        for pair in input.chunks_exact(2) {
            let a = pair[0] as i32 as i64;
            let b = pair[1] as i32 as i64;
            acc += (a * b) >> 15;
            out.push(acc as u32);
        }
        out
    }

    fn cycles(&self, len: usize) -> u64 {
        8 + (len as u64).div_ceil(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_core::{ProcessorConfig, RunOptions};
    use simt_isa::assemble;

    #[test]
    fn controller_kernel_drives_the_accelerator() {
        // The SIMT core *prepares* the job (computes inputs, writes the
        // descriptor), the accelerator crunches it, and a second kernel
        // *consumes* the result — the controller role of §1.
        let mut core = Processor::new(ProcessorConfig::small().with_threads(32)).unwrap();
        let mb = Mailbox::default();

        // Phase 1: kernel writes pairs (tid, 2*tid in Q15-ish scale) and
        // the descriptor.
        let prep = assemble(
            "  stid r1
               shli r2, r1, 12          ; a = tid << 12
               shli r3, r1, 13          ; b = tid << 13
               shadd r4, r1, r1, 1      ; r4 = 3*tid (pair base stride 2 -> use 2*tid)
               add r4, r1, r1           ; r4 = 2*tid
               sts [r4+16], r2          ; pairs start at word 16
               addi r5, r4, 1
               sts [r5+16], r3
               movi r6, 16
               movi r7, 0
               sts [r7+0], r6           ; mailbox.in_off = 16
               movi r6, 64
               sts [r7+1], r6           ; len = 64 words (32 pairs)
               movi r6, 128
               sts [r7+2], r6           ; out_off = 128
               exit",
        )
        .unwrap();
        core.load_program(&prep).unwrap();
        core.run(RunOptions::default()).unwrap();

        // Dispatch.
        let mut accel = MacAccelerator::new();
        let clocks = dispatch(&mut core, mb, &mut accel).unwrap();
        assert_eq!(clocks, 8 + 32);
        assert_eq!(accel.jobs(), 1);
        assert_eq!(core.shared().as_slice()[mb.status_off], 1);

        // Host check of the accelerator's math.
        let mut acc = 0i64;
        for t in 0..32i64 {
            acc += ((t << 12) * (t << 13)) >> 15;
            assert_eq!(
                core.shared().as_slice()[128 + t as usize] as i32 as i64,
                acc,
                "pair {t}"
            );
        }

        // Phase 2: a consumer kernel reads the accelerator output.
        let consume = assemble(
            "  stid r1
               lds r2, [r1+128]
               shli r3, r2, 1
               sts [r1+192], r3
               exit",
        )
        .unwrap();
        core.load_program(&consume).unwrap();
        core.run(RunOptions::default()).unwrap();
        assert_eq!(
            core.shared().as_slice()[192],
            core.shared().as_slice()[128].wrapping_mul(2)
        );
    }

    #[test]
    fn dispatch_validates_descriptors() {
        let mut core = Processor::new(ProcessorConfig::small()).unwrap();
        // Descriptor points out of bounds.
        core.shared_mut()
            .load_words(0, &[4000, 4000, 0, 0])
            .unwrap();
        let mut accel = MacAccelerator::new();
        assert!(dispatch(&mut core, Mailbox::default(), &mut accel).is_err());
    }

    #[test]
    fn mac_cycles_scale_with_length() {
        let a = MacAccelerator::new();
        assert_eq!(a.cycles(0), 8);
        assert_eq!(a.cycles(2), 9);
        assert_eq!(a.cycles(64), 40);
        assert!(a.cycles(128) > a.cycles(64));
    }
}
