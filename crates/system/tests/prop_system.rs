//! Property tests on the multi-core system: partition/merge identities
//! and interconnect accounting invariants.

use proptest::prelude::*;
use simt_core::{ProcessorConfig, RunOptions};
use simt_isa::assemble;
use simt_system::{System, SystemConfig};

fn small(cores: usize, link_width: usize) -> System {
    System::new(SystemConfig {
        cores,
        core: ProcessorConfig::small(),
        link_width_words: link_width,
        link_latency: 12,
    })
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn transfer_preserves_data(
        cores in 2usize..=4,
        src in 0usize..4,
        len in 1usize..=64,
        payload in proptest::collection::vec(any::<u32>(), 64),
    ) {
        let src = src % cores;
        let dst = (src + 1) % cores;
        let mut sys = small(cores, 1);
        sys.core_mut(src).shared_mut().load_words(0, &payload[..len]).unwrap();
        let clocks = sys.transfer(src, 0, dst, 128, len).unwrap();
        prop_assert_eq!(
            &sys.core(dst).shared().as_slice()[128..128 + len],
            &payload[..len]
        );
        prop_assert_eq!(clocks, 12 + len as u64);
        prop_assert_eq!(sys.stats().words_moved, len as u64);
    }

    #[test]
    fn wider_links_never_slower(len in 1usize..=128, w1 in 1usize..=4, w2 in 1usize..=4) {
        let (narrow, wide) = if w1 <= w2 { (w1, w2) } else { (w2, w1) };
        let mut a = small(2, narrow);
        let mut b = small(2, wide);
        let ca = a.transfer(0, 0, 1, 0, len).unwrap();
        let cb = b.transfer(0, 0, 1, 0, len).unwrap();
        prop_assert!(cb <= ca);
    }

    #[test]
    fn phase_cost_is_max_of_cores(trip_counts in proptest::collection::vec(1u32..40, 2..=4)) {
        let cores = trip_counts.len();
        let mut sys = small(cores, 1);
        let programs: Vec<_> = trip_counts
            .iter()
            .map(|&n| {
                assemble(&format!("  loop {n}, e\n  addi r1, r1, 1\ne:\n  exit")).unwrap()
            })
            .collect();
        sys.load_each(&programs).unwrap();
        let phase = sys.run_phase(RunOptions::default()).unwrap().to_vec();
        let max = phase.iter().map(|s| s.cycles).max().unwrap();
        prop_assert_eq!(sys.stats().cycles, max);
        prop_assert_eq!(sys.stats().compute_cycles, max);
        // Core cycle counts track their trip counts monotonically.
        for (i, a) in trip_counts.iter().enumerate() {
            for (j, b) in trip_counts.iter().enumerate() {
                if a < b {
                    prop_assert!(phase[i].cycles <= phase[j].cycles, "{i} vs {j}");
                }
            }
        }
    }

    #[test]
    fn partitioned_sum_equals_whole(seed in 0u64..200, cores in 2usize..=4) {
        // Split a 128-element sum across cores; partial sums combined on
        // the host must equal the single-core result.
        use simt_kernels::reduce::{sum_asm_scaled, sum_ref, SCRATCH, X_OFF};
        use simt_kernels::workload::wide_int_vector;
        let total = 128usize;
        let per = total / cores;
        // per must be a power of two for the tree: use 32 (cores=4) or 64.
        prop_assume!(per.is_power_of_two());
        let x = wide_int_vector(total, seed);
        let mut sys = System::new(SystemConfig {
            cores,
            core: ProcessorConfig::default().with_threads(per).with_shared_words(4096),
            ..Default::default()
        })
        .unwrap();
        for c in 0..cores {
            let words: Vec<u32> = x[c * per..(c + 1) * per].iter().map(|&v| v as u32).collect();
            sys.core_mut(c).shared_mut().load_words(X_OFF, &words).unwrap();
        }
        let p = assemble(&sum_asm_scaled(per)).unwrap();
        sys.load_all(&p).unwrap();
        sys.run_phase(RunOptions::default()).unwrap();
        let mut acc = 0i32;
        for c in 0..cores {
            acc = acc.wrapping_add(sys.core(c).shared().as_slice()[SCRATCH] as i32);
        }
        prop_assert_eq!(acc, sum_ref(&x));
    }
}
