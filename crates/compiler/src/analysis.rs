//! Lightweight memory-address analysis over the kernel IR.
//!
//! The graph-fusion machinery needs to answer one question soundly:
//! *which shared-memory words can this kernel read or write?* Addresses
//! on this machine are `base register + imm16 offset`, and the frontends
//! build bases from a handful of shapes (`tid`, constants, constant
//! adds), so a tiny symbolic walk resolves most of them exactly. Anything
//! it cannot resolve is reported as unknown — callers must treat unknown
//! as "may touch everything" and refuse to optimize across it.

use crate::ir::{BinOp, Kernel, Op, ValueId};

/// How deep the base-expression walk follows constant adds before
/// giving up (frontends never nest deeper in practice).
const RESOLVE_DEPTH: usize = 8;

/// A resolved address base: either the per-thread id plus a constant
/// delta (so an access spans one word per thread) or a plain constant
/// (a uniform broadcast access).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AddrBase {
    /// `tid + delta`.
    Tid(i64),
    /// A constant address.
    Const(i64),
}

/// Resolve the symbolic base of an address expression, following
/// constant adds. Masked (guarded or thread-scaled) definitions are
/// unresolvable: inactive lanes keep a stale register value, so the
/// expression's value is not uniform across threads.
fn resolve_base(k: &Kernel, v: ValueId, depth: usize) -> Option<AddrBase> {
    if depth == 0 {
        return None;
    }
    let inst = k.inst(v);
    if inst.guard.is_some() || inst.scale.is_some() {
        return None;
    }
    match &inst.op {
        Op::Tid => Some(AddrBase::Tid(0)),
        Op::Const(c) => Some(AddrBase::Const(*c as i64)),
        Op::Bin(BinOp::Add) => {
            let a = resolve_base(k, inst.args[0], depth - 1)?;
            let b = resolve_base(k, inst.args[1], depth - 1)?;
            match (a, b) {
                (AddrBase::Tid(d), AddrBase::Const(c)) | (AddrBase::Const(c), AddrBase::Tid(d)) => {
                    Some(AddrBase::Tid(d + c))
                }
                (AddrBase::Const(x), AddrBase::Const(y)) => Some(AddrBase::Const(x + y)),
                // tid + tid is resolvable in principle but no frontend
                // emits it; stay conservative.
                _ => None,
            }
        }
        _ => None,
    }
}

/// True when `base` resolves to a distinct address per lane (`tid +
/// constant`). Only such stores keep one value *per thread*: a store
/// through a uniform (constant) base has every lane write the same
/// address, the hardware keeps a single winner (highest thread id), and
/// a later load broadcasts that winner — so forwarding each lane its
/// own stored value would miscompile.
pub fn lane_unique_base(k: &Kernel, base: ValueId) -> bool {
    matches!(resolve_base(k, base, RESOLVE_DEPTH), Some(AddrBase::Tid(_)))
}

/// The half-open word range `[lo, hi)` a memory access with base `base`
/// and immediate offset `off` can touch across `threads` lanes, if the
/// base resolves. Thread-scaled accesses touch a *subset* of the full
/// range, so the full range stays a sound over-approximation.
pub fn access_range(k: &Kernel, base: ValueId, off: u32, threads: usize) -> Option<(usize, usize)> {
    match resolve_base(k, base, RESOLVE_DEPTH)? {
        AddrBase::Tid(d) => {
            let lo = d + off as i64;
            let hi = lo + threads as i64;
            if lo < 0 {
                return None; // wraps through the address space: give up
            }
            Some((lo as usize, hi as usize))
        }
        AddrBase::Const(c) => {
            let lo = c + off as i64;
            if lo < 0 {
                return None;
            }
            Some((lo as usize, lo as usize + 1))
        }
    }
}

/// Every word range the kernel may *read*, or `None` if any load's
/// address cannot be resolved (treat as "may read everything").
pub fn read_ranges(k: &Kernel, threads: usize) -> Option<Vec<(usize, usize)>> {
    mem_ranges(k, threads, false)
}

/// Every word range the kernel may *write*, or `None` if any store's
/// address cannot be resolved (treat as "may write everything").
pub fn write_ranges(k: &Kernel, threads: usize) -> Option<Vec<(usize, usize)>> {
    mem_ranges(k, threads, true)
}

fn mem_ranges(k: &Kernel, threads: usize, writes: bool) -> Option<Vec<(usize, usize)>> {
    let mut out = Some(Vec::new());
    k.for_each_inst(|_, inst| {
        let range = match (&inst.op, writes) {
            (Op::Load(off), false) | (Op::Store(off), true) => {
                Some(access_range(k, inst.args[0], *off, threads))
            }
            _ => None,
        };
        if let Some(r) = range {
            match (r, &mut out) {
                (Some(r), Some(v)) => v.push(r),
                _ => out = None,
            }
        }
    });
    out
}

/// True when two half-open ranges overlap.
pub fn ranges_intersect(a: (usize, usize), b: (usize, usize)) -> bool {
    a.0 < b.1 && b.0 < a.1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::IrBuilder;

    #[test]
    fn tid_plus_const_chains_resolve() {
        let mut b = IrBuilder::new("t");
        let tid = b.tid();
        let c = b.iconst(100);
        let a1 = b.add(tid, c);
        let c2 = b.iconst(24);
        let a2 = b.add(c2, a1);
        let x = b.load(a2, 4);
        b.store(tid, 0, x);
        let k = b.finish();
        assert_eq!(
            access_range(&k, a2, 4, 64),
            Some((128, 192)),
            "tid + 100 + 24 + imm4 over 64 threads"
        );
        assert_eq!(read_ranges(&k, 64), Some(vec![(128, 192)]));
        assert_eq!(write_ranges(&k, 64), Some(vec![(0, 64)]));
    }

    #[test]
    fn const_bases_are_single_words() {
        let mut b = IrBuilder::new("t");
        let zero = b.iconst(0);
        let x = b.load(zero, 2048);
        b.store(zero, 0, x);
        let k = b.finish();
        assert_eq!(read_ranges(&k, 128), Some(vec![(2048, 2049)]));
    }

    #[test]
    fn computed_bases_are_unknown() {
        let mut b = IrBuilder::new("t");
        let tid = b.tid();
        let sq = b.mul(tid, tid);
        let x = b.load(sq, 0);
        b.store(tid, 0, x);
        let k = b.finish();
        assert_eq!(read_ranges(&k, 64), None, "tid*tid base must be unknown");
        assert!(write_ranges(&k, 64).is_some());
    }

    #[test]
    fn masked_bases_are_unknown() {
        // A guarded add leaves inactive lanes with stale registers: the
        // base is not a function of tid alone.
        let mut b = IrBuilder::new("t");
        let tid = b.tid();
        let z = b.iconst(0);
        let p = b.cmp(crate::ir::CmpOp::Lt, tid, z);
        b.guard_next(p, false);
        let base = b.add(tid, z);
        let x = b.load(base, 0);
        b.store(tid, 0, x);
        let k = b.finish();
        assert_eq!(read_ranges(&k, 64), None);
    }

    #[test]
    fn intersection_is_half_open() {
        assert!(ranges_intersect((0, 10), (9, 12)));
        assert!(!ranges_intersect((0, 10), (10, 12)));
        assert!(ranges_intersect((5, 6), (0, 100)));
    }
}
