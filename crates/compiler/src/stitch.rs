//! Multi-kernel lowering: stitch a chain of kernels into one program.
//!
//! Back-to-back launches on one dependency path pay a pipeline fill per
//! launch and hand values between stages through shared-memory
//! store/load round trips. [`fuse_kernels`] concatenates the stages into
//! a single SSA arena, lets the regular pass pipeline unify the stages'
//! `tid`/constant scaffolding (CSE) and forward each handoff store into
//! its consuming load (store-to-load forwarding), then elides the now
//! write-only stores into the *dead ranges* the caller has proven
//! nothing downstream reads. What remains is one kernel whose stages
//! communicate through registers.
//!
//! The caller (the `simt-graph` fusion pass) owns the legality argument:
//! dead ranges must be intermediate buffers no other launch, copy, or
//! host read observes. This module re-checks the *intra-kernel* half —
//! a store is only elided when no later load in the fused kernel can
//! read it — so a wrong dead range degrades to a missed optimization on
//! loads this kernel still performs, never to a wrong value inside it.

use crate::error::CompileError;
use crate::ir::{Kernel, Op, ValueId};
use crate::passes::{dce, elide_stores, optimize, PipelineReport};

/// What [`fuse_kernels`] did to the chain.
#[derive(Debug, Clone, Default)]
pub struct FuseReport {
    /// Stages stitched.
    pub parts: usize,
    /// Live IR instructions across all stages before fusion.
    pub insts_before: usize,
    /// Live IR instructions in the fused kernel.
    pub insts_after: usize,
    /// Loads eliminated by the fusion (stage-handoff loads forwarded
    /// into registers, plus any address math that died with them).
    pub loads_eliminated: usize,
    /// Handoff stores elided into the dead ranges.
    pub stores_elided: usize,
    /// The optimization pipeline's per-pass statistics over the
    /// stitched kernel.
    pub pipeline: PipelineReport,
}

/// Concatenate kernels into one arena, in order, renumbering every
/// value so the stages' regions stay disjoint. No optimization happens
/// here; the result is the mechanical "run stage 1, then stage 2, …"
/// program.
pub fn concat_kernels(name: impl Into<String>, parts: &[&Kernel]) -> Kernel {
    let mut out = Kernel {
        name: name.into(),
        insts: Vec::new(),
        body: Vec::new(),
    };
    for part in parts {
        let base = out.insts.len() as u32;
        let shift = |v: ValueId| ValueId(v.0 + base);
        for inst in &part.insts {
            let mut inst = inst.clone();
            for a in inst.args.iter_mut() {
                *a = shift(*a);
            }
            if let Some(g) = &mut inst.guard {
                g.pred = shift(g.pred);
            }
            if let Some(body) = &mut inst.body {
                for v in body.iter_mut() {
                    *v = shift(*v);
                }
            }
            if let Some(carried) = &mut inst.carried {
                for v in carried.iter_mut() {
                    *v = shift(*v);
                }
            }
            out.insts.push(inst);
        }
        out.body.extend(part.body.iter().map(|&v| shift(v)));
    }
    out
}

fn count_loads(k: &Kernel) -> usize {
    let mut n = 0;
    k.for_each_inst(|_, inst| {
        if matches!(inst.op, Op::Load(_)) {
            n += 1;
        }
    });
    n
}

/// Stitch `parts` into one fused kernel for a `threads`-wide build,
/// eliding stores into `dead` — the half-open shared-memory ranges that
/// hold stage-handoff intermediates nothing outside the fused launch
/// reads.
pub fn fuse_kernels(
    name: impl Into<String>,
    parts: &[&Kernel],
    dead: &[(usize, usize)],
    threads: usize,
) -> Result<(Kernel, FuseReport), CompileError> {
    let mut k = concat_kernels(name, parts);
    k.validate()?;
    let insts_before = k.live_insts();
    let loads_before = count_loads(&k);

    // The regular pipeline unifies cross-stage scaffolding (CSE) and
    // forwards handoff stores into their consuming loads.
    let pipeline = optimize(&mut k);

    // Handoff stores into proven-dead intermediate ranges go next, and
    // a final DCE sweeps the address math that only fed them.
    let stores_elided = elide_stores(&mut k, dead, threads);
    if stores_elided > 0 {
        dce(&mut k);
    }
    debug_assert!(k.validate().is_ok(), "fusion broke the IR:\n{k}");

    let report = FuseReport {
        parts: parts.len(),
        insts_before,
        insts_after: k.live_insts(),
        loads_eliminated: loads_before.saturating_sub(count_loads(&k)),
        stores_elided,
        pipeline,
    };
    Ok((k, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::IrBuilder;
    use crate::lower::{compile, OptLevel};
    use simt_core::ProcessorConfig;

    /// Stage 1: shared[tid + 64] = shared[tid] * 3.
    fn stage1() -> Kernel {
        let mut b = IrBuilder::new("s1");
        let tid = b.tid();
        let x = b.load(tid, 0);
        let c = b.iconst(3);
        let y = b.mul(x, c);
        b.store(tid, 64, y);
        b.finish()
    }

    /// Stage 2: shared[tid + 128] = shared[tid + 64] + 7.
    fn stage2() -> Kernel {
        let mut b = IrBuilder::new("s2");
        let tid = b.tid();
        let x = b.load(tid, 64);
        let c = b.iconst(7);
        let y = b.add(x, c);
        b.store(tid, 128, y);
        b.finish()
    }

    #[test]
    fn concat_preserves_stage_order_and_validates() {
        let (a, b) = (stage1(), stage2());
        let k = concat_kernels("cat", &[&a, &b]);
        assert!(k.validate().is_ok(), "\n{k}");
        assert_eq!(k.live_insts(), a.live_insts() + b.live_insts());
    }

    #[test]
    fn fusion_forwards_the_handoff_and_elides_the_store() {
        let (a, b) = (stage1(), stage2());
        let cfg = ProcessorConfig::default()
            .with_threads(64)
            .with_shared_words(1024);
        let (k, report) = fuse_kernels("fused", &[&a, &b], &[(64, 128)], 64).unwrap();
        assert_eq!(report.parts, 2);
        assert_eq!(report.stores_elided, 1, "\n{k}");
        assert_eq!(report.loads_eliminated, 1, "\n{k}");
        // One tid, one load, mul, add(+consts), one store survive: the
        // fused program carries a single store/load pair, not two.
        let mut loads = 0;
        let mut stores = 0;
        k.for_each_inst(|_, inst| match inst.op {
            Op::Load(_) => loads += 1,
            Op::Store(_) => stores += 1,
            _ => {}
        });
        assert_eq!((loads, stores), (1, 1), "\n{k}");
        // And it still computes 3*x + 7 into shared[tid + 128].
        let fused = compile(&k, &cfg, OptLevel::Full).unwrap();
        let reference = {
            let mut rb = IrBuilder::new("ref");
            let tid = rb.tid();
            let x = rb.load(tid, 0);
            let c3 = rb.iconst(3);
            let x3 = rb.mul(x, c3);
            let c7 = rb.iconst(7);
            let y = rb.add(x3, c7);
            rb.store(tid, 128, y);
            compile(&rb.finish(), &cfg, OptLevel::Full).unwrap()
        };
        assert_eq!(
            fused.program.instructions(),
            reference.program.instructions()
        );
    }

    #[test]
    fn stores_survive_when_the_range_is_still_read() {
        // Stage 2 reads the handoff *twice* — once scaled, which cannot
        // be forwarded. The store must survive to feed the scaled load.
        let (a, _) = (stage1(), ());
        let mut b2 = IrBuilder::new("s2s");
        let tid = b2.tid();
        let x = b2.load(tid, 64);
        b2.scale_next(1);
        let xs = b2.load(tid, 64);
        let y = b2.add(x, xs);
        b2.store(tid, 128, y);
        let b = b2.finish();
        let (k, report) = fuse_kernels("fused", &[&a, &b], &[(64, 128)], 64).unwrap();
        assert_eq!(report.stores_elided, 0, "\n{k}");
        let mut stores = 0;
        k.for_each_inst(|_, inst| {
            if matches!(inst.op, Op::Store(_)) {
                stores += 1;
            }
        });
        assert_eq!(stores, 2, "handoff store must survive\n{k}");
    }

    #[test]
    fn stores_outside_the_dead_ranges_survive() {
        let (a, b) = (stage1(), stage2());
        let (k, report) = fuse_kernels("fused", &[&a, &b], &[], 64).unwrap();
        assert_eq!(report.stores_elided, 0);
        let mut stores = 0;
        k.for_each_inst(|_, inst| {
            if matches!(inst.op, Op::Store(_)) {
                stores += 1;
            }
        });
        assert_eq!(stores, 2, "\n{k}");
    }
}
