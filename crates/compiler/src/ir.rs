//! The SSA kernel IR.
//!
//! A [`Kernel`] is an arena of single-assignment instructions organised
//! into nested regions: the root region is straight-line code, and a
//! [`Op::Loop`] instruction owns a child region that maps one-to-one
//! onto the ISA's zero-overhead hardware loop (§3 of the paper — a trip
//! count and an end address, no loop-carried registers). Values defined
//! inside a loop body are scoped to that body; state that must survive
//! an iteration flows through shared memory, exactly as it does on the
//! lockstep machine.
//!
//! Each instruction may carry the two per-instruction attributes the
//! ISA exposes: a **dynamic thread scale** (`active = nthreads >> k`,
//! the §2 reduction feature) and a **predicate guard** referencing an
//! SSA predicate value produced by [`Op::Cmp`].
//!
//! ## Loop-carried values
//!
//! The hardware loop has no loop-carried *registers* in its encoding —
//! a trip count and an end address are all the ISA stores — but real
//! looped kernels (`matmul`'s accumulator, `iir`'s filter state) keep
//! state in ordinary registers that survive the back edge. The IR
//! models that state Cranelift-style, with **block parameters** instead
//! of phi nodes: a loop's body region declares parameters
//! ([`Op::Param`]), [`IrBuilder::begin_loop_carried`] takes the
//! initial values, and [`IrBuilder::end_loop_carried`] takes the
//! next-iteration values; the final values are read back after the loop
//! through [`Op::Result`]. The register allocator coalesces each
//! parameter with its initial and next-iteration values wherever that
//! is sound, so lowering still emits the bare hardware-loop instruction
//! with no copies on the back edge (see `crate::regalloc`).
//!
//! ```
//! use simt_compiler::ir::IrBuilder;
//!
//! let mut b = IrBuilder::new("scale_bias");
//! let tid = b.tid();
//! let x = b.load(tid, 0);             // x = shared[tid]
//! let c = b.iconst(3);
//! let x3 = b.mul(x, c);               // muli after lowering
//! let c7 = b.iconst(7);
//! let y = b.add(x3, c7);
//! b.store(tid, 64, y);                // shared[tid + 64] = 3*x + 7
//! let kernel = b.finish();
//! assert!(kernel.validate().is_ok());
//! ```

use crate::error::CompileError;
use simt_core::{DspMode, ProcessorConfig};
use std::collections::HashMap;
use std::fmt;

/// An SSA value: the result of one instruction in the kernel arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub(crate) u32);

impl ValueId {
    /// Arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct a value id from a raw arena index **without** any
    /// scoping or bounds guarantee. This exists for adversarial tooling
    /// (`simt-fuzzgen`'s near-miss generator) that deliberately builds
    /// dangling or out-of-scope references to prove the validator
    /// rejects them with a typed error; ordinary clients should only
    /// ever hold ids handed out by [`IrBuilder`].
    pub fn from_raw(index: u32) -> Self {
        ValueId(index)
    }
}

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Type of an SSA value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ty {
    /// 32-bit machine word (the only data type of the integer datapath).
    Word,
    /// A predicate bit (lives in p0..p3 after allocation).
    Pred,
    /// No value (stores, loops).
    Void,
}

/// Two-operand word ops, mapping onto the adder / multiplier / shifter /
/// soft-logic datapaths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping add.
    Add,
    /// Wrapping subtract.
    Sub,
    /// Low 32 bits of the signed product.
    Mul,
    /// High 32 bits of the signed product.
    MulHi,
    /// High 32 bits of the unsigned product.
    MulUHi,
    /// Signed minimum.
    Min,
    /// Signed maximum.
    Max,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift (0 for shifts ≥ 32).
    Shl,
    /// Logical right shift (0 for shifts ≥ 32).
    Lsr,
    /// Arithmetic right shift (sign for shifts ≥ 32).
    Asr,
    /// Saturating add.
    SatAdd,
    /// Saturating subtract.
    SatSub,
}

/// One-operand word ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Absolute value (wrapping at `i32::MIN`).
    Abs,
    /// Wrapping negate.
    Neg,
    /// Bitwise not.
    Not,
    /// Logical not: 1 if zero, else 0.
    Cnot,
    /// Population count.
    Popc,
    /// Count leading zeros.
    Clz,
    /// Bit reverse.
    Brev,
}

/// Predicate-producing comparisons (`setp.*`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Ltu,
    /// Unsigned greater-or-equal.
    Geu,
}

/// Operation of one IR instruction. Operand arity and types are fixed
/// per variant (checked by [`Kernel::validate`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Op {
    /// Word constant.
    Const(i32),
    /// Thread id (`stid`).
    Tid,
    /// Thread count (`sntid`).
    Ntid,
    /// Binary word op; args `[a, b]`.
    Bin(BinOp),
    /// Unary word op; args `[a]`.
    Un(UnOp),
    /// Fused multiply-add `a*b + c` (low 32); args `[a, b, c]`.
    Mad,
    /// Fixed-point scaling multiply `(a*b) >> s` over the full 64-bit
    /// product; args `[a, b]`.
    MulShr(u32),
    /// Address generation `(a << s) + b`; args `[a, b]`.
    ShAdd(u32),
    /// Rotate right by an immediate; args `[a]`.
    Rotr(u32),
    /// Comparison producing a predicate; args `[a, b]`.
    Cmp(CmpOp),
    /// Predicated select `p ? a : b`; args `[a, b, p]`.
    Select,
    /// Shared-memory load `shared[base + off]`; args `[base]`.
    Load(u32),
    /// Shared-memory store `shared[base + off] = v`; args `[base, v]`.
    Store(u32),
    /// Zero-overhead hardware loop repeating its body region `count`
    /// times. Args are the *initial values* of the body's block
    /// parameters (empty for a plain loop); the body region and the
    /// next-iteration values ([`Inst::carried`]) are attached to the
    /// instruction.
    Loop(u32),
    /// The `idx`-th block parameter of the enclosing loop body: the
    /// value carried into the current iteration (the loop's `idx`-th
    /// arg on iteration 0, its `idx`-th carried value afterwards). Only
    /// valid as a leading instruction of a loop body.
    Param(u32),
    /// The final value of the enclosing loop's `idx`-th carried slot,
    /// readable after the loop; the single arg is the [`Op::Loop`]
    /// instruction itself.
    Result(u32),
}

impl Op {
    /// Result type.
    pub fn ty(&self) -> Ty {
        match self {
            Op::Cmp(_) => Ty::Pred,
            Op::Store(_) | Op::Loop(_) => Ty::Void,
            _ => Ty::Word,
        }
    }

    /// Expected operand count. [`Op::Loop`] is variadic (one arg per
    /// block parameter); this returns its minimum of 0 and the
    /// validator checks the real arity against the body's parameters.
    pub fn arity(&self) -> usize {
        match self {
            Op::Const(_) | Op::Tid | Op::Ntid | Op::Loop(_) | Op::Param(_) => 0,
            Op::Un(_) | Op::Rotr(_) | Op::Load(_) | Op::Result(_) => 1,
            Op::Bin(_) | Op::MulShr(_) | Op::ShAdd(_) | Op::Cmp(_) | Op::Store(_) => 2,
            Op::Mad | Op::Select => 3,
        }
    }

    /// True for ops with no side effects (eligible for CSE / DCE).
    /// Block parameters and loop results are excluded even though they
    /// compute nothing: two `Param(0)` instructions of *different*
    /// loops would otherwise value-number equal, and liveness for both
    /// is decided by their owning loop, not by ordinary use marking.
    pub fn is_pure(&self) -> bool {
        !matches!(
            self,
            Op::Load(_) | Op::Store(_) | Op::Loop(_) | Op::Param(_) | Op::Result(_)
        )
    }

    /// A small stable tag for content hashing.
    fn tag(&self) -> u32 {
        match self {
            Op::Const(_) => 0,
            Op::Tid => 1,
            Op::Ntid => 2,
            Op::Bin(b) => 3 + *b as u32,
            Op::Un(u) => 32 + *u as u32,
            Op::Mad => 48,
            Op::MulShr(_) => 49,
            Op::ShAdd(_) => 50,
            Op::Rotr(_) => 51,
            Op::Cmp(c) => 52 + *c as u32,
            Op::Select => 63,
            Op::Load(_) => 64,
            Op::Store(_) => 65,
            Op::Loop(_) => 66,
            Op::Param(_) => 67,
            Op::Result(_) => 68,
        }
    }

    /// Immediate payload for content hashing.
    fn payload(&self) -> u32 {
        match self {
            Op::Const(c) => *c as u32,
            Op::MulShr(s) | Op::ShAdd(s) | Op::Rotr(s) => *s,
            Op::Load(o) | Op::Store(o) => *o,
            Op::Loop(c) => *c,
            Op::Param(i) | Op::Result(i) => *i,
            _ => 0,
        }
    }
}

/// A predicate guard on an instruction: execute (write) only the lanes
/// where `pred` holds (negated if `negate`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IrGuard {
    /// Guarding predicate value (must have type [`Ty::Pred`]).
    pub pred: ValueId,
    /// Invert the predicate.
    pub negate: bool,
}

/// One instruction in the kernel arena.
#[derive(Debug, Clone, PartialEq)]
pub struct Inst {
    /// Operation.
    pub op: Op,
    /// Operand values (arity per [`Op::arity`]).
    pub args: Vec<ValueId>,
    /// Optional dynamic thread scale (`active = nthreads >> k`, k ≤ 7).
    pub scale: Option<u8>,
    /// Optional predicate guard.
    pub guard: Option<IrGuard>,
    /// Body region (loops only).
    pub body: Option<Vec<ValueId>>,
    /// Next-iteration values of the body's block parameters, one per
    /// [`Op::Param`], read at the end of every iteration (loops only;
    /// `None` for plain loops).
    pub carried: Option<Vec<ValueId>>,
}

impl Inst {
    fn new(op: Op, args: Vec<ValueId>) -> Self {
        Inst {
            op,
            args,
            scale: None,
            guard: None,
            body: None,
            carried: None,
        }
    }
}

/// An SSA kernel: the instruction arena plus the root region.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    /// Kernel name (not part of the content hash).
    pub name: String,
    pub(crate) insts: Vec<Inst>,
    pub(crate) body: Vec<ValueId>,
}

impl Kernel {
    /// The instruction behind a value.
    pub fn inst(&self, v: ValueId) -> &Inst {
        &self.insts[v.index()]
    }

    pub(crate) fn inst_mut(&mut self, v: ValueId) -> &mut Inst {
        &mut self.insts[v.index()]
    }

    /// Append a fresh instruction to the arena (the caller places it
    /// into a region).
    pub(crate) fn append_inst(&mut self, op: Op, args: Vec<ValueId>) -> ValueId {
        let v = ValueId(self.insts.len() as u32);
        self.insts.push(Inst::new(op, args));
        v
    }

    /// Result type of a value.
    pub fn ty(&self, v: ValueId) -> Ty {
        self.inst(v).op.ty()
    }

    /// The root region.
    pub fn body(&self) -> &[ValueId] {
        &self.body
    }

    /// Append an instruction to the arena **and** the root region with
    /// no validation whatsoever — arity, types, scoping and attribute
    /// rules are all the caller's problem. Pair with
    /// [`Kernel::validate`]: this is the raw surface the fuzzer's
    /// near-miss mode uses to construct deliberately broken kernels and
    /// assert they are rejected with typed errors rather than panics.
    pub fn raw_push(&mut self, inst: Inst) -> ValueId {
        let v = ValueId(self.insts.len() as u32);
        self.insts.push(inst);
        self.body.push(v);
        v
    }

    /// Mutable access to an instruction, bypassing builder invariants
    /// (see [`Kernel::raw_push`]). Panics if `v` is out of the arena.
    pub fn raw_inst_mut(&mut self, v: ValueId) -> &mut Inst {
        &mut self.insts[v.index()]
    }

    /// Mutable access to the root region, bypassing builder invariants
    /// (see [`Kernel::raw_push`]).
    pub fn raw_body_mut(&mut self) -> &mut Vec<ValueId> {
        &mut self.body
    }

    /// Maximum loop-nesting depth of the kernel (0 for straight-line
    /// code). Compared against `ProcessorConfig::loop_stack_depth` at
    /// compile time so an over-deep nest is a typed
    /// [`CompileError::LoopTooDeep`] instead of a runtime
    /// loop-stack overflow.
    pub fn loop_depth(&self) -> usize {
        fn depth(k: &Kernel, region: &[ValueId]) -> usize {
            region
                .iter()
                .map(|&v| match &k.inst(v).body {
                    Some(b) => 1 + depth(k, b),
                    None => 0,
                })
                .max()
                .unwrap_or(0)
        }
        depth(self, &self.body)
    }

    /// The constant behind a value, if it is an [`Op::Const`].
    pub fn as_const(&self, v: ValueId) -> Option<i32> {
        match self.inst(v).op {
            Op::Const(c) => Some(c),
            _ => None,
        }
    }

    /// Number of instructions reachable from the root region (the
    /// figure the pass pipeline reports).
    pub fn live_insts(&self) -> usize {
        fn count(k: &Kernel, region: &[ValueId]) -> usize {
            region
                .iter()
                .map(|&v| match &k.inst(v).body {
                    Some(b) => 1 + count(k, b),
                    None => 1,
                })
                .sum()
        }
        count(self, &self.body)
    }

    /// Pre-order traversal of every region, outermost first.
    pub fn for_each_inst(&self, mut f: impl FnMut(ValueId, &Inst)) {
        fn walk(k: &Kernel, region: &[ValueId], f: &mut impl FnMut(ValueId, &Inst)) {
            for &v in region {
                f(v, k.inst(v));
                if let Some(body) = k.inst(v).body.clone() {
                    walk(k, &body, f);
                }
            }
        }
        walk(self, &self.body.clone(), &mut f);
    }

    /// The leading [`Op::Param`] instructions of a loop's body region,
    /// in declaration order (empty for plain loops or non-loop values).
    pub fn loop_params(&self, v: ValueId) -> Vec<ValueId> {
        match &self.inst(v).body {
            Some(body) => body
                .iter()
                .copied()
                .take_while(|&p| matches!(self.inst(p).op, Op::Param(_)))
                .collect(),
            None => Vec::new(),
        }
    }

    /// Structural validation: arity, operand types, attribute ranges,
    /// SSA dominance (every use is preceded by its definition in the
    /// same or an enclosing region), and the block-parameter contract
    /// on loops (params lead the body with sequential indices; the
    /// loop's args and carried list both match them in count and type;
    /// carried values are visible at the end of the body).
    pub fn validate(&self) -> Result<(), CompileError> {
        fn bad(v: ValueId, detail: String) -> CompileError {
            CompileError::Malformed { value: v.0, detail }
        }
        fn walk(
            k: &Kernel,
            region: &[ValueId],
            visible: &mut Vec<ValueId>,
            sanctioned_params: &[ValueId],
            carried: Option<&[ValueId]>,
        ) -> Result<(), CompileError> {
            let scope_base = visible.len();
            for &v in region {
                let inst = k.inst(v);
                if !matches!(inst.op, Op::Loop(_)) && inst.args.len() != inst.op.arity() {
                    return Err(bad(
                        v,
                        format!(
                            "{:?} expects {} operands, has {}",
                            inst.op,
                            inst.op.arity(),
                            inst.args.len()
                        ),
                    ));
                }
                for (i, &a) in inst.args.iter().enumerate() {
                    if !visible.contains(&a) {
                        return Err(bad(v, format!("operand {a} does not dominate this use")));
                    }
                    let want = match (&inst.op, i) {
                        (Op::Select, 2) => Ty::Pred,
                        (Op::Result(_), 0) => {
                            // The operand is the loop itself, checked
                            // structurally below instead of by type.
                            continue;
                        }
                        _ => Ty::Word,
                    };
                    if k.ty(a) != want {
                        return Err(bad(v, format!("operand {i} ({a}) is not {want:?}")));
                    }
                }
                if let Some(g) = inst.guard {
                    if !visible.contains(&g.pred) {
                        return Err(bad(v, format!("guard {} does not dominate", g.pred)));
                    }
                    if k.ty(g.pred) != Ty::Pred {
                        return Err(bad(v, format!("guard {} is not a predicate", g.pred)));
                    }
                }
                if let Some(s) = inst.scale {
                    if s > 7 {
                        return Err(bad(v, format!("thread scale {s} exceeds the 3-bit field")));
                    }
                }
                match inst.op {
                    Op::Load(off) | Op::Store(off) if off > 0xFFFF => {
                        return Err(bad(v, format!("memory offset {off} exceeds imm16")));
                    }
                    Op::Loop(count) => {
                        if count == 0 || count > 0xFFFF {
                            return Err(bad(v, format!("loop count {count} outside 1..=65535")));
                        }
                        // The hardware loop is uniform control flow
                        // (§3): per-lane masks on it have no ISA
                        // encoding and would be silently dropped.
                        if inst.guard.is_some() || inst.scale.is_some() {
                            return Err(bad(
                                v,
                                "loops are uniform control flow and cannot carry a \
                                 guard or thread scale"
                                    .into(),
                            ));
                        }
                        let body = inst
                            .body
                            .as_ref()
                            .ok_or_else(|| bad(v, "loop instruction has no body region".into()))?;
                        if body.is_empty() {
                            return Err(bad(v, "loop body is empty".into()));
                        }
                        // Block-parameter contract: params lead the
                        // body with sequential indices, and the loop's
                        // args (initial values) and carried list (next-
                        // iteration values) both match them in count.
                        let params = k.loop_params(v);
                        for (i, &p) in params.iter().enumerate() {
                            if k.inst(p).op != Op::Param(i as u32) {
                                return Err(bad(
                                    p,
                                    format!(
                                        "loop param {i} is {:?}, want Param({i})",
                                        k.inst(p).op
                                    ),
                                ));
                            }
                        }
                        if body[params.len()..]
                            .iter()
                            .any(|&b| matches!(k.inst(b).op, Op::Param(_)))
                        {
                            return Err(bad(v, "block parameters must lead the loop body".into()));
                        }
                        if inst.args.len() != params.len() {
                            return Err(bad(
                                v,
                                format!(
                                    "loop has {} initial values for {} block parameters",
                                    inst.args.len(),
                                    params.len()
                                ),
                            ));
                        }
                        let carried_len = inst.carried.as_ref().map_or(0, Vec::len);
                        if carried_len != params.len() {
                            return Err(bad(
                                v,
                                format!(
                                    "loop has {} carried values for {} block parameters",
                                    carried_len,
                                    params.len()
                                ),
                            ));
                        }
                        walk(k, body, visible, &params, inst.carried.as_deref())?;
                    }
                    Op::Param(_) => {
                        if !sanctioned_params.contains(&v) {
                            return Err(bad(
                                v,
                                "block parameter outside a loop body's leading positions".into(),
                            ));
                        }
                        if inst.guard.is_some() || inst.scale.is_some() {
                            return Err(bad(
                                v,
                                "block parameters cannot carry a guard or thread scale".into(),
                            ));
                        }
                    }
                    Op::Result(idx) => {
                        let target = inst.args[0];
                        if !matches!(k.inst(target).op, Op::Loop(_)) {
                            return Err(bad(v, format!("result operand {target} is not a loop")));
                        }
                        if idx as usize >= k.loop_params(target).len() {
                            return Err(bad(
                                v,
                                format!(
                                    "result index {idx} out of range for a loop with {} \
                                     block parameters",
                                    k.loop_params(target).len()
                                ),
                            ));
                        }
                        if inst.guard.is_some() || inst.scale.is_some() {
                            return Err(bad(
                                v,
                                "loop results cannot carry a guard or thread scale".into(),
                            ));
                        }
                    }
                    _ => {
                        if inst.body.is_some() {
                            return Err(bad(v, "only loops carry a body region".into()));
                        }
                    }
                }
                if !matches!(inst.op, Op::Loop(_)) && inst.carried.is_some() {
                    return Err(bad(v, "only loops carry next-iteration values".into()));
                }
                visible.push(v);
            }
            // The carried values are read at the end of every
            // iteration, while this region's definitions are still in
            // scope; check them here, before the scope closes.
            if let Some(cs) = carried {
                for (i, &c) in cs.iter().enumerate() {
                    if !visible.contains(&c) {
                        return Err(bad(
                            c,
                            format!("carried value {i} ({c}) is not visible at the back edge"),
                        ));
                    }
                    if k.ty(c) != Ty::Word {
                        return Err(bad(c, format!("carried value {i} ({c}) is not a Word")));
                    }
                }
            }
            // Values defined in this region go out of scope with it (a
            // loop body's definitions are invisible after the loop).
            visible.truncate(scope_base);
            Ok(())
        }
        let mut visible = Vec::new();
        walk(self, &self.body, &mut visible, &[], None)
    }

    /// Canonical byte serialization of the kernel plus the processor
    /// configuration it will be compiled for: a dense renumbering in
    /// traversal order, independent of the kernel name and of arena
    /// garbage left behind by passes. Two kernels are
    /// compilation-equivalent exactly when their canonical bytes are
    /// equal — [`Kernel::content_hash`] hashes these bytes, and the
    /// [`crate::CompileCache`] compares them on every hit so a 64-bit
    /// key collision can never return the wrong program.
    pub fn canonical_bytes(&self, config: &ProcessorConfig) -> Vec<u8> {
        fn put(out: &mut Vec<u8>, v: u32) {
            out.extend_from_slice(&v.to_le_bytes());
        }
        let mut out = Vec::new();
        let mut dense: HashMap<ValueId, u32> = HashMap::new();
        fn walk(
            k: &Kernel,
            region: &[ValueId],
            dense: &mut HashMap<ValueId, u32>,
            out: &mut Vec<u8>,
        ) {
            put(out, 0xBE61_0000); // region open
            for &v in region {
                let n = dense.len() as u32;
                dense.insert(v, n);
                let inst = k.inst(v);
                put(out, inst.op.tag());
                put(out, inst.op.payload());
                for a in &inst.args {
                    put(out, dense[a]);
                }
                put(
                    out,
                    match inst.scale {
                        Some(s) => 0x100 | s as u32,
                        None => 0,
                    },
                );
                match inst.guard {
                    Some(g) => {
                        put(out, 0x200 | g.negate as u32);
                        put(out, dense[&g.pred]);
                    }
                    None => put(out, 0),
                }
                if let Some(body) = &inst.body {
                    walk(k, body, dense, out);
                    // Carried values reference body definitions, so
                    // their dense ids only exist after the body walk.
                    match &inst.carried {
                        Some(cs) => {
                            put(out, 0x400 | cs.len() as u32);
                            for c in cs {
                                put(out, dense[c]);
                            }
                        }
                        None => put(out, 0),
                    }
                }
            }
            put(out, 0xBE61_FFFF); // region close
        }
        walk(self, &self.body, &mut dense, &mut out);
        put(&mut out, config.threads as u32);
        put(&mut out, config.regs_per_thread as u32);
        put(&mut out, config.shared_words as u32);
        out.push(config.predicates as u8);
        put(&mut out, config.call_stack_depth as u32);
        put(&mut out, config.loop_stack_depth as u32);
        put(&mut out, config.imem_capacity as u32);
        out.push(match config.dsp_mode {
            DspMode::Integer => 0,
            DspMode::FloatingPoint => 1,
        });
        out
    }

    /// Content hash of the kernel + configuration — the
    /// [`crate::CompileCache`] key. Deterministic across processes
    /// (FNV-1a over [`Kernel::canonical_bytes`]).
    pub fn content_hash(&self, config: &ProcessorConfig) -> u64 {
        let mut h = Fnv::new();
        h.write_bytes(&self.canonical_bytes(config));
        h.finish()
    }
}

impl fmt::Display for Kernel {
    /// Human-readable IR listing (debugging aid, not a parseable form).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn render(
            k: &Kernel,
            region: &[ValueId],
            indent: usize,
            f: &mut fmt::Formatter<'_>,
        ) -> fmt::Result {
            for &v in region {
                let inst = k.inst(v);
                write!(f, "{:indent$}", "", indent = indent)?;
                if inst.op.ty() != Ty::Void {
                    write!(f, "{v} = ")?;
                }
                write!(f, "{:?}", inst.op)?;
                for a in &inst.args {
                    write!(f, " {a}")?;
                }
                if let Some(s) = inst.scale {
                    write!(f, " .t{s}")?;
                }
                if let Some(g) = inst.guard {
                    write!(f, " @{}{}", if g.negate { "!" } else { "" }, g.pred)?;
                }
                writeln!(f)?;
                if let Some(body) = &inst.body {
                    render(k, body, indent + 2, f)?;
                    if let Some(cs) = &inst.carried {
                        write!(f, "{:indent$}next", "", indent = indent + 2)?;
                        for c in cs {
                            write!(f, " {c}")?;
                        }
                        writeln!(f)?;
                    }
                }
            }
            Ok(())
        }
        writeln!(f, "kernel {} {{", self.name)?;
        render(self, &self.body, 2, f)?;
        write!(f, "}}")
    }
}

/// Builds a [`Kernel`] instruction by instruction, with a region stack
/// for hardware loops. Structural misuse (unbalanced loops) panics, as
/// in [`simt_isa::KernelBuilder`]; semantic problems surface as typed
/// errors from [`Kernel::validate`] at compile time.
#[derive(Debug)]
pub struct IrBuilder {
    name: String,
    insts: Vec<Inst>,
    /// Region stack: `regions[0]` is the root, the top receives pushes.
    regions: Vec<Vec<ValueId>>,
    /// Loop instructions owning the open regions above the root, with
    /// their block-parameter counts.
    open_loops: Vec<(ValueId, usize)>,
    pending_scale: Option<u8>,
    pending_guard: Option<IrGuard>,
}

impl IrBuilder {
    /// A new, empty kernel.
    pub fn new(name: impl Into<String>) -> Self {
        IrBuilder {
            name: name.into(),
            insts: Vec::new(),
            regions: vec![Vec::new()],
            open_loops: Vec::new(),
            pending_scale: None,
            pending_guard: None,
        }
    }

    fn push(&mut self, op: Op, args: Vec<ValueId>) -> ValueId {
        let mut inst = Inst::new(op, args);
        inst.scale = self.pending_scale.take();
        inst.guard = self.pending_guard.take();
        let v = ValueId(self.insts.len() as u32);
        self.insts.push(inst);
        self.regions.last_mut().expect("region stack").push(v);
        v
    }

    /// Apply a dynamic thread scale to the *next* instruction.
    pub fn scale_next(&mut self, k: u8) -> &mut Self {
        self.pending_scale = Some(k & 0x7);
        self
    }

    /// Guard the *next* instruction on predicate `pred`.
    pub fn guard_next(&mut self, pred: ValueId, negate: bool) -> &mut Self {
        self.pending_guard = Some(IrGuard { pred, negate });
        self
    }

    /// Word constant.
    pub fn iconst(&mut self, v: i32) -> ValueId {
        self.push(Op::Const(v), vec![])
    }

    /// Thread id.
    pub fn tid(&mut self) -> ValueId {
        self.push(Op::Tid, vec![])
    }

    /// Thread count.
    pub fn ntid(&mut self) -> ValueId {
        self.push(Op::Ntid, vec![])
    }

    /// Generic binary op.
    pub fn bin(&mut self, op: BinOp, a: ValueId, b: ValueId) -> ValueId {
        self.push(Op::Bin(op), vec![a, b])
    }

    /// `a + b` (wrapping).
    pub fn add(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.bin(BinOp::Add, a, b)
    }

    /// `a - b` (wrapping).
    pub fn sub(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.bin(BinOp::Sub, a, b)
    }

    /// `a * b` (low 32 bits).
    pub fn mul(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.bin(BinOp::Mul, a, b)
    }

    /// Generic unary op.
    pub fn un(&mut self, op: UnOp, a: ValueId) -> ValueId {
        self.push(Op::Un(op), vec![a])
    }

    /// `a*b + c` (low 32 bits).
    pub fn mad(&mut self, a: ValueId, b: ValueId, c: ValueId) -> ValueId {
        self.push(Op::Mad, vec![a, b, c])
    }

    /// `(a*b) >> s` over the 64-bit product (fixed-point scaling).
    pub fn mulshr(&mut self, a: ValueId, b: ValueId, s: u32) -> ValueId {
        self.push(Op::MulShr(s & 63), vec![a, b])
    }

    /// `(a << s) + b` (address generation).
    pub fn shadd(&mut self, a: ValueId, s: u32, b: ValueId) -> ValueId {
        self.push(Op::ShAdd(s & 31), vec![a, b])
    }

    /// Rotate right by an immediate.
    pub fn rotr(&mut self, a: ValueId, s: u32) -> ValueId {
        self.push(Op::Rotr(s), vec![a])
    }

    /// Comparison producing a predicate value.
    pub fn cmp(&mut self, op: CmpOp, a: ValueId, b: ValueId) -> ValueId {
        self.push(Op::Cmp(op), vec![a, b])
    }

    /// `p ? a : b`.
    pub fn select(&mut self, a: ValueId, b: ValueId, p: ValueId) -> ValueId {
        self.push(Op::Select, vec![a, b, p])
    }

    /// `shared[base + off]`.
    pub fn load(&mut self, base: ValueId, off: u32) -> ValueId {
        self.push(Op::Load(off), vec![base])
    }

    /// `shared[base + off] = v`.
    pub fn store(&mut self, base: ValueId, off: u32, v: ValueId) {
        self.push(Op::Store(off), vec![base, v]);
    }

    /// Open a zero-overhead hardware loop repeating `count` times, with
    /// no loop-carried values. Close it with [`IrBuilder::end_loop`].
    ///
    /// # Panics
    /// If a scale or guard is pending: the hardware loop is uniform
    /// control flow and cannot be masked per lane.
    pub fn begin_loop(&mut self, count: u32) {
        self.begin_loop_carried(count, &[]);
    }

    /// Open a hardware loop whose body carries `inits.len()` values
    /// across iterations, returning the body's block parameters (the
    /// per-iteration values). On iteration 0 each parameter holds its
    /// entry in `inits`; afterwards it holds the matching value passed
    /// to [`IrBuilder::end_loop_carried`].
    ///
    /// ```
    /// use simt_compiler::ir::IrBuilder;
    ///
    /// // shared[tid + 64] = Σ_{i<8} shared[tid] (a carried accumulator)
    /// let mut b = IrBuilder::new("acc8");
    /// let tid = b.tid();
    /// let zero = b.iconst(0);
    /// let p = b.begin_loop_carried(8, &[zero]);   // p[0]: the running sum
    /// let x = b.load(tid, 0);
    /// let next = b.add(p[0], x);
    /// let r = b.end_loop_carried(&[next]);        // r[0]: the final sum
    /// b.store(tid, 64, r[0]);
    /// let kernel = b.finish();
    /// assert!(kernel.validate().is_ok());
    /// ```
    ///
    /// # Panics
    /// If a scale or guard is pending (loops are uniform control flow).
    pub fn begin_loop_carried(&mut self, count: u32, inits: &[ValueId]) -> Vec<ValueId> {
        assert!(
            self.pending_scale.is_none() && self.pending_guard.is_none(),
            "loops are uniform control flow and cannot carry a guard or thread scale"
        );
        let v = self.push(Op::Loop(count & 0xFFFF), inits.to_vec());
        self.open_loops.push((v, inits.len()));
        self.regions.push(Vec::new());
        (0..inits.len())
            .map(|i| self.push(Op::Param(i as u32), vec![]))
            .collect()
    }

    /// Close the innermost open loop.
    ///
    /// # Panics
    /// If no loop is open, or the open loop declared block parameters
    /// (close those with [`IrBuilder::end_loop_carried`]).
    pub fn end_loop(&mut self) {
        let &(_, n) = self.open_loops.last().expect("end_loop without begin_loop");
        assert_eq!(
            n, 0,
            "loop carries {n} value(s); close with end_loop_carried"
        );
        self.end_loop_carried(&[]);
    }

    /// Close the innermost open loop, passing the next-iteration value
    /// of each block parameter, and return the loop's results (the
    /// final carried values, visible after the loop).
    ///
    /// # Panics
    /// If no loop is open, `carried.len()` does not match the loop's
    /// parameter count, or a scale or guard is pending.
    pub fn end_loop_carried(&mut self, carried: &[ValueId]) -> Vec<ValueId> {
        assert!(
            self.pending_scale.is_none() && self.pending_guard.is_none(),
            "loop results cannot carry a guard or thread scale"
        );
        let (v, n) = self.open_loops.pop().expect("end_loop without begin_loop");
        assert_eq!(
            carried.len(),
            n,
            "loop declared {n} block parameter(s), got {} carried value(s)",
            carried.len()
        );
        let body = self.regions.pop().expect("loop body region");
        self.insts[v.index()].body = Some(body);
        if n > 0 {
            self.insts[v.index()].carried = Some(carried.to_vec());
        }
        (0..n)
            .map(|i| self.push(Op::Result(i as u32), vec![v]))
            .collect()
    }

    /// Finish the kernel.
    ///
    /// # Panics
    /// If a loop is still open.
    pub fn finish(mut self) -> Kernel {
        assert!(
            self.open_loops.is_empty(),
            "{} loop(s) left open",
            self.open_loops.len()
        );
        Kernel {
            name: self.name,
            insts: self.insts,
            body: self.regions.pop().expect("root region"),
        }
    }
}

/// FNV-1a, 64-bit: a tiny deterministic hasher so cache keys are stable
/// across processes (std's `DefaultHasher` is randomly seeded).
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn write_u8(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
    }

    pub(crate) fn write_u32(&mut self, v: u32) {
        for b in v.to_le_bytes() {
            self.write_u8(b);
        }
    }

    pub(crate) fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

/// Hash every configuration field that affects the compiled artifact.
pub(crate) fn hash_config(h: &mut Fnv, cfg: &ProcessorConfig) {
    h.write_u32(cfg.threads as u32);
    h.write_u32(cfg.regs_per_thread as u32);
    h.write_u32(cfg.shared_words as u32);
    h.write_u8(cfg.predicates as u8);
    h.write_u32(cfg.call_stack_depth as u32);
    h.write_u32(cfg.loop_stack_depth as u32);
    h.write_u32(cfg.imem_capacity as u32);
    h.write_u8(match cfg.dsp_mode {
        DspMode::Integer => 0,
        DspMode::FloatingPoint => 1,
    });
    // `parallel_threshold` is deliberately NOT hashed: it is a
    // host-simulation tuning knob that affects neither the compiled
    // artifact nor its decode (see ProcessorConfig::artifact_compatible).
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_valid_ssa() {
        let mut b = IrBuilder::new("t");
        let tid = b.tid();
        let x = b.load(tid, 0);
        let c = b.iconst(3);
        let y = b.mul(x, c);
        b.store(tid, 64, y);
        let k = b.finish();
        assert!(k.validate().is_ok());
        assert_eq!(k.live_insts(), 5);
        assert_eq!(k.ty(y), Ty::Word);
    }

    #[test]
    fn loop_scoping_is_enforced() {
        // A value defined inside a loop body must not be used after it.
        let mut b = IrBuilder::new("t");
        let tid = b.tid();
        b.begin_loop(4);
        let inner = b.load(tid, 0);
        let one = b.iconst(1);
        let bumped = b.add(inner, one);
        b.store(tid, 0, bumped);
        b.end_loop();
        let mut k = b.finish();
        assert!(k.validate().is_ok());
        // Force a use-after-scope: store the loop-local value at root.
        let escape = ValueId(k.insts.len() as u32);
        k.insts.push(Inst::new(Op::Store(0), vec![tid, bumped]));
        k.body.push(escape);
        assert!(matches!(k.validate(), Err(CompileError::Malformed { .. })));
    }

    #[test]
    fn type_errors_are_caught() {
        let mut b = IrBuilder::new("t");
        let tid = b.tid();
        let p = b.cmp(CmpOp::Lt, tid, tid);
        // Predicate used where a word is required.
        let bad = b.add(p, tid);
        b.store(tid, 0, bad);
        let k = b.finish();
        assert!(matches!(k.validate(), Err(CompileError::Malformed { .. })));
    }

    #[test]
    fn content_hash_ignores_name_and_garbage() {
        let build = |name: &str| {
            let mut b = IrBuilder::new(name);
            let tid = b.tid();
            let x = b.load(tid, 0);
            b.store(tid, 16, x);
            b.finish()
        };
        let cfg = ProcessorConfig::default();
        let a = build("a");
        let mut b2 = build("b");
        assert_eq!(a.content_hash(&cfg), b2.content_hash(&cfg));
        // Arena garbage (an unreferenced instruction) must not matter.
        b2.insts.push(Inst::new(Op::Const(99), vec![]));
        assert_eq!(a.content_hash(&cfg), b2.content_hash(&cfg));
        // A different config must.
        assert_ne!(
            a.content_hash(&cfg),
            a.content_hash(&cfg.clone().with_threads(64))
        );
        // A different offset must.
        let mut c = build("c");
        if let Op::Store(off) = &mut c.inst_mut(c.body[2]).op {
            *off = 17;
        }
        assert_ne!(a.content_hash(&cfg), c.content_hash(&cfg));
    }

    #[test]
    #[should_panic(expected = "uniform control flow")]
    fn masked_loops_are_rejected_by_the_builder() {
        let mut b = IrBuilder::new("t");
        let tid = b.tid();
        let zero = b.iconst(0);
        let p = b.cmp(CmpOp::Lt, tid, zero);
        b.guard_next(p, false);
        b.begin_loop(3);
    }

    #[test]
    fn masked_loops_are_rejected_by_validation() {
        // Construct the degenerate form directly (bypassing the
        // builder): a guard on a loop has no ISA encoding and must be
        // a typed error, never silently dropped at emission.
        let mut b = IrBuilder::new("t");
        let tid = b.tid();
        let zero = b.iconst(0);
        let p = b.cmp(CmpOp::Lt, tid, zero);
        b.begin_loop(3);
        b.store(tid, 0, tid);
        b.end_loop();
        let mut k = b.finish();
        let loop_id = *k.body.last().unwrap();
        k.inst_mut(loop_id).guard = Some(IrGuard {
            pred: p,
            negate: false,
        });
        assert!(matches!(k.validate(), Err(CompileError::Malformed { .. })));
    }

    #[test]
    fn carried_loops_build_and_validate() {
        // acc over 8 iterations, plus a walking index: two carried slots.
        let mut b = IrBuilder::new("acc");
        let tid = b.tid();
        let zero = b.iconst(0);
        let p = b.begin_loop_carried(8, &[zero, tid]);
        let x = b.load(p[1], 0);
        let acc2 = b.add(p[0], x);
        let one = b.iconst(1);
        let idx2 = b.add(p[1], one);
        let r = b.end_loop_carried(&[acc2, idx2]);
        b.store(tid, 64, r[0]);
        let k = b.finish();
        assert!(k.validate().is_ok(), "\n{k}");
        assert_eq!(k.ty(p[0]), Ty::Word);
        assert_eq!(k.ty(r[1]), Ty::Word);
        let s = k.to_string();
        assert!(s.contains("next"), "{s}");
        assert!(s.contains("Param(0)"), "{s}");
        assert!(s.contains("Result(1)"), "{s}");
    }

    #[test]
    fn carried_arity_mismatches_are_rejected() {
        // A carried list on a loop with no block parameters.
        let mut b = IrBuilder::new("t");
        let tid = b.tid();
        b.begin_loop(4);
        b.store(tid, 0, tid);
        b.end_loop();
        let mut k = b.finish();
        let loop_id = k.body[1];
        k.inst_mut(loop_id).carried = Some(vec![tid]);
        assert!(matches!(k.validate(), Err(CompileError::Malformed { .. })));

        // An initial value without a matching parameter.
        let mut b = IrBuilder::new("t");
        let tid = b.tid();
        b.begin_loop(4);
        b.store(tid, 0, tid);
        b.end_loop();
        let mut k = b.finish();
        let loop_id = k.body[1];
        k.inst_mut(loop_id).args = vec![tid];
        assert!(matches!(k.validate(), Err(CompileError::Malformed { .. })));
    }

    #[test]
    fn params_outside_loop_bodies_are_rejected() {
        let mut b = IrBuilder::new("t");
        let tid = b.tid();
        b.store(tid, 0, tid);
        let mut k = b.finish();
        let p = k.append_inst(Op::Param(0), vec![]);
        k.body.push(p);
        assert!(matches!(k.validate(), Err(CompileError::Malformed { .. })));
    }

    #[test]
    fn carried_values_must_be_visible_at_the_back_edge() {
        // Carried value defined inside a *nested* loop: out of scope at
        // the outer back edge.
        let mut b = IrBuilder::new("t");
        let tid = b.tid();
        let zero = b.iconst(0);
        let p = b.begin_loop_carried(4, &[zero]);
        b.begin_loop(2);
        let inner = b.load(tid, 0);
        b.store(tid, 0, inner);
        b.end_loop();
        let r = b.end_loop_carried(&[p[0]]);
        b.store(tid, 64, r[0]);
        let mut k = b.finish();
        let outer = k.body[2];
        k.inst_mut(outer).carried = Some(vec![inner]);
        assert!(matches!(k.validate(), Err(CompileError::Malformed { .. })));
    }

    #[test]
    fn carried_lists_reach_the_content_hash() {
        let build = |swap: bool| {
            let mut b = IrBuilder::new("t");
            let tid = b.tid();
            let zero = b.iconst(0);
            let p = b.begin_loop_carried(4, &[zero, tid]);
            let a2 = b.add(p[0], p[1]);
            let i2 = b.add(p[1], p[0]);
            let r = if swap {
                b.end_loop_carried(&[i2, a2])
            } else {
                b.end_loop_carried(&[a2, i2])
            };
            b.store(tid, 0, r[0]);
            b.finish()
        };
        let cfg = ProcessorConfig::default();
        assert_ne!(
            build(false).content_hash(&cfg),
            build(true).content_hash(&cfg),
            "swapping the carried order must change the hash"
        );
    }

    #[test]
    fn display_renders_regions() {
        let mut b = IrBuilder::new("show");
        let tid = b.tid();
        b.begin_loop(3);
        let x = b.load(tid, 0);
        b.store(tid, 1, x);
        b.end_loop();
        let k = b.finish();
        let s = k.to_string();
        assert!(s.contains("Loop(3)"), "{s}");
        assert!(s.contains("Store(1)"), "{s}");
    }
}
