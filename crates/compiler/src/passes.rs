//! The optimization pipeline: constant folding, strength reduction,
//! loop-invariant code motion, common-subexpression elimination,
//! store-to-load forwarding, `mad` fusion, dead-code elimination and a
//! final load/store schedule, with per-pass before/after instruction
//! counts.
//!
//! Frontends are encouraged to emit clear, mechanical IR (explicit
//! address arithmetic, one constant per use); these passes recover the
//! hand-scheduled form. Constant evaluation reproduces the datapath
//! semantics bit-for-bit (wrapping adds, the shifter's ≥32 behaviour,
//! saturation), so folding can never change a kernel's output.

use crate::ir::{BinOp, Kernel, Op, UnOp, ValueId};
use std::collections::HashMap;

/// Architectural thread ceiling (the ISA's 1024-thread limit), used as
/// a sound over-approximation wherever a pass needs address ranges but
/// has no [`simt_core::ProcessorConfig`] in hand: every real build runs
/// at most this many threads, so ranges computed at the ceiling are
/// supersets of the real access sets and disjointness decided on them
/// holds for any configuration.
const MAX_THREADS: usize = 1024;

/// Positions a load may climb toward its operands' definitions in the
/// final schedule. Enough to put two ALU operations between a load and
/// its first use (the depth the 16:4 read mux needs covering), small
/// enough that load results never pile up on the spill-free register
/// file.
const MAX_LOAD_HOIST: usize = 3;

/// Positions a store may sink to join the next store of its thread
/// scale. Bounds the live-range extension of the stored value the same
/// way [`MAX_LOAD_HOIST`] bounds load results.
const MAX_STORE_SINK: usize = 4;

/// Before/after instruction counts of one pass invocation.
#[derive(Debug, Clone)]
pub struct PassStats {
    /// Pass name.
    pub pass: &'static str,
    /// Live IR instructions before the pass ran.
    pub insts_before: usize,
    /// Live IR instructions after.
    pub insts_after: usize,
    /// Whether the pass rewrote anything (folds and CSE aliasing change
    /// instructions in place; the count only drops at the next DCE).
    pub changed: bool,
}

/// What the whole pipeline did to a kernel.
#[derive(Debug, Clone, Default)]
pub struct PipelineReport {
    /// Every pass invocation, in execution order (the pipeline iterates
    /// to a fixpoint, so passes appear once per round).
    pub passes: Vec<PassStats>,
    /// Live IR instructions before the pipeline.
    pub insts_before: usize,
    /// Live IR instructions after.
    pub insts_after: usize,
}

impl PipelineReport {
    /// Fractional instruction-count reduction (0 when nothing shrank).
    pub fn reduction(&self) -> f64 {
        if self.insts_before == 0 {
            0.0
        } else {
            1.0 - self.insts_after as f64 / self.insts_before as f64
        }
    }
}

/// A pass: rewrites the kernel in place, reports whether it changed it.
type Pass = fn(&mut Kernel) -> bool;

/// Run the full pipeline to a fixpoint (bounded) and report per-pass
/// statistics.
pub fn optimize(k: &mut Kernel) -> PipelineReport {
    let mut report = PipelineReport {
        insts_before: k.live_insts(),
        ..Default::default()
    };
    let passes: &[(&'static str, Pass)] = &[
        ("const-fold", const_fold),
        ("strength-reduce", strength_reduce),
        ("licm", licm),
        ("cse", cse),
        ("store-forward", forward_stores),
        ("mad-fuse", mad_fuse),
        ("dce", dce),
    ];
    for _round in 0..8 {
        let mut any = false;
        for &(name, pass) in passes {
            let before = k.live_insts();
            let changed = pass(k);
            report.passes.push(PassStats {
                pass: name,
                insts_before: before,
                insts_after: k.live_insts(),
                changed,
            });
            any |= changed;
        }
        if !any {
            break;
        }
    }
    // The load/store schedule runs once, after the rewriting passes
    // settle: it only reorders, so nothing upstream can profit from
    // re-running on its output.
    let before = k.live_insts();
    let changed = schedule_mem(k);
    report.passes.push(PassStats {
        pass: "ls-sched",
        insts_before: before,
        insts_after: k.live_insts(),
        changed,
    });
    report.insts_after = k.live_insts();
    report
}

// ---- bit-exact constant evaluation (mirrors `simt_core::alu`) ---------

pub(crate) fn eval_bin(op: BinOp, a: u32, b: u32) -> u32 {
    match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => (a as i32).wrapping_mul(b as i32) as u32,
        BinOp::MulHi => (((a as i32 as i64).wrapping_mul(b as i32 as i64)) >> 32) as u32,
        BinOp::MulUHi => (((a as u64).wrapping_mul(b as u64)) >> 32) as u32,
        BinOp::Min => (a as i32).min(b as i32) as u32,
        BinOp::Max => (a as i32).max(b as i32) as u32,
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => {
            if b >= 32 {
                0
            } else {
                a << b
            }
        }
        BinOp::Lsr => {
            if b >= 32 {
                0
            } else {
                a >> b
            }
        }
        BinOp::Asr => {
            if b >= 32 {
                ((a as i32) >> 31) as u32
            } else {
                ((a as i32) >> b) as u32
            }
        }
        BinOp::SatAdd => (a as i32).saturating_add(b as i32) as u32,
        BinOp::SatSub => (a as i32).saturating_sub(b as i32) as u32,
    }
}

pub(crate) fn eval_un(op: UnOp, a: u32) -> u32 {
    match op {
        UnOp::Abs => (a as i32).wrapping_abs() as u32,
        UnOp::Neg => (a as i32).wrapping_neg() as u32,
        UnOp::Not => !a,
        UnOp::Cnot => (a == 0) as u32,
        UnOp::Popc => a.count_ones(),
        UnOp::Clz => a.leading_zeros(),
        UnOp::Brev => a.reverse_bits(),
    }
}

// ---- constant folding -------------------------------------------------

/// Evaluate instructions whose operands are all constants, and apply
/// algebraic identities (`x+0`, `x*1`, `x*0`, `x|0`, `x^0`, `x&-1`,
/// shifts by zero). Guarded instructions are left alone: a guard is a
/// write mask, and masked lanes must keep seeing no write.
pub fn const_fold(k: &mut Kernel) -> bool {
    let mut replace: HashMap<ValueId, ValueId> = HashMap::new();
    let mut changed = false;
    let root = k.body().to_vec();
    fold_region(k, &root, &mut replace, &mut changed);
    changed
}

fn rewrite_args(k: &mut Kernel, v: ValueId, replace: &HashMap<ValueId, ValueId>) {
    let inst = k.inst_mut(v);
    for a in inst.args.iter_mut() {
        if let Some(&r) = replace.get(a) {
            *a = r;
        }
    }
    if let Some(g) = &mut inst.guard {
        if let Some(&r) = replace.get(&g.pred) {
            g.pred = r;
        }
    }
}

/// Apply a replacement map to a loop's carried list. Carried values are
/// defined *inside* the body, so this must run after the body walk has
/// populated `replace` — unlike args, which are rewritten on entry.
fn rewrite_carried(k: &mut Kernel, v: ValueId, replace: &HashMap<ValueId, ValueId>) {
    if let Some(cs) = &mut k.inst_mut(v).carried {
        for c in cs.iter_mut() {
            if let Some(&r) = replace.get(c) {
                *c = r;
            }
        }
    }
}

fn fold_region(
    k: &mut Kernel,
    region: &[ValueId],
    replace: &mut HashMap<ValueId, ValueId>,
    changed: &mut bool,
) {
    for &v in region {
        rewrite_args(k, v, replace);
        if let Some(body) = k.inst_mut(v).body.take() {
            fold_region(k, &body, replace, changed);
            k.inst_mut(v).body = Some(body);
            rewrite_carried(k, v, replace);
            continue;
        }
        // A guard is a write mask and a scale is a lane mask: folding
        // either away would make inactive lanes observe a value they
        // never computed (their register keeps its prior contents), so
        // masked instructions are left exactly as written.
        if k.inst(v).guard.is_some() || k.inst(v).scale.is_some() {
            continue;
        }
        let (op, args) = {
            let i = k.inst(v);
            (i.op.clone(), i.args.clone())
        };
        let consts: Vec<Option<i32>> = args.iter().map(|&a| k.as_const(a)).collect();
        let all = |c: &[Option<i32>]| c.iter().all(|x| x.is_some());
        // Full evaluation.
        let folded: Option<u32> = match (&op, consts.as_slice()) {
            (Op::Bin(b), [Some(x), Some(y)]) if all(&consts) => {
                Some(eval_bin(*b, *x as u32, *y as u32))
            }
            (Op::Un(u), [Some(x)]) => Some(eval_un(*u, *x as u32)),
            (Op::Mad, [Some(x), Some(y), Some(z)]) => {
                Some(eval_bin(BinOp::Mul, *x as u32, *y as u32).wrapping_add(*z as u32))
            }
            (Op::MulShr(s), [Some(x), Some(y)]) => {
                Some((((*x as i64).wrapping_mul(*y as i64)) >> (s & 63)) as u32)
            }
            (Op::ShAdd(s), [Some(x), Some(y)]) => {
                Some(eval_bin(BinOp::Shl, *x as u32, s & 31).wrapping_add(*y as u32))
            }
            _ => None,
        };
        if let Some(val) = folded {
            let inst = k.inst_mut(v);
            inst.op = Op::Const(val as i32);
            inst.args.clear();
            *changed = true;
            continue;
        }
        // Algebraic identities aliasing the result to an operand.
        let alias: Option<ValueId> = match (&op, consts.as_slice()) {
            (Op::Bin(BinOp::Add), [_, Some(0)]) | (Op::Bin(BinOp::Sub), [_, Some(0)]) => {
                Some(args[0])
            }
            (Op::Bin(BinOp::Add), [Some(0), _]) => Some(args[1]),
            (Op::Bin(BinOp::Mul), [_, Some(1)]) => Some(args[0]),
            (Op::Bin(BinOp::Mul), [Some(1), _]) => Some(args[1]),
            (Op::Bin(BinOp::Or), [_, Some(0)]) | (Op::Bin(BinOp::Xor), [_, Some(0)]) => {
                Some(args[0])
            }
            (Op::Bin(BinOp::Or), [Some(0), _]) | (Op::Bin(BinOp::Xor), [Some(0), _]) => {
                Some(args[1])
            }
            (Op::Bin(BinOp::And), [_, Some(-1)]) => Some(args[0]),
            (Op::Bin(BinOp::And), [Some(-1), _]) => Some(args[1]),
            (Op::Bin(BinOp::Shl), [_, Some(0)])
            | (Op::Bin(BinOp::Lsr), [_, Some(0)])
            | (Op::Bin(BinOp::Asr), [_, Some(0)]) => Some(args[0]),
            _ => None,
        };
        if let Some(target) = alias {
            replace.insert(v, target);
            *changed = true;
            continue;
        }
        // Annihilators producing a fresh constant.
        let zero = matches!(
            (&op, consts.as_slice()),
            (Op::Bin(BinOp::Mul), [_, Some(0)])
                | (Op::Bin(BinOp::Mul), [Some(0), _])
                | (Op::Bin(BinOp::And), [_, Some(0)])
                | (Op::Bin(BinOp::And), [Some(0), _])
        );
        if zero {
            let inst = k.inst_mut(v);
            inst.op = Op::Const(0);
            inst.args.clear();
            *changed = true;
        }
    }
}

// ---- strength reduction ----------------------------------------------

/// Rewrite expensive forms into cheaper datapath ops:
///
/// * `mul` by a power-of-two constant becomes a left shift through the
///   integrated multiplicative (barrel-replacement) shifter — same DSP
///   column, but eligible for the immediate `shli` form;
/// * address adds feeding a load/store base are folded into the
///   instruction's 16-bit offset field (`lds rd, [ra+imm]`), the
///   addressing mode the hand-written kernels use.
pub fn strength_reduce(k: &mut Kernel) -> bool {
    let mut changed = false;
    let mut new_consts: Vec<(i32, ValueId)> = Vec::new();
    let root = k.body().to_vec();
    reduce_region(k, &root, &mut new_consts, &mut changed);
    // Materialized shift-amount constants dominate everything from the
    // top of the root region.
    for (i, (_, v)) in new_consts.iter().enumerate() {
        k.body.insert(i, *v);
    }
    changed
}

fn strength_const(k: &mut Kernel, pool: &mut Vec<(i32, ValueId)>, val: i32) -> ValueId {
    if let Some((_, v)) = pool.iter().find(|(c, _)| *c == val) {
        return *v;
    }
    let v = k.append_inst(Op::Const(val), vec![]);
    pool.push((val, v));
    v
}

fn reduce_region(
    k: &mut Kernel,
    region: &[ValueId],
    pool: &mut Vec<(i32, ValueId)>,
    changed: &mut bool,
) {
    for &v in region {
        if let Some(body) = k.inst_mut(v).body.take() {
            reduce_region(k, &body, pool, changed);
            k.inst_mut(v).body = Some(body);
            continue;
        }
        let (op, args) = {
            let i = k.inst(v);
            (i.op.clone(), i.args.clone())
        };
        match op {
            // mul by 2^k -> shl by k (the in-place rewrite keeps any
            // scale/guard attributes, so masking semantics are intact).
            Op::Bin(BinOp::Mul) => {
                let (x, c) = match (k.as_const(args[0]), k.as_const(args[1])) {
                    (_, Some(c)) => (args[0], Some(c)),
                    (Some(c), _) => (args[1], Some(c)),
                    _ => (args[0], None),
                };
                if let Some(c) = c {
                    if c > 1 && (c as u32).is_power_of_two() {
                        let sh = strength_const(k, pool, c.trailing_zeros() as i32);
                        let inst = k.inst_mut(v);
                        inst.op = Op::Bin(BinOp::Shl);
                        inst.args = vec![x, sh];
                        *changed = true;
                    }
                }
            }
            // lds/sts base = add(x, const) -> fold into the offset field.
            // Only for unmasked adds: a guarded or scaled address add
            // leaves inactive lanes with a different base register, so
            // folding it would change the address those lanes access.
            Op::Load(off) | Op::Store(off) => {
                let base = args[0];
                let base_inst = k.inst(base);
                if base_inst.guard.is_some() || base_inst.scale.is_some() {
                    continue;
                }
                if let Op::Bin(BinOp::Add) = base_inst.op {
                    let (ba, bb) = (base_inst.args[0], base_inst.args[1]);
                    let folded = match (k.as_const(ba), k.as_const(bb)) {
                        (_, Some(c)) => Some((ba, c)),
                        (Some(c), _) => Some((bb, c)),
                        _ => None,
                    };
                    if let Some((x, c)) = folded {
                        let new_off = off as i64 + c as i64;
                        if (0..=0xFFFF).contains(&new_off) {
                            let inst = k.inst_mut(v);
                            inst.args[0] = x;
                            inst.op = match inst.op {
                                Op::Load(_) => Op::Load(new_off as u32),
                                Op::Store(_) => Op::Store(new_off as u32),
                                _ => unreachable!(),
                            };
                            *changed = true;
                        }
                    }
                }
            }
            _ => {}
        }
    }
}

// ---- common-subexpression elimination ---------------------------------

/// Value-numbering key: op, operands and thread scale.
type CseKey = (Op, Vec<ValueId>, Option<u8>);

/// Dominator-scoped value numbering over pure, guard-free instructions:
/// two instructions with the same op, operands and thread scale compute
/// the same value, so later ones alias the first. Memory operations are
/// never merged.
pub fn cse(k: &mut Kernel) -> bool {
    let mut scopes: Vec<HashMap<CseKey, ValueId>> = vec![HashMap::new()];
    let mut replace: HashMap<ValueId, ValueId> = HashMap::new();
    let mut changed = false;

    fn walk(
        k: &mut Kernel,
        region: &[ValueId],
        scopes: &mut Vec<HashMap<CseKey, ValueId>>,
        replace: &mut HashMap<ValueId, ValueId>,
        changed: &mut bool,
    ) {
        for &v in region {
            rewrite_args(k, v, replace);
            if let Some(body) = k.inst_mut(v).body.take() {
                scopes.push(HashMap::new());
                walk(k, &body, scopes, replace, changed);
                scopes.pop();
                k.inst_mut(v).body = Some(body);
                rewrite_carried(k, v, replace);
                continue;
            }
            let inst = k.inst(v);
            if !inst.op.is_pure() || inst.guard.is_some() {
                continue;
            }
            let key = (inst.op.clone(), inst.args.clone(), inst.scale);
            if let Some(&prior) = scopes.iter().rev().find_map(|s| s.get(&key)) {
                replace.insert(v, prior);
                *changed = true;
            } else {
                scopes.last_mut().expect("scope stack").insert(key, v);
            }
        }
    }

    let root = k.body().to_vec();
    walk(k, &root, &mut scopes, &mut replace, &mut changed);
    changed
}

// ---- store-to-load forwarding -----------------------------------------

/// Forwarding state: `(base value, offset)` → last value stored there.
type AvailMap = HashMap<(ValueId, u32), ValueId>;

/// Invalidate every entry a store to `(base, off)` may clobber. Two
/// accesses with the same base alias exactly when their offsets match;
/// accesses with *different* base values may still hit the same address
/// (e.g. `tid` vs `tid + k`), so they are conservatively killed.
fn clobber(avail: &mut AvailMap, base: ValueId, off: u32) {
    avail.retain(|&(b, o), _| b == base && o != off);
}

/// Collect every `(base, off)` a region (and its nested loops) stores
/// to, for parent-scope invalidation after a loop body.
fn region_store_keys(k: &Kernel, region: &[ValueId], keys: &mut Vec<(ValueId, u32)>) {
    for &v in region {
        let inst = k.inst(v);
        if let Op::Store(off) = inst.op {
            keys.push((inst.args[0], off));
        }
        if let Some(body) = &inst.body {
            region_store_keys(k, body, keys);
        }
    }
}

/// Replace loads that provably re-read a value just stored at the same
/// `(base, offset)` with the stored value itself — the round trip
/// through shared memory becomes a register move the next DCE deletes.
/// This is what turns a fused kernel chain's store/load handoff into a
/// direct SSA def-use edge. Masked (guarded or scaled) loads are left
/// alone — their inactive lanes keep the old register contents — and
/// masked stores only invalidate (a partial write forwards nothing).
/// Only stores through a lane-unique base (`tid + constant`, see
/// [`crate::analysis::lane_unique_base`]) are forwardable at all: a
/// uniform-address store collapses all lanes to one winning value that
/// a later load broadcasts, which per-lane forwarding would not
/// reproduce.
pub fn forward_stores(k: &mut Kernel) -> bool {
    let mut replace: HashMap<ValueId, ValueId> = HashMap::new();
    let mut changed = false;

    fn walk(
        k: &mut Kernel,
        region: &[ValueId],
        avail: &mut AvailMap,
        replace: &mut HashMap<ValueId, ValueId>,
        changed: &mut bool,
    ) {
        for &v in region {
            rewrite_args(k, v, replace);
            if let Some(body) = k.inst_mut(v).body.take() {
                // A loop body re-executes: values stored before the loop
                // are only safe to forward inside it when the body never
                // clobbers them — start the body with an empty map and
                // kill parent entries the body stores over.
                let mut inner = AvailMap::new();
                walk(k, &body, &mut inner, replace, changed);
                let mut keys = Vec::new();
                region_store_keys(k, &body, &mut keys);
                for (b, o) in keys {
                    clobber(avail, b, o);
                }
                k.inst_mut(v).body = Some(body);
                rewrite_carried(k, v, replace);
                continue;
            }
            let inst = k.inst(v);
            match inst.op {
                Op::Store(off) => {
                    let base = inst.args[0];
                    let value = inst.args[1];
                    let masked = inst.guard.is_some() || inst.scale.is_some();
                    clobber(avail, base, off);
                    if !masked && crate::analysis::lane_unique_base(k, base) {
                        avail.insert((base, off), value);
                    }
                }
                Op::Load(off) if inst.guard.is_none() && inst.scale.is_none() => {
                    if let Some(&stored) = avail.get(&(inst.args[0], off)) {
                        replace.insert(v, stored);
                        *changed = true;
                    }
                }
                _ => {}
            }
        }
    }

    let root = k.body().to_vec();
    let mut avail = AvailMap::new();
    walk(k, &root, &mut avail, &mut replace, &mut changed);
    changed
}

// ---- mad fusion -------------------------------------------------------

/// Fuse `mul` → `add` chains into the DSP column's single `mad`
/// instruction: an unmasked add with one operand produced by an
/// unmasked, single-use, register-register multiply becomes
/// `mad(a, b, other)`; the multiply dies at the next DCE. Constant
/// operands are excluded on both sides — they would lower to the
/// immediate forms (`muli`/`addi`) anyway, and a `mad` would force a
/// `movi` that erases the win.
pub fn mad_fuse(k: &mut Kernel) -> bool {
    // Global use counts (args + guards + carried lists) decide
    // single-use multiplies.
    let mut uses: HashMap<ValueId, usize> = HashMap::new();
    k.for_each_inst(|_, inst| {
        for &a in &inst.args {
            *uses.entry(a).or_default() += 1;
        }
        if let Some(g) = inst.guard {
            *uses.entry(g.pred).or_default() += 1;
        }
        if let Some(cs) = &inst.carried {
            for &c in cs {
                *uses.entry(c).or_default() += 1;
            }
        }
    });

    let mut rewrites: Vec<(ValueId, [ValueId; 3])> = Vec::new();
    k.for_each_inst(|v, inst| {
        if inst.op != Op::Bin(BinOp::Add) || inst.guard.is_some() || inst.scale.is_some() {
            return;
        }
        for (slot, &m) in inst.args.iter().enumerate() {
            let other = inst.args[1 - slot];
            if m == other {
                continue; // add(m, m): the mul has two uses here
            }
            let mi = k.inst(m);
            let fusible = mi.op == Op::Bin(BinOp::Mul)
                && mi.guard.is_none()
                && mi.scale.is_none()
                && uses.get(&m) == Some(&1)
                && k.as_const(mi.args[0]).is_none()
                && k.as_const(mi.args[1]).is_none()
                && k.as_const(other).is_none();
            if fusible {
                rewrites.push((v, [mi.args[0], mi.args[1], other]));
                break;
            }
        }
    });

    let changed = !rewrites.is_empty();
    for (v, args) in rewrites {
        let inst = k.inst_mut(v);
        inst.op = Op::Mad;
        inst.args = args.to_vec();
    }
    changed
}

// ---- dead-store elision (fusion support) ------------------------------

/// Remove root-region stores into declared dead ranges — shared-memory
/// windows a fused kernel's caller has proven nothing downstream reads
/// (the intermediate buffers of a fused launch chain). A store goes only
/// when its address range resolves (see [`crate::analysis`]), lies
/// inside one dead range, and no later load in the kernel may read any
/// part of that range. Returns the number of stores removed.
///
/// This is not part of [`optimize`]: dead ranges are an *external* fact
/// about the launch graph, not derivable from the kernel alone.
pub fn elide_stores(k: &mut Kernel, dead: &[(usize, usize)], threads: usize) -> usize {
    use crate::analysis::{access_range, ranges_intersect};

    // Pre-order index of every instruction (matches execution order:
    // a loop body sits at its header's position, repeated).
    let mut index: HashMap<ValueId, usize> = HashMap::new();
    let mut loads: Vec<(usize, Option<(usize, usize)>)> = Vec::new();
    {
        let mut i = 0usize;
        k.for_each_inst(|v, inst| {
            index.insert(v, i);
            if let Op::Load(off) = inst.op {
                loads.push((i, access_range(k, inst.args[0], off, threads)));
            }
            i += 1;
        });
    }

    let root = k.body().to_vec();
    let mut remove: Vec<ValueId> = Vec::new();
    for &v in &root {
        let inst = k.inst(v);
        let Op::Store(off) = inst.op else { continue };
        let Some(range) = access_range(k, inst.args[0], off, threads) else {
            continue;
        };
        if !dead.iter().any(|&(lo, hi)| lo <= range.0 && range.1 <= hi) {
            continue;
        }
        let pos = index[&v];
        let read_later = loads
            .iter()
            .any(|&(p, r)| p > pos && r.is_none_or(|r| ranges_intersect(r, range)));
        if !read_later {
            remove.push(v);
        }
    }
    let removed = remove.len();
    k.body.retain(|v| !remove.contains(v));
    removed
}

// ---- dead-code elimination --------------------------------------------

/// Remove instructions whose results are never used. Stores are the
/// roots of liveness (a kernel's output is its memory effects); loops
/// survive if their bodies contain a live store or any of their
/// [`Op::Result`]s is live; unused loads are removed (they have no
/// memory effect, only a cycle cost). A live loop keeps its *entire*
/// block-parameter machinery — params, initial values and carried
/// values — so the three lists stay index-aligned.
pub fn dce(k: &mut Kernel) -> bool {
    use std::collections::HashSet;

    fn effectful(k: &Kernel, v: ValueId) -> bool {
        let inst = k.inst(v);
        match &inst.op {
            Op::Store(_) => true,
            Op::Loop(_) => inst
                .body
                .as_ref()
                .is_some_and(|b| b.iter().any(|&c| effectful(k, c))),
            _ => false,
        }
    }

    // Seed phase: every store, plus the chain of loops enclosing it —
    // a store inside a loop body depends on the loop's carried state
    // for iterations past the first, so the loop (and with it the
    // params/inits/carried lists) must be traced, not just kept.
    let mut work: Vec<ValueId> = Vec::new();
    let mut owner: HashMap<ValueId, ValueId> = HashMap::new(); // param -> loop
    fn seed(
        k: &Kernel,
        region: &[ValueId],
        stack: &mut Vec<ValueId>,
        work: &mut Vec<ValueId>,
        owner: &mut HashMap<ValueId, ValueId>,
    ) {
        for &v in region {
            let inst = k.inst(v);
            if matches!(inst.op, Op::Store(_)) {
                work.push(v);
                work.extend(stack.iter().copied());
            }
            if matches!(inst.op, Op::Param(_)) {
                if let Some(&l) = stack.last() {
                    owner.insert(v, l);
                }
            }
            if let Some(body) = &inst.body {
                stack.push(v);
                seed(k, body, stack, work, owner);
                stack.pop();
            }
        }
    }
    let mut stack = Vec::new();
    seed(k, k.body(), &mut stack, &mut work, &mut owner);

    // Mark phase: everything a live instruction (transitively) reads.
    // Marking a loop pulls in its initial values (args), carried values
    // and block parameters; marking a param pulls in its owning loop;
    // marking a result pulls in the loop through its arg.
    let mut marked: HashSet<ValueId> = HashSet::new();
    while let Some(v) = work.pop() {
        if !marked.insert(v) {
            continue;
        }
        let inst = k.inst(v);
        work.extend(inst.args.iter().copied());
        if let Some(g) = inst.guard {
            work.push(g.pred);
        }
        if matches!(inst.op, Op::Loop(_)) {
            if let Some(cs) = &inst.carried {
                work.extend(cs.iter().copied());
            }
            work.extend(k.loop_params(v));
        }
        if matches!(inst.op, Op::Param(_)) {
            if let Some(&l) = owner.get(&v) {
                work.push(l);
            }
        }
    }

    // Sweep phase: rebuild regions keeping marked or effectful nodes.
    fn sweep(k: &mut Kernel, region: Vec<ValueId>, marked: &HashSet<ValueId>) -> Vec<ValueId> {
        let mut out = Vec::with_capacity(region.len());
        for v in region {
            let keep = marked.contains(&v) || effectful(k, v);
            if !keep {
                continue;
            }
            if let Some(body) = k.inst_mut(v).body.take() {
                let swept = sweep(k, body, marked);
                k.inst_mut(v).body = Some(swept);
            }
            out.push(v);
        }
        out
    }

    let before = k.live_insts();
    let root = std::mem::take(&mut k.body);
    k.body = sweep(k, root, &marked);
    k.live_insts() != before
}

// ---- loop-invariant code motion ---------------------------------------

/// Hoist instructions out of hardware-loop bodies when every operand is
/// defined outside the body — a loop re-executes them `count` times for
/// the same result. Pure, unmasked instructions (constants, ALU ops,
/// compares) hoist freely; a **load** additionally requires that no
/// store anywhere in the body may alias it, decided with the
/// [`crate::analysis`] address resolver at the architectural thread
/// ceiling (a sound over-approximation — see [`MAX_THREADS`]). Masked
/// (guarded or thread-scaled) instructions, stores, params, results and
/// nested loops never move. Inner loops are processed first, so an
/// invariant hoists as many levels as its operands allow per pass, and
/// the pipeline's fixpoint iteration finishes the job.
pub fn licm(k: &mut Kernel) -> bool {
    let mut changed = false;
    let root = std::mem::take(&mut k.body);
    k.body = licm_region(k, root, &mut changed);
    changed
}

/// All values defined anywhere in a region tree (the loop body and its
/// nested bodies).
fn region_defs(k: &Kernel, region: &[ValueId], defs: &mut std::collections::HashSet<ValueId>) {
    for &v in region {
        defs.insert(v);
        if let Some(body) = &k.inst(v).body {
            region_defs(k, body, defs);
        }
    }
}

/// The address range of every store in a region tree; `None` as soon as
/// one store's range cannot be resolved ("may write everything").
fn region_store_ranges(k: &Kernel, region: &[ValueId]) -> Option<Vec<(usize, usize)>> {
    let mut out = Some(Vec::new());
    fn walk(k: &Kernel, region: &[ValueId], out: &mut Option<Vec<(usize, usize)>>) {
        for &v in region {
            let inst = k.inst(v);
            if let Op::Store(off) = inst.op {
                match (
                    crate::analysis::access_range(k, inst.args[0], off, MAX_THREADS),
                    out.as_mut(),
                ) {
                    (Some(r), Some(list)) => list.push(r),
                    _ => *out = None,
                }
            }
            if let Some(body) = &inst.body {
                walk(k, body, out);
            }
        }
    }
    walk(k, region, &mut out);
    out
}

fn licm_region(k: &mut Kernel, region: Vec<ValueId>, changed: &mut bool) -> Vec<ValueId> {
    let mut out = Vec::with_capacity(region.len());
    for v in region {
        let Some(body) = k.inst_mut(v).body.take() else {
            out.push(v);
            continue;
        };
        // Inner loops first: their invariants land in this body and may
        // hoist again right below.
        let mut body = licm_region(k, body, changed);

        let mut defined = std::collections::HashSet::new();
        region_defs(k, &body, &mut defined);
        let store_ranges = region_store_ranges(k, &body);

        loop {
            let mut hoisted_any = false;
            let mut remaining = Vec::with_capacity(body.len());
            for (i, &bv) in body.iter().enumerate() {
                // Never empty the body: a loop must keep at least one
                // instruction to repeat.
                let still_in_body = remaining.len() + (body.len() - i - 1);
                if still_in_body >= 1 && hoistable(k, bv, &defined, &store_ranges) {
                    out.push(bv);
                    defined.remove(&bv);
                    hoisted_any = true;
                    *changed = true;
                } else {
                    remaining.push(bv);
                }
            }
            body = remaining;
            if !hoisted_any {
                break;
            }
        }
        k.inst_mut(v).body = Some(body);
        out.push(v);
    }
    out
}

/// Whether one body instruction may move in front of the loop.
fn hoistable(
    k: &Kernel,
    v: ValueId,
    defined: &std::collections::HashSet<ValueId>,
    store_ranges: &Option<Vec<(usize, usize)>>,
) -> bool {
    let inst = k.inst(v);
    if inst.guard.is_some() || inst.scale.is_some() {
        return false; // masked: executes differently per lane
    }
    if inst.args.iter().any(|a| defined.contains(a)) {
        return false; // depends on per-iteration state
    }
    match &inst.op {
        Op::Store(_) | Op::Loop(_) | Op::Param(_) | Op::Result(_) => false,
        Op::Load(off) => {
            // Safe only when provably no store in the body can touch
            // the loaded range — then every iteration (and the hoisted
            // position) reads the same memory.
            let Some(range) = crate::analysis::access_range(k, inst.args[0], *off, MAX_THREADS)
            else {
                return false;
            };
            match store_ranges {
                Some(writes) => !writes
                    .iter()
                    .any(|&w| crate::analysis::ranges_intersect(w, range)),
                None => false,
            }
        }
        _ => true, // pure ALU/compare/constant
    }
}

// ---- load/store scheduling --------------------------------------------

/// Schedule memory operations for the §3.1 load/store cycle model
/// within each region, without changing any dependence:
///
/// * **loads hoist** toward their operands' definitions, separating
///   them from their first use (the 16:4 read mux serves a load row in
///   bursts; issuing loads early is free here and keeps the schedule
///   shaped for an implementation that overlaps the mux with ALU work);
/// * **stores cluster**: a store sinks down to join the next store of
///   the *same* dynamic thread scale, so `.tk`-scaled writeback rows
///   (the reduction-tree pattern) issue back to back on the 16:1 write
///   mux instead of interleaving with ALU traffic.
///
/// A load never crosses a store (and vice versa) unless the
/// [`crate::analysis`] resolver proves their ranges disjoint at the
/// architectural thread ceiling; loops are opaque barriers; stores
/// never cross stores. Reordering therefore never changes results —
/// the fixed-point property tests in `simt-kernels` pin this down.
///
/// Motion distance is bounded ([`MAX_LOAD_HOIST`] / [`MAX_STORE_SINK`]):
/// every position an operation moves extends a live range on a register
/// file with **no spill path**, so unbounded motion would trade cycles
/// the model does not even charge for `OutOfRegisters` failures on
/// kernels that previously compiled.
pub fn schedule_mem(k: &mut Kernel) -> bool {
    let mut changed = false;
    let root = std::mem::take(&mut k.body);
    k.body = schedule_region(k, root, &mut changed);
    changed
}

/// The half-open range a memory instruction may touch, at the thread
/// ceiling; `None` = unknown ("may touch everything").
fn mem_range(k: &Kernel, v: ValueId) -> Option<(usize, usize)> {
    let inst = k.inst(v);
    match inst.op {
        Op::Load(off) | Op::Store(off) => {
            crate::analysis::access_range(k, inst.args[0], off, MAX_THREADS)
        }
        _ => None,
    }
}

/// Whether two memory instructions may alias (unknown ⇒ yes).
fn may_alias(k: &Kernel, a: ValueId, b: ValueId) -> bool {
    match (mem_range(k, a), mem_range(k, b)) {
        (Some(ra), Some(rb)) => crate::analysis::ranges_intersect(ra, rb),
        _ => true,
    }
}

fn schedule_region(k: &mut Kernel, region: Vec<ValueId>, changed: &mut bool) -> Vec<ValueId> {
    let mut order = region;
    // Recurse into loop bodies first.
    for &v in &order {
        if let Some(body) = k.inst_mut(v).body.take() {
            let body = schedule_region(k, body, changed);
            k.inst_mut(v).body = Some(body);
        }
    }

    // Phase A: hoist each load upward past instructions it does not
    // depend on. Blockers: its own operands/guard, may-aliasing stores,
    // loops (opaque memory effects), and block parameters (which must
    // stay leading).
    let mut i = 0;
    while i < order.len() {
        let v = order[i];
        if matches!(k.inst(v).op, Op::Load(_)) {
            let floor = i.saturating_sub(MAX_LOAD_HOIST);
            let mut j = i;
            while j > floor {
                let u = order[j - 1];
                let iu = k.inst(u);
                let dep =
                    k.inst(v).args.contains(&u) || k.inst(v).guard.is_some_and(|g| g.pred == u);
                let barrier = match iu.op {
                    Op::Loop(_) | Op::Param(_) => true,
                    // Loads keep their relative order: crossing another
                    // load separates nothing and would churn schedules.
                    Op::Load(_) => true,
                    Op::Store(_) => may_alias(k, v, u),
                    _ => false,
                };
                if dep || barrier {
                    break;
                }
                j -= 1;
            }
            if j < i {
                let load = order.remove(i);
                order.insert(j, load);
                *changed = true;
            }
        }
        i += 1;
    }

    // Phase B: sink each store down to join the next store of the same
    // thread scale, when nothing in between depends on it. Stores never
    // cross stores, so relative store order is preserved.
    let mut i = order.len();
    while i > 0 {
        i -= 1;
        let v = order[i];
        if !matches!(k.inst(v).op, Op::Store(_)) {
            continue;
        }
        // Find the next store after v, noting every blocker in between.
        let mut target: Option<usize> = None;
        for (jj, &u) in order.iter().enumerate().skip(i + 1) {
            if jj - i - 1 > MAX_STORE_SINK {
                break;
            }
            let iu = k.inst(u);
            match iu.op {
                Op::Store(_) => {
                    if iu.scale == k.inst(v).scale {
                        target = Some(jj);
                    }
                    break; // stores never cross stores
                }
                Op::Loop(_) | Op::Result(_) => break, // opaque / loop-final reads
                Op::Load(_) if may_alias(k, v, u) => break,
                _ => {}
            }
        }
        if let Some(j) = target {
            if j > i + 1 {
                let store = order.remove(i);
                order.insert(j - 1, store);
                *changed = true;
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{CmpOp, IrBuilder};

    #[test]
    fn folds_constant_expressions() {
        let mut b = IrBuilder::new("t");
        let tid = b.tid();
        let c2 = b.iconst(20);
        let c3 = b.iconst(3);
        let s = b.add(c2, c3); // 23
        b.store(tid, 0, s);
        let mut k = b.finish();
        let r = optimize(&mut k);
        // tid, const 23, store.
        assert_eq!(k.live_insts(), 3, "\n{k}");
        assert!(r.insts_after < r.insts_before);
        let stored = k.inst(k.body()[k.body().len() - 1]).args[1];
        assert_eq!(k.as_const(stored), Some(23));
    }

    #[test]
    fn identities_and_dce() {
        let mut b = IrBuilder::new("t");
        let tid = b.tid();
        let x = b.load(tid, 0);
        let z = b.iconst(0);
        let y = b.add(x, z); // x + 0 -> x
        let dead = b.mul(x, x); // unused
        let _ = dead;
        b.store(tid, 8, y);
        let mut k = b.finish();
        optimize(&mut k);
        // tid, load, store survive.
        assert_eq!(k.live_insts(), 3, "\n{k}");
    }

    #[test]
    fn mul_by_power_of_two_becomes_shift() {
        let mut b = IrBuilder::new("t");
        let tid = b.tid();
        let x = b.load(tid, 0);
        let c8 = b.iconst(8);
        let y = b.mul(x, c8);
        b.store(tid, 4, y);
        let mut k = b.finish();
        optimize(&mut k);
        let mut saw_shift = false;
        k.for_each_inst(|_, inst| {
            assert!(!matches!(inst.op, Op::Bin(BinOp::Mul)), "mul survived");
            if let Op::Bin(BinOp::Shl) = inst.op {
                saw_shift = true;
            }
        });
        assert!(saw_shift);
    }

    #[test]
    fn folding_matches_hardware_shift_semantics() {
        // Shifts >= 32 flush to zero / sign, exactly as the shifter does.
        assert_eq!(eval_bin(BinOp::Shl, 1, 32), 0);
        assert_eq!(eval_bin(BinOp::Lsr, 0xFFFF_FFFF, 40), 0);
        assert_eq!(eval_bin(BinOp::Asr, 0x8000_0000, 40), 0xFFFF_FFFF);
        assert_eq!(eval_bin(BinOp::SatAdd, i32::MAX as u32, 1), i32::MAX as u32);
        assert_eq!(eval_un(UnOp::Abs, i32::MIN as u32), i32::MIN as u32);
    }

    #[test]
    fn cse_merges_address_math_but_not_loads() {
        let mut b = IrBuilder::new("t");
        let tid = b.tid();
        let c = b.iconst(100);
        let a1 = b.add(tid, c);
        let c2 = b.iconst(100);
        let a2 = b.add(tid, c2); // same address, separately built
        let l1 = b.load(a1, 0);
        let l2 = b.load(a2, 0); // loads must NOT merge
        let s = b.add(l1, l2);
        b.store(tid, 0, s);
        let mut k = b.finish();
        cse(&mut k);
        dce(&mut k);
        let mut loads = 0;
        let mut adds = 0;
        k.for_each_inst(|_, inst| match inst.op {
            Op::Load(_) => loads += 1,
            Op::Bin(BinOp::Add) => adds += 1,
            _ => {}
        });
        assert_eq!(loads, 2);
        assert_eq!(adds, 2, "\n{k}"); // one address add + the sum
    }

    #[test]
    fn addressing_fold_moves_adds_into_offsets() {
        let mut b = IrBuilder::new("t");
        let tid = b.tid();
        let c = b.iconst(1024);
        let addr = b.add(tid, c);
        let x = b.load(addr, 0);
        b.store(addr, 2048, x);
        let mut k = b.finish();
        optimize(&mut k);
        let mut offs = Vec::new();
        k.for_each_inst(|_, inst| match inst.op {
            Op::Load(o) | Op::Store(o) => offs.push(o),
            Op::Bin(BinOp::Add) => panic!("address add survived:\n{inst:?}"),
            _ => {}
        });
        assert_eq!(offs, vec![1024, 3072]);
    }

    #[test]
    fn guarded_instructions_are_not_folded_or_merged() {
        let mut b = IrBuilder::new("t");
        let tid = b.tid();
        let c0 = b.iconst(0);
        let p = b.cmp(CmpOp::Lt, tid, c0);
        b.guard_next(p, false);
        let g1 = b.add(tid, c0); // guarded: may not alias to tid
        b.guard_next(p, false);
        let g2 = b.add(tid, c0); // identical but guarded: no CSE
        let s = b.add(g1, g2);
        b.store(tid, 0, s);
        let mut k = b.finish();
        optimize(&mut k);
        let mut guarded_adds = 0;
        k.for_each_inst(|_, inst| {
            if inst.guard.is_some() && matches!(inst.op, Op::Bin(BinOp::Add)) {
                guarded_adds += 1;
            }
        });
        assert_eq!(guarded_adds, 2, "\n{k}");
    }

    #[test]
    fn scaled_instructions_are_never_folded() {
        // A thread scale is a lane mask: folding a scaled const add to
        // an unscaled constant would make inactive lanes observe a
        // value they never computed. The scaled add must survive.
        let mut b = IrBuilder::new("t");
        let tid = b.tid();
        let c2 = b.iconst(2);
        let c3 = b.iconst(3);
        b.scale_next(1);
        let v = b.add(c2, c3);
        b.store(tid, 0, v);
        let mut k = b.finish();
        optimize(&mut k);
        let mut scaled_add = None;
        k.for_each_inst(|_, inst| {
            if matches!(inst.op, Op::Bin(BinOp::Add)) {
                scaled_add = inst.scale;
            }
        });
        assert_eq!(scaled_add, Some(1), "\n{k}");
    }

    #[test]
    fn stores_forward_into_matching_loads() {
        // store then load at the same (base, offset): the round trip
        // collapses to the stored value, and DCE sweeps both the load
        // and (here) nothing else — the store's effect remains.
        let mut b = IrBuilder::new("t");
        let tid = b.tid();
        let x = b.load(tid, 0);
        b.store(tid, 64, x);
        let y = b.load(tid, 64); // forwards to x
        let z = b.add(y, y);
        b.store(tid, 128, z);
        let mut k = b.finish();
        optimize(&mut k);
        let mut loads = 0;
        k.for_each_inst(|_, inst| {
            if matches!(inst.op, Op::Load(_)) {
                loads += 1;
            }
        });
        assert_eq!(loads, 1, "round-trip load must be forwarded:\n{k}");
    }

    #[test]
    fn forwarding_respects_clobbers_and_masks() {
        let mut b = IrBuilder::new("t");
        let tid = b.tid();
        let x = b.load(tid, 0);
        b.store(tid, 64, x);
        // An intervening store through a *different* base may alias.
        let other = b.load(tid, 1);
        b.store(other, 64, x);
        let y = b.load(tid, 64); // must NOT forward
        b.store(tid, 128, y);
        // A scaled load never forwards (inactive lanes keep old regs).
        b.store(tid, 256, x);
        b.scale_next(1);
        let s = b.load(tid, 256);
        b.store(tid, 300, s);
        let mut k = b.finish();
        let before = {
            let mut loads = 0;
            k.for_each_inst(|_, i| {
                if matches!(i.op, Op::Load(_)) {
                    loads += 1;
                }
            });
            loads
        };
        optimize(&mut k);
        let mut after = 0;
        k.for_each_inst(|_, i| {
            if matches!(i.op, Op::Load(_)) {
                after += 1;
            }
        });
        assert_eq!(after, before, "no load may be forwarded here:\n{k}");
    }

    #[test]
    fn uniform_address_stores_never_forward_per_lane_values() {
        // Every lane stores its tid to ONE address: the hardware keeps
        // a single winner (highest thread id), and the load broadcasts
        // it. Forwarding would hand each lane its own tid instead —
        // the store/load round trip must survive.
        let mut b = IrBuilder::new("t");
        let tid = b.tid();
        let zero = b.iconst(0);
        b.store(zero, 100, tid);
        let winner = b.load(zero, 100);
        b.store(tid, 200, winner);
        let mut k = b.finish();
        optimize(&mut k);
        let mut loads = 0;
        k.for_each_inst(|_, i| {
            if matches!(i.op, Op::Load(_)) {
                loads += 1;
            }
        });
        assert_eq!(loads, 1, "broadcast load must survive:\n{k}");
    }

    #[test]
    fn loop_bodies_do_not_forward_across_iterations() {
        // The body loads, bumps and stores the same cell: iteration i+1
        // must re-load what iteration i stored, so the load survives.
        let mut b = IrBuilder::new("t");
        let tid = b.tid();
        b.store(tid, 0, tid);
        b.begin_loop(4);
        let x = b.load(tid, 0);
        let one = b.iconst(1);
        let y = b.add(x, one);
        b.store(tid, 0, y);
        b.end_loop();
        let mut k = b.finish();
        optimize(&mut k);
        let mut loads = 0;
        k.for_each_inst(|_, i| {
            if matches!(i.op, Op::Load(_)) {
                loads += 1;
            }
        });
        assert_eq!(loads, 1, "loop-carried load must survive:\n{k}");
    }

    #[test]
    fn mul_add_chains_fuse_to_mad() {
        let mut b = IrBuilder::new("t");
        let tid = b.tid();
        let x = b.load(tid, 0);
        let y = b.load(tid, 64);
        let w = b.load(tid, 128);
        let p = b.mul(x, y);
        let z = b.add(p, w);
        b.store(tid, 256, z);
        let mut k = b.finish();
        let r = optimize(&mut k);
        let mut mads = 0;
        let mut muls = 0;
        k.for_each_inst(|_, i| match i.op {
            Op::Mad => mads += 1,
            Op::Bin(BinOp::Mul) => muls += 1,
            _ => {}
        });
        assert_eq!((mads, muls), (1, 0), "\n{k}");
        assert!(r.insts_after < r.insts_before);
    }

    #[test]
    fn mad_fusion_skips_consts_multi_use_and_masks() {
        let mut b = IrBuilder::new("t");
        let tid = b.tid();
        let x = b.load(tid, 0);
        let y = b.load(tid, 64);
        // Const multiply: stays muli + add.
        let c = b.iconst(3);
        let p1 = b.mul(x, c);
        let s1 = b.add(p1, y);
        b.store(tid, 128, s1);
        // Multi-use multiply: both uses keep it alive, no fusion.
        let p2 = b.mul(x, y);
        let s2 = b.add(p2, y);
        b.store(tid, 192, s2);
        b.store(tid, 200, p2);
        // Guarded add: write-mask semantics, no fusion.
        let zero = b.iconst(0);
        let g = b.cmp(CmpOp::Lt, tid, zero);
        let p3 = b.mul(x, y);
        b.guard_next(g, false);
        let s3 = b.add(p3, y);
        b.store(tid, 220, s3);
        let mut k = b.finish();
        optimize(&mut k);
        let mut mads = 0;
        k.for_each_inst(|_, i| {
            if matches!(i.op, Op::Mad) {
                mads += 1;
            }
        });
        assert_eq!(mads, 0, "\n{k}");
    }

    #[test]
    fn licm_hoists_invariant_work_out_of_loop_bodies() {
        // Per-iteration: a constant, an invariant multiply and an
        // invariant broadcast load (taps at a constant address the body
        // never stores over). All three must hoist; the carried update
        // and the store stay.
        let mut b = IrBuilder::new("t");
        let tid = b.tid();
        let zero = b.iconst(0);
        let p = b.begin_loop_carried(8, &[zero]);
        let c3 = b.iconst(3);
        let bias = b.mul(tid, c3); // invariant: tid and const defined outside
        let tap = b.load(zero, 2048); // broadcast, no aliasing store
        let t1 = b.add(bias, tap);
        let next = b.add(p[0], t1);
        let r = b.end_loop_carried(&[next]);
        b.store(tid, 64, r[0]);
        let mut k = b.finish();
        licm(&mut k);
        assert!(k.validate().is_ok(), "\n{k}");
        let loop_v = k
            .body()
            .iter()
            .copied()
            .find(|&v| matches!(k.inst(v).op, Op::Loop(_)))
            .unwrap();
        let body = k.inst(loop_v).body.clone().unwrap();
        assert!(
            !body.iter().any(|&v| matches!(k.inst(v).op, Op::Load(_))),
            "invariant load must hoist:\n{k}"
        );
        assert!(
            !body
                .iter()
                .any(|&v| matches!(k.inst(v).op, Op::Bin(BinOp::Mul))),
            "invariant multiply must hoist:\n{k}"
        );
        // t1 = bias + tap is invariant too and hoists on the same pass
        // (inner-first processing re-examines after each hoist round).
        let adds_in_body = body
            .iter()
            .filter(|&&v| matches!(k.inst(v).op, Op::Bin(BinOp::Add)))
            .count();
        assert_eq!(adds_in_body, 1, "only the carried update stays:\n{k}");
    }

    #[test]
    fn licm_keeps_loads_the_body_may_store_over() {
        // The body stores through tid: a tid-based load may alias it
        // and must stay put.
        let mut b = IrBuilder::new("t");
        let tid = b.tid();
        let zero = b.iconst(0);
        let p = b.begin_loop_carried(4, &[zero]);
        let x = b.load(tid, 0); // aliases the store below
        let next = b.add(p[0], x);
        b.store(tid, 0, next);
        let r = b.end_loop_carried(&[next]);
        b.store(tid, 64, r[0]);
        let mut k = b.finish();
        licm(&mut k);
        let loop_v = k
            .body()
            .iter()
            .copied()
            .find(|&v| matches!(k.inst(v).op, Op::Loop(_)))
            .unwrap();
        let body = k.inst(loop_v).body.clone().unwrap();
        assert!(
            body.iter().any(|&v| matches!(k.inst(v).op, Op::Load(_))),
            "aliasing load must stay in the body:\n{k}"
        );
    }

    #[test]
    fn licm_never_moves_masked_instructions() {
        let mut b = IrBuilder::new("t");
        let tid = b.tid();
        let c2 = b.iconst(2);
        let c3 = b.iconst(3);
        b.begin_loop(4);
        b.scale_next(1);
        let s = b.add(c2, c3); // invariant args, but thread-scaled
        b.store(tid, 0, s);
        b.end_loop();
        let mut k = b.finish();
        licm(&mut k);
        let loop_v = k
            .body()
            .iter()
            .copied()
            .find(|&v| matches!(k.inst(v).op, Op::Loop(_)))
            .unwrap();
        let body = k.inst(loop_v).body.clone().unwrap();
        assert!(
            body.iter()
                .any(|&v| matches!(k.inst(v).op, Op::Bin(BinOp::Add))),
            "scaled instruction must stay:\n{k}"
        );
    }

    #[test]
    fn scheduler_separates_loads_from_their_uses() {
        // Two independent ALU ops sit between the load's operand and
        // the load; the load must climb above both.
        let mut b = IrBuilder::new("t");
        let tid = b.tid();
        let a = b.add(tid, tid);
        let m = b.mul(tid, tid);
        let x = b.load(tid, 0);
        let s1 = b.add(x, a);
        let s2 = b.add(s1, m);
        b.store(tid, 64, s2);
        let mut k = b.finish();
        schedule_mem(&mut k);
        assert!(k.validate().is_ok(), "\n{k}");
        let pos = |needle: &Op| {
            k.body()
                .iter()
                .position(|&v| k.inst(v).op == *needle)
                .unwrap()
        };
        assert!(
            pos(&Op::Load(0)) < pos(&Op::Bin(BinOp::Add)),
            "load must hoist above the independent ALU ops:\n{k}"
        );
    }

    #[test]
    fn scheduler_clusters_equal_scale_stores() {
        // store / pure op / store (disjoint constant addresses): the
        // first store sinks to join the second.
        let mut b = IrBuilder::new("t");
        let tid = b.tid();
        let x = b.load(tid, 0);
        let zero = b.iconst(0);
        b.store(zero, 100, x);
        let y = b.mul(x, x);
        b.store(zero, 200, y);
        b.store(tid, 4096, y);
        let mut k = b.finish();
        schedule_mem(&mut k);
        assert!(k.validate().is_ok(), "\n{k}");
        let stores: Vec<usize> = k
            .body()
            .iter()
            .enumerate()
            .filter(|(_, &v)| matches!(k.inst(v).op, Op::Store(_)))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(
            stores[1] - stores[0],
            1,
            "first two stores must be adjacent:\n{k}"
        );
    }

    #[test]
    fn scheduler_respects_store_load_aliasing() {
        // Store then aliasing load: the load must NOT climb above it.
        let mut b = IrBuilder::new("t");
        let tid = b.tid();
        let x = b.load(tid, 0);
        b.store(tid, 64, x);
        let y = b.load(tid, 64); // reads what the store wrote
        b.store(tid, 128, y);
        let mut k = b.finish();
        schedule_mem(&mut k);
        let body = k.body().to_vec();
        let store_pos = body
            .iter()
            .position(|&v| k.inst(v).op == Op::Store(64))
            .unwrap();
        let load_pos = body
            .iter()
            .position(|&v| k.inst(v).op == Op::Load(64))
            .unwrap();
        assert!(store_pos < load_pos, "aliasing order must hold:\n{k}");
    }

    #[test]
    fn empty_loops_are_dead() {
        let mut b = IrBuilder::new("t");
        let tid = b.tid();
        b.begin_loop(5);
        let x = b.load(tid, 0);
        let _unused = b.add(x, x);
        b.end_loop();
        b.store(tid, 0, tid);
        let mut k = b.finish();
        optimize(&mut k);
        // The loop computed nothing observable: tid + store remain.
        assert_eq!(k.live_insts(), 2, "\n{k}");
    }
}
