//! The optimization pipeline: constant folding, strength reduction,
//! common-subexpression elimination, store-to-load forwarding,
//! `mad` fusion and dead-code elimination, with per-pass before/after
//! instruction counts.
//!
//! Frontends are encouraged to emit clear, mechanical IR (explicit
//! address arithmetic, one constant per use); these passes recover the
//! hand-scheduled form. Constant evaluation reproduces the datapath
//! semantics bit-for-bit (wrapping adds, the shifter's ≥32 behaviour,
//! saturation), so folding can never change a kernel's output.

use crate::ir::{BinOp, Kernel, Op, UnOp, ValueId};
use std::collections::HashMap;

/// Before/after instruction counts of one pass invocation.
#[derive(Debug, Clone)]
pub struct PassStats {
    /// Pass name.
    pub pass: &'static str,
    /// Live IR instructions before the pass ran.
    pub insts_before: usize,
    /// Live IR instructions after.
    pub insts_after: usize,
    /// Whether the pass rewrote anything (folds and CSE aliasing change
    /// instructions in place; the count only drops at the next DCE).
    pub changed: bool,
}

/// What the whole pipeline did to a kernel.
#[derive(Debug, Clone, Default)]
pub struct PipelineReport {
    /// Every pass invocation, in execution order (the pipeline iterates
    /// to a fixpoint, so passes appear once per round).
    pub passes: Vec<PassStats>,
    /// Live IR instructions before the pipeline.
    pub insts_before: usize,
    /// Live IR instructions after.
    pub insts_after: usize,
}

impl PipelineReport {
    /// Fractional instruction-count reduction (0 when nothing shrank).
    pub fn reduction(&self) -> f64 {
        if self.insts_before == 0 {
            0.0
        } else {
            1.0 - self.insts_after as f64 / self.insts_before as f64
        }
    }
}

/// A pass: rewrites the kernel in place, reports whether it changed it.
type Pass = fn(&mut Kernel) -> bool;

/// Run the full pipeline to a fixpoint (bounded) and report per-pass
/// statistics.
pub fn optimize(k: &mut Kernel) -> PipelineReport {
    let mut report = PipelineReport {
        insts_before: k.live_insts(),
        ..Default::default()
    };
    let passes: &[(&'static str, Pass)] = &[
        ("const-fold", const_fold),
        ("strength-reduce", strength_reduce),
        ("cse", cse),
        ("store-forward", forward_stores),
        ("mad-fuse", mad_fuse),
        ("dce", dce),
    ];
    for _round in 0..8 {
        let mut any = false;
        for &(name, pass) in passes {
            let before = k.live_insts();
            let changed = pass(k);
            report.passes.push(PassStats {
                pass: name,
                insts_before: before,
                insts_after: k.live_insts(),
                changed,
            });
            any |= changed;
        }
        if !any {
            break;
        }
    }
    report.insts_after = k.live_insts();
    report
}

// ---- bit-exact constant evaluation (mirrors `simt_core::alu`) ---------

pub(crate) fn eval_bin(op: BinOp, a: u32, b: u32) -> u32 {
    match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => (a as i32).wrapping_mul(b as i32) as u32,
        BinOp::MulHi => (((a as i32 as i64).wrapping_mul(b as i32 as i64)) >> 32) as u32,
        BinOp::MulUHi => (((a as u64).wrapping_mul(b as u64)) >> 32) as u32,
        BinOp::Min => (a as i32).min(b as i32) as u32,
        BinOp::Max => (a as i32).max(b as i32) as u32,
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => {
            if b >= 32 {
                0
            } else {
                a << b
            }
        }
        BinOp::Lsr => {
            if b >= 32 {
                0
            } else {
                a >> b
            }
        }
        BinOp::Asr => {
            if b >= 32 {
                ((a as i32) >> 31) as u32
            } else {
                ((a as i32) >> b) as u32
            }
        }
        BinOp::SatAdd => (a as i32).saturating_add(b as i32) as u32,
        BinOp::SatSub => (a as i32).saturating_sub(b as i32) as u32,
    }
}

pub(crate) fn eval_un(op: UnOp, a: u32) -> u32 {
    match op {
        UnOp::Abs => (a as i32).wrapping_abs() as u32,
        UnOp::Neg => (a as i32).wrapping_neg() as u32,
        UnOp::Not => !a,
        UnOp::Cnot => (a == 0) as u32,
        UnOp::Popc => a.count_ones(),
        UnOp::Clz => a.leading_zeros(),
        UnOp::Brev => a.reverse_bits(),
    }
}

// ---- constant folding -------------------------------------------------

/// Evaluate instructions whose operands are all constants, and apply
/// algebraic identities (`x+0`, `x*1`, `x*0`, `x|0`, `x^0`, `x&-1`,
/// shifts by zero). Guarded instructions are left alone: a guard is a
/// write mask, and masked lanes must keep seeing no write.
pub fn const_fold(k: &mut Kernel) -> bool {
    let mut replace: HashMap<ValueId, ValueId> = HashMap::new();
    let mut changed = false;
    let root = k.body().to_vec();
    fold_region(k, &root, &mut replace, &mut changed);
    changed
}

fn rewrite_args(k: &mut Kernel, v: ValueId, replace: &HashMap<ValueId, ValueId>) {
    let inst = k.inst_mut(v);
    for a in inst.args.iter_mut() {
        if let Some(&r) = replace.get(a) {
            *a = r;
        }
    }
    if let Some(g) = &mut inst.guard {
        if let Some(&r) = replace.get(&g.pred) {
            g.pred = r;
        }
    }
}

fn fold_region(
    k: &mut Kernel,
    region: &[ValueId],
    replace: &mut HashMap<ValueId, ValueId>,
    changed: &mut bool,
) {
    for &v in region {
        rewrite_args(k, v, replace);
        if let Some(body) = k.inst_mut(v).body.take() {
            fold_region(k, &body, replace, changed);
            k.inst_mut(v).body = Some(body);
            continue;
        }
        // A guard is a write mask and a scale is a lane mask: folding
        // either away would make inactive lanes observe a value they
        // never computed (their register keeps its prior contents), so
        // masked instructions are left exactly as written.
        if k.inst(v).guard.is_some() || k.inst(v).scale.is_some() {
            continue;
        }
        let (op, args) = {
            let i = k.inst(v);
            (i.op.clone(), i.args.clone())
        };
        let consts: Vec<Option<i32>> = args.iter().map(|&a| k.as_const(a)).collect();
        let all = |c: &[Option<i32>]| c.iter().all(|x| x.is_some());
        // Full evaluation.
        let folded: Option<u32> = match (&op, consts.as_slice()) {
            (Op::Bin(b), [Some(x), Some(y)]) if all(&consts) => {
                Some(eval_bin(*b, *x as u32, *y as u32))
            }
            (Op::Un(u), [Some(x)]) => Some(eval_un(*u, *x as u32)),
            (Op::Mad, [Some(x), Some(y), Some(z)]) => {
                Some(eval_bin(BinOp::Mul, *x as u32, *y as u32).wrapping_add(*z as u32))
            }
            (Op::MulShr(s), [Some(x), Some(y)]) => {
                Some((((*x as i64).wrapping_mul(*y as i64)) >> (s & 63)) as u32)
            }
            (Op::ShAdd(s), [Some(x), Some(y)]) => {
                Some(eval_bin(BinOp::Shl, *x as u32, s & 31).wrapping_add(*y as u32))
            }
            _ => None,
        };
        if let Some(val) = folded {
            let inst = k.inst_mut(v);
            inst.op = Op::Const(val as i32);
            inst.args.clear();
            *changed = true;
            continue;
        }
        // Algebraic identities aliasing the result to an operand.
        let alias: Option<ValueId> = match (&op, consts.as_slice()) {
            (Op::Bin(BinOp::Add), [_, Some(0)]) | (Op::Bin(BinOp::Sub), [_, Some(0)]) => {
                Some(args[0])
            }
            (Op::Bin(BinOp::Add), [Some(0), _]) => Some(args[1]),
            (Op::Bin(BinOp::Mul), [_, Some(1)]) => Some(args[0]),
            (Op::Bin(BinOp::Mul), [Some(1), _]) => Some(args[1]),
            (Op::Bin(BinOp::Or), [_, Some(0)]) | (Op::Bin(BinOp::Xor), [_, Some(0)]) => {
                Some(args[0])
            }
            (Op::Bin(BinOp::Or), [Some(0), _]) | (Op::Bin(BinOp::Xor), [Some(0), _]) => {
                Some(args[1])
            }
            (Op::Bin(BinOp::And), [_, Some(-1)]) => Some(args[0]),
            (Op::Bin(BinOp::And), [Some(-1), _]) => Some(args[1]),
            (Op::Bin(BinOp::Shl), [_, Some(0)])
            | (Op::Bin(BinOp::Lsr), [_, Some(0)])
            | (Op::Bin(BinOp::Asr), [_, Some(0)]) => Some(args[0]),
            _ => None,
        };
        if let Some(target) = alias {
            replace.insert(v, target);
            *changed = true;
            continue;
        }
        // Annihilators producing a fresh constant.
        let zero = matches!(
            (&op, consts.as_slice()),
            (Op::Bin(BinOp::Mul), [_, Some(0)])
                | (Op::Bin(BinOp::Mul), [Some(0), _])
                | (Op::Bin(BinOp::And), [_, Some(0)])
                | (Op::Bin(BinOp::And), [Some(0), _])
        );
        if zero {
            let inst = k.inst_mut(v);
            inst.op = Op::Const(0);
            inst.args.clear();
            *changed = true;
        }
    }
}

// ---- strength reduction ----------------------------------------------

/// Rewrite expensive forms into cheaper datapath ops:
///
/// * `mul` by a power-of-two constant becomes a left shift through the
///   integrated multiplicative (barrel-replacement) shifter — same DSP
///   column, but eligible for the immediate `shli` form;
/// * address adds feeding a load/store base are folded into the
///   instruction's 16-bit offset field (`lds rd, [ra+imm]`), the
///   addressing mode the hand-written kernels use.
pub fn strength_reduce(k: &mut Kernel) -> bool {
    let mut changed = false;
    let mut new_consts: Vec<(i32, ValueId)> = Vec::new();
    let root = k.body().to_vec();
    reduce_region(k, &root, &mut new_consts, &mut changed);
    // Materialized shift-amount constants dominate everything from the
    // top of the root region.
    for (i, (_, v)) in new_consts.iter().enumerate() {
        k.body.insert(i, *v);
    }
    changed
}

fn strength_const(k: &mut Kernel, pool: &mut Vec<(i32, ValueId)>, val: i32) -> ValueId {
    if let Some((_, v)) = pool.iter().find(|(c, _)| *c == val) {
        return *v;
    }
    let v = k.append_inst(Op::Const(val), vec![]);
    pool.push((val, v));
    v
}

fn reduce_region(
    k: &mut Kernel,
    region: &[ValueId],
    pool: &mut Vec<(i32, ValueId)>,
    changed: &mut bool,
) {
    for &v in region {
        if let Some(body) = k.inst_mut(v).body.take() {
            reduce_region(k, &body, pool, changed);
            k.inst_mut(v).body = Some(body);
            continue;
        }
        let (op, args) = {
            let i = k.inst(v);
            (i.op.clone(), i.args.clone())
        };
        match op {
            // mul by 2^k -> shl by k (the in-place rewrite keeps any
            // scale/guard attributes, so masking semantics are intact).
            Op::Bin(BinOp::Mul) => {
                let (x, c) = match (k.as_const(args[0]), k.as_const(args[1])) {
                    (_, Some(c)) => (args[0], Some(c)),
                    (Some(c), _) => (args[1], Some(c)),
                    _ => (args[0], None),
                };
                if let Some(c) = c {
                    if c > 1 && (c as u32).is_power_of_two() {
                        let sh = strength_const(k, pool, c.trailing_zeros() as i32);
                        let inst = k.inst_mut(v);
                        inst.op = Op::Bin(BinOp::Shl);
                        inst.args = vec![x, sh];
                        *changed = true;
                    }
                }
            }
            // lds/sts base = add(x, const) -> fold into the offset field.
            // Only for unmasked adds: a guarded or scaled address add
            // leaves inactive lanes with a different base register, so
            // folding it would change the address those lanes access.
            Op::Load(off) | Op::Store(off) => {
                let base = args[0];
                let base_inst = k.inst(base);
                if base_inst.guard.is_some() || base_inst.scale.is_some() {
                    continue;
                }
                if let Op::Bin(BinOp::Add) = base_inst.op {
                    let (ba, bb) = (base_inst.args[0], base_inst.args[1]);
                    let folded = match (k.as_const(ba), k.as_const(bb)) {
                        (_, Some(c)) => Some((ba, c)),
                        (Some(c), _) => Some((bb, c)),
                        _ => None,
                    };
                    if let Some((x, c)) = folded {
                        let new_off = off as i64 + c as i64;
                        if (0..=0xFFFF).contains(&new_off) {
                            let inst = k.inst_mut(v);
                            inst.args[0] = x;
                            inst.op = match inst.op {
                                Op::Load(_) => Op::Load(new_off as u32),
                                Op::Store(_) => Op::Store(new_off as u32),
                                _ => unreachable!(),
                            };
                            *changed = true;
                        }
                    }
                }
            }
            _ => {}
        }
    }
}

// ---- common-subexpression elimination ---------------------------------

/// Value-numbering key: op, operands and thread scale.
type CseKey = (Op, Vec<ValueId>, Option<u8>);

/// Dominator-scoped value numbering over pure, guard-free instructions:
/// two instructions with the same op, operands and thread scale compute
/// the same value, so later ones alias the first. Memory operations are
/// never merged.
pub fn cse(k: &mut Kernel) -> bool {
    let mut scopes: Vec<HashMap<CseKey, ValueId>> = vec![HashMap::new()];
    let mut replace: HashMap<ValueId, ValueId> = HashMap::new();
    let mut changed = false;

    fn walk(
        k: &mut Kernel,
        region: &[ValueId],
        scopes: &mut Vec<HashMap<CseKey, ValueId>>,
        replace: &mut HashMap<ValueId, ValueId>,
        changed: &mut bool,
    ) {
        for &v in region {
            rewrite_args(k, v, replace);
            if let Some(body) = k.inst_mut(v).body.take() {
                scopes.push(HashMap::new());
                walk(k, &body, scopes, replace, changed);
                scopes.pop();
                k.inst_mut(v).body = Some(body);
                continue;
            }
            let inst = k.inst(v);
            if !inst.op.is_pure() || inst.guard.is_some() {
                continue;
            }
            let key = (inst.op.clone(), inst.args.clone(), inst.scale);
            if let Some(&prior) = scopes.iter().rev().find_map(|s| s.get(&key)) {
                replace.insert(v, prior);
                *changed = true;
            } else {
                scopes.last_mut().expect("scope stack").insert(key, v);
            }
        }
    }

    let root = k.body().to_vec();
    walk(k, &root, &mut scopes, &mut replace, &mut changed);
    changed
}

// ---- store-to-load forwarding -----------------------------------------

/// Forwarding state: `(base value, offset)` → last value stored there.
type AvailMap = HashMap<(ValueId, u32), ValueId>;

/// Invalidate every entry a store to `(base, off)` may clobber. Two
/// accesses with the same base alias exactly when their offsets match;
/// accesses with *different* base values may still hit the same address
/// (e.g. `tid` vs `tid + k`), so they are conservatively killed.
fn clobber(avail: &mut AvailMap, base: ValueId, off: u32) {
    avail.retain(|&(b, o), _| b == base && o != off);
}

/// Collect every `(base, off)` a region (and its nested loops) stores
/// to, for parent-scope invalidation after a loop body.
fn region_store_keys(k: &Kernel, region: &[ValueId], keys: &mut Vec<(ValueId, u32)>) {
    for &v in region {
        let inst = k.inst(v);
        if let Op::Store(off) = inst.op {
            keys.push((inst.args[0], off));
        }
        if let Some(body) = &inst.body {
            region_store_keys(k, body, keys);
        }
    }
}

/// Replace loads that provably re-read a value just stored at the same
/// `(base, offset)` with the stored value itself — the round trip
/// through shared memory becomes a register move the next DCE deletes.
/// This is what turns a fused kernel chain's store/load handoff into a
/// direct SSA def-use edge. Masked (guarded or scaled) loads are left
/// alone — their inactive lanes keep the old register contents — and
/// masked stores only invalidate (a partial write forwards nothing).
/// Only stores through a lane-unique base (`tid + constant`, see
/// [`crate::analysis::lane_unique_base`]) are forwardable at all: a
/// uniform-address store collapses all lanes to one winning value that
/// a later load broadcasts, which per-lane forwarding would not
/// reproduce.
pub fn forward_stores(k: &mut Kernel) -> bool {
    let mut replace: HashMap<ValueId, ValueId> = HashMap::new();
    let mut changed = false;

    fn walk(
        k: &mut Kernel,
        region: &[ValueId],
        avail: &mut AvailMap,
        replace: &mut HashMap<ValueId, ValueId>,
        changed: &mut bool,
    ) {
        for &v in region {
            rewrite_args(k, v, replace);
            if let Some(body) = k.inst_mut(v).body.take() {
                // A loop body re-executes: values stored before the loop
                // are only safe to forward inside it when the body never
                // clobbers them — start the body with an empty map and
                // kill parent entries the body stores over.
                let mut inner = AvailMap::new();
                walk(k, &body, &mut inner, replace, changed);
                let mut keys = Vec::new();
                region_store_keys(k, &body, &mut keys);
                for (b, o) in keys {
                    clobber(avail, b, o);
                }
                k.inst_mut(v).body = Some(body);
                continue;
            }
            let inst = k.inst(v);
            match inst.op {
                Op::Store(off) => {
                    let base = inst.args[0];
                    let value = inst.args[1];
                    let masked = inst.guard.is_some() || inst.scale.is_some();
                    clobber(avail, base, off);
                    if !masked && crate::analysis::lane_unique_base(k, base) {
                        avail.insert((base, off), value);
                    }
                }
                Op::Load(off) if inst.guard.is_none() && inst.scale.is_none() => {
                    if let Some(&stored) = avail.get(&(inst.args[0], off)) {
                        replace.insert(v, stored);
                        *changed = true;
                    }
                }
                _ => {}
            }
        }
    }

    let root = k.body().to_vec();
    let mut avail = AvailMap::new();
    walk(k, &root, &mut avail, &mut replace, &mut changed);
    changed
}

// ---- mad fusion -------------------------------------------------------

/// Fuse `mul` → `add` chains into the DSP column's single `mad`
/// instruction: an unmasked add with one operand produced by an
/// unmasked, single-use, register-register multiply becomes
/// `mad(a, b, other)`; the multiply dies at the next DCE. Constant
/// operands are excluded on both sides — they would lower to the
/// immediate forms (`muli`/`addi`) anyway, and a `mad` would force a
/// `movi` that erases the win.
pub fn mad_fuse(k: &mut Kernel) -> bool {
    // Global use counts (args + guards) decide single-use multiplies.
    let mut uses: HashMap<ValueId, usize> = HashMap::new();
    k.for_each_inst(|_, inst| {
        for &a in &inst.args {
            *uses.entry(a).or_default() += 1;
        }
        if let Some(g) = inst.guard {
            *uses.entry(g.pred).or_default() += 1;
        }
    });

    let mut rewrites: Vec<(ValueId, [ValueId; 3])> = Vec::new();
    k.for_each_inst(|v, inst| {
        if inst.op != Op::Bin(BinOp::Add) || inst.guard.is_some() || inst.scale.is_some() {
            return;
        }
        for (slot, &m) in inst.args.iter().enumerate() {
            let other = inst.args[1 - slot];
            if m == other {
                continue; // add(m, m): the mul has two uses here
            }
            let mi = k.inst(m);
            let fusible = mi.op == Op::Bin(BinOp::Mul)
                && mi.guard.is_none()
                && mi.scale.is_none()
                && uses.get(&m) == Some(&1)
                && k.as_const(mi.args[0]).is_none()
                && k.as_const(mi.args[1]).is_none()
                && k.as_const(other).is_none();
            if fusible {
                rewrites.push((v, [mi.args[0], mi.args[1], other]));
                break;
            }
        }
    });

    let changed = !rewrites.is_empty();
    for (v, args) in rewrites {
        let inst = k.inst_mut(v);
        inst.op = Op::Mad;
        inst.args = args.to_vec();
    }
    changed
}

// ---- dead-store elision (fusion support) ------------------------------

/// Remove root-region stores into declared dead ranges — shared-memory
/// windows a fused kernel's caller has proven nothing downstream reads
/// (the intermediate buffers of a fused launch chain). A store goes only
/// when its address range resolves (see [`crate::analysis`]), lies
/// inside one dead range, and no later load in the kernel may read any
/// part of that range. Returns the number of stores removed.
///
/// This is not part of [`optimize`]: dead ranges are an *external* fact
/// about the launch graph, not derivable from the kernel alone.
pub fn elide_stores(k: &mut Kernel, dead: &[(usize, usize)], threads: usize) -> usize {
    use crate::analysis::{access_range, ranges_intersect};

    // Pre-order index of every instruction (matches execution order:
    // a loop body sits at its header's position, repeated).
    let mut index: HashMap<ValueId, usize> = HashMap::new();
    let mut loads: Vec<(usize, Option<(usize, usize)>)> = Vec::new();
    {
        let mut i = 0usize;
        k.for_each_inst(|v, inst| {
            index.insert(v, i);
            if let Op::Load(off) = inst.op {
                loads.push((i, access_range(k, inst.args[0], off, threads)));
            }
            i += 1;
        });
    }

    let root = k.body().to_vec();
    let mut remove: Vec<ValueId> = Vec::new();
    for &v in &root {
        let inst = k.inst(v);
        let Op::Store(off) = inst.op else { continue };
        let Some(range) = access_range(k, inst.args[0], off, threads) else {
            continue;
        };
        if !dead.iter().any(|&(lo, hi)| lo <= range.0 && range.1 <= hi) {
            continue;
        }
        let pos = index[&v];
        let read_later = loads
            .iter()
            .any(|&(p, r)| p > pos && r.is_none_or(|r| ranges_intersect(r, range)));
        if !read_later {
            remove.push(v);
        }
    }
    let removed = remove.len();
    k.body.retain(|v| !remove.contains(v));
    removed
}

// ---- dead-code elimination --------------------------------------------

/// Remove instructions whose results are never used. Stores are the
/// roots of liveness (a kernel's output is its memory effects); loops
/// survive only if their bodies contain a live store; unused loads are
/// removed (they have no memory effect, only a cycle cost).
pub fn dce(k: &mut Kernel) -> bool {
    use std::collections::HashSet;

    fn effectful(k: &Kernel, v: ValueId) -> bool {
        let inst = k.inst(v);
        match &inst.op {
            Op::Store(_) => true,
            Op::Loop(_) => inst
                .body
                .as_ref()
                .is_some_and(|b| b.iter().any(|&c| effectful(k, c))),
            _ => false,
        }
    }

    // Mark phase: everything an effectful instruction (transitively)
    // reads, plus the effectful instructions themselves. Loops are kept
    // by `effectful` rather than marking, so any guard predicate they
    // carry must be traced explicitly or its defining compare would be
    // swept out from under a still-live loop.
    let mut marked: HashSet<ValueId> = HashSet::new();
    let mut work: Vec<ValueId> = Vec::new();
    let mut loop_guards: Vec<(ValueId, ValueId)> = Vec::new();
    k.for_each_inst(|v, inst| {
        if matches!(inst.op, Op::Store(_)) {
            work.push(v);
        }
        if matches!(inst.op, Op::Loop(_)) {
            if let Some(g) = inst.guard {
                loop_guards.push((v, g.pred));
            }
        }
    });
    for (v, pred) in loop_guards {
        if effectful(k, v) {
            work.push(pred);
        }
    }
    while let Some(v) = work.pop() {
        if !marked.insert(v) {
            continue;
        }
        let inst = k.inst(v);
        work.extend(inst.args.iter().copied());
        if let Some(g) = inst.guard {
            work.push(g.pred);
        }
    }

    // Sweep phase: rebuild regions keeping marked or effectful nodes.
    fn sweep(k: &mut Kernel, region: Vec<ValueId>, marked: &HashSet<ValueId>) -> Vec<ValueId> {
        let mut out = Vec::with_capacity(region.len());
        for v in region {
            let keep = marked.contains(&v) || effectful(k, v);
            if !keep {
                continue;
            }
            if let Some(body) = k.inst_mut(v).body.take() {
                let swept = sweep(k, body, marked);
                k.inst_mut(v).body = Some(swept);
            }
            out.push(v);
        }
        out
    }

    let before = k.live_insts();
    let root = std::mem::take(&mut k.body);
    k.body = sweep(k, root, &marked);
    k.live_insts() != before
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{CmpOp, IrBuilder};

    #[test]
    fn folds_constant_expressions() {
        let mut b = IrBuilder::new("t");
        let tid = b.tid();
        let c2 = b.iconst(20);
        let c3 = b.iconst(3);
        let s = b.add(c2, c3); // 23
        b.store(tid, 0, s);
        let mut k = b.finish();
        let r = optimize(&mut k);
        // tid, const 23, store.
        assert_eq!(k.live_insts(), 3, "\n{k}");
        assert!(r.insts_after < r.insts_before);
        let stored = k.inst(k.body()[k.body().len() - 1]).args[1];
        assert_eq!(k.as_const(stored), Some(23));
    }

    #[test]
    fn identities_and_dce() {
        let mut b = IrBuilder::new("t");
        let tid = b.tid();
        let x = b.load(tid, 0);
        let z = b.iconst(0);
        let y = b.add(x, z); // x + 0 -> x
        let dead = b.mul(x, x); // unused
        let _ = dead;
        b.store(tid, 8, y);
        let mut k = b.finish();
        optimize(&mut k);
        // tid, load, store survive.
        assert_eq!(k.live_insts(), 3, "\n{k}");
    }

    #[test]
    fn mul_by_power_of_two_becomes_shift() {
        let mut b = IrBuilder::new("t");
        let tid = b.tid();
        let x = b.load(tid, 0);
        let c8 = b.iconst(8);
        let y = b.mul(x, c8);
        b.store(tid, 4, y);
        let mut k = b.finish();
        optimize(&mut k);
        let mut saw_shift = false;
        k.for_each_inst(|_, inst| {
            assert!(!matches!(inst.op, Op::Bin(BinOp::Mul)), "mul survived");
            if let Op::Bin(BinOp::Shl) = inst.op {
                saw_shift = true;
            }
        });
        assert!(saw_shift);
    }

    #[test]
    fn folding_matches_hardware_shift_semantics() {
        // Shifts >= 32 flush to zero / sign, exactly as the shifter does.
        assert_eq!(eval_bin(BinOp::Shl, 1, 32), 0);
        assert_eq!(eval_bin(BinOp::Lsr, 0xFFFF_FFFF, 40), 0);
        assert_eq!(eval_bin(BinOp::Asr, 0x8000_0000, 40), 0xFFFF_FFFF);
        assert_eq!(eval_bin(BinOp::SatAdd, i32::MAX as u32, 1), i32::MAX as u32);
        assert_eq!(eval_un(UnOp::Abs, i32::MIN as u32), i32::MIN as u32);
    }

    #[test]
    fn cse_merges_address_math_but_not_loads() {
        let mut b = IrBuilder::new("t");
        let tid = b.tid();
        let c = b.iconst(100);
        let a1 = b.add(tid, c);
        let c2 = b.iconst(100);
        let a2 = b.add(tid, c2); // same address, separately built
        let l1 = b.load(a1, 0);
        let l2 = b.load(a2, 0); // loads must NOT merge
        let s = b.add(l1, l2);
        b.store(tid, 0, s);
        let mut k = b.finish();
        cse(&mut k);
        dce(&mut k);
        let mut loads = 0;
        let mut adds = 0;
        k.for_each_inst(|_, inst| match inst.op {
            Op::Load(_) => loads += 1,
            Op::Bin(BinOp::Add) => adds += 1,
            _ => {}
        });
        assert_eq!(loads, 2);
        assert_eq!(adds, 2, "\n{k}"); // one address add + the sum
    }

    #[test]
    fn addressing_fold_moves_adds_into_offsets() {
        let mut b = IrBuilder::new("t");
        let tid = b.tid();
        let c = b.iconst(1024);
        let addr = b.add(tid, c);
        let x = b.load(addr, 0);
        b.store(addr, 2048, x);
        let mut k = b.finish();
        optimize(&mut k);
        let mut offs = Vec::new();
        k.for_each_inst(|_, inst| match inst.op {
            Op::Load(o) | Op::Store(o) => offs.push(o),
            Op::Bin(BinOp::Add) => panic!("address add survived:\n{inst:?}"),
            _ => {}
        });
        assert_eq!(offs, vec![1024, 3072]);
    }

    #[test]
    fn guarded_instructions_are_not_folded_or_merged() {
        let mut b = IrBuilder::new("t");
        let tid = b.tid();
        let c0 = b.iconst(0);
        let p = b.cmp(CmpOp::Lt, tid, c0);
        b.guard_next(p, false);
        let g1 = b.add(tid, c0); // guarded: may not alias to tid
        b.guard_next(p, false);
        let g2 = b.add(tid, c0); // identical but guarded: no CSE
        let s = b.add(g1, g2);
        b.store(tid, 0, s);
        let mut k = b.finish();
        optimize(&mut k);
        let mut guarded_adds = 0;
        k.for_each_inst(|_, inst| {
            if inst.guard.is_some() && matches!(inst.op, Op::Bin(BinOp::Add)) {
                guarded_adds += 1;
            }
        });
        assert_eq!(guarded_adds, 2, "\n{k}");
    }

    #[test]
    fn scaled_instructions_are_never_folded() {
        // A thread scale is a lane mask: folding a scaled const add to
        // an unscaled constant would make inactive lanes observe a
        // value they never computed. The scaled add must survive.
        let mut b = IrBuilder::new("t");
        let tid = b.tid();
        let c2 = b.iconst(2);
        let c3 = b.iconst(3);
        b.scale_next(1);
        let v = b.add(c2, c3);
        b.store(tid, 0, v);
        let mut k = b.finish();
        optimize(&mut k);
        let mut scaled_add = None;
        k.for_each_inst(|_, inst| {
            if matches!(inst.op, Op::Bin(BinOp::Add)) {
                scaled_add = inst.scale;
            }
        });
        assert_eq!(scaled_add, Some(1), "\n{k}");
    }

    #[test]
    fn stores_forward_into_matching_loads() {
        // store then load at the same (base, offset): the round trip
        // collapses to the stored value, and DCE sweeps both the load
        // and (here) nothing else — the store's effect remains.
        let mut b = IrBuilder::new("t");
        let tid = b.tid();
        let x = b.load(tid, 0);
        b.store(tid, 64, x);
        let y = b.load(tid, 64); // forwards to x
        let z = b.add(y, y);
        b.store(tid, 128, z);
        let mut k = b.finish();
        optimize(&mut k);
        let mut loads = 0;
        k.for_each_inst(|_, inst| {
            if matches!(inst.op, Op::Load(_)) {
                loads += 1;
            }
        });
        assert_eq!(loads, 1, "round-trip load must be forwarded:\n{k}");
    }

    #[test]
    fn forwarding_respects_clobbers_and_masks() {
        let mut b = IrBuilder::new("t");
        let tid = b.tid();
        let x = b.load(tid, 0);
        b.store(tid, 64, x);
        // An intervening store through a *different* base may alias.
        let other = b.load(tid, 1);
        b.store(other, 64, x);
        let y = b.load(tid, 64); // must NOT forward
        b.store(tid, 128, y);
        // A scaled load never forwards (inactive lanes keep old regs).
        b.store(tid, 256, x);
        b.scale_next(1);
        let s = b.load(tid, 256);
        b.store(tid, 300, s);
        let mut k = b.finish();
        let before = {
            let mut loads = 0;
            k.for_each_inst(|_, i| {
                if matches!(i.op, Op::Load(_)) {
                    loads += 1;
                }
            });
            loads
        };
        optimize(&mut k);
        let mut after = 0;
        k.for_each_inst(|_, i| {
            if matches!(i.op, Op::Load(_)) {
                after += 1;
            }
        });
        assert_eq!(after, before, "no load may be forwarded here:\n{k}");
    }

    #[test]
    fn uniform_address_stores_never_forward_per_lane_values() {
        // Every lane stores its tid to ONE address: the hardware keeps
        // a single winner (highest thread id), and the load broadcasts
        // it. Forwarding would hand each lane its own tid instead —
        // the store/load round trip must survive.
        let mut b = IrBuilder::new("t");
        let tid = b.tid();
        let zero = b.iconst(0);
        b.store(zero, 100, tid);
        let winner = b.load(zero, 100);
        b.store(tid, 200, winner);
        let mut k = b.finish();
        optimize(&mut k);
        let mut loads = 0;
        k.for_each_inst(|_, i| {
            if matches!(i.op, Op::Load(_)) {
                loads += 1;
            }
        });
        assert_eq!(loads, 1, "broadcast load must survive:\n{k}");
    }

    #[test]
    fn loop_bodies_do_not_forward_across_iterations() {
        // The body loads, bumps and stores the same cell: iteration i+1
        // must re-load what iteration i stored, so the load survives.
        let mut b = IrBuilder::new("t");
        let tid = b.tid();
        b.store(tid, 0, tid);
        b.begin_loop(4);
        let x = b.load(tid, 0);
        let one = b.iconst(1);
        let y = b.add(x, one);
        b.store(tid, 0, y);
        b.end_loop();
        let mut k = b.finish();
        optimize(&mut k);
        let mut loads = 0;
        k.for_each_inst(|_, i| {
            if matches!(i.op, Op::Load(_)) {
                loads += 1;
            }
        });
        assert_eq!(loads, 1, "loop-carried load must survive:\n{k}");
    }

    #[test]
    fn mul_add_chains_fuse_to_mad() {
        let mut b = IrBuilder::new("t");
        let tid = b.tid();
        let x = b.load(tid, 0);
        let y = b.load(tid, 64);
        let w = b.load(tid, 128);
        let p = b.mul(x, y);
        let z = b.add(p, w);
        b.store(tid, 256, z);
        let mut k = b.finish();
        let r = optimize(&mut k);
        let mut mads = 0;
        let mut muls = 0;
        k.for_each_inst(|_, i| match i.op {
            Op::Mad => mads += 1,
            Op::Bin(BinOp::Mul) => muls += 1,
            _ => {}
        });
        assert_eq!((mads, muls), (1, 0), "\n{k}");
        assert!(r.insts_after < r.insts_before);
    }

    #[test]
    fn mad_fusion_skips_consts_multi_use_and_masks() {
        let mut b = IrBuilder::new("t");
        let tid = b.tid();
        let x = b.load(tid, 0);
        let y = b.load(tid, 64);
        // Const multiply: stays muli + add.
        let c = b.iconst(3);
        let p1 = b.mul(x, c);
        let s1 = b.add(p1, y);
        b.store(tid, 128, s1);
        // Multi-use multiply: both uses keep it alive, no fusion.
        let p2 = b.mul(x, y);
        let s2 = b.add(p2, y);
        b.store(tid, 192, s2);
        b.store(tid, 200, p2);
        // Guarded add: write-mask semantics, no fusion.
        let zero = b.iconst(0);
        let g = b.cmp(CmpOp::Lt, tid, zero);
        let p3 = b.mul(x, y);
        b.guard_next(g, false);
        let s3 = b.add(p3, y);
        b.store(tid, 220, s3);
        let mut k = b.finish();
        optimize(&mut k);
        let mut mads = 0;
        k.for_each_inst(|_, i| {
            if matches!(i.op, Op::Mad) {
                mads += 1;
            }
        });
        assert_eq!(mads, 0, "\n{k}");
    }

    #[test]
    fn empty_loops_are_dead() {
        let mut b = IrBuilder::new("t");
        let tid = b.tid();
        b.begin_loop(5);
        let x = b.load(tid, 0);
        let _unused = b.add(x, x);
        b.end_loop();
        b.store(tid, 0, tid);
        let mut k = b.finish();
        optimize(&mut k);
        // The loop computed nothing observable: tid + store remain.
        assert_eq!(k.live_insts(), 2, "\n{k}");
    }
}
