//! Typed compilation errors.

use simt_core::ConfigError;
use simt_isa::IsaError;
use std::fmt;

/// Anything that can go wrong turning a [`crate::Kernel`] into a
/// [`simt_isa::Program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The IR is structurally invalid (arity, types, dominance, ranges).
    Malformed {
        /// Offending value id.
        value: u32,
        /// What is wrong with it.
        detail: String,
    },
    /// The kernel needs more general-purpose registers than the
    /// configured register file provides. Spilling is not an option on
    /// this machine — the register file is a fixed M20K structure — so
    /// exhaustion is a hard, typed failure.
    OutOfRegisters {
        /// Registers the allocator needed at the high-water mark.
        needed: usize,
        /// Registers the configuration provides (r0 is reserved).
        available: usize,
    },
    /// More than the four architectural predicate registers are live at
    /// once.
    OutOfPredicates {
        /// Predicates live at the high-water mark.
        needed: usize,
    },
    /// The kernel uses predicates but the processor configuration was
    /// built without the (≈ +50 % logic) predicate option.
    PredicatesDisabled,
    /// The kernel nests hardware loops deeper than the configured loop
    /// stack. Caught at compile time so the failure is typed instead of
    /// a mid-run `ExecError::LoopStackOverflow`.
    LoopTooDeep {
        /// Maximum nesting depth the kernel reaches.
        depth: usize,
        /// `loop_stack_depth` of the target configuration.
        limit: usize,
    },
    /// The compiled program exceeds the configured I-Mem capacity.
    ProgramTooLarge {
        /// Compiled length in instructions.
        len: usize,
        /// Configured capacity.
        capacity: usize,
    },
    /// The processor configuration itself is invalid.
    Config(String),
    /// The ISA layer rejected the emitted program.
    Isa(IsaError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Malformed { value, detail } => {
                write!(f, "malformed IR at v{value}: {detail}")
            }
            CompileError::OutOfRegisters { needed, available } => write!(
                f,
                "register allocation needs {needed} registers, \
                 configuration provides {available} (no spilling on a fixed register file)"
            ),
            CompileError::OutOfPredicates { needed } => write!(
                f,
                "{needed} predicate values live at once, hardware has 4 (p0..p3)"
            ),
            CompileError::PredicatesDisabled => write!(
                f,
                "kernel uses predicates but the processor is configured without predicate support"
            ),
            CompileError::LoopTooDeep { depth, limit } => write!(
                f,
                "loops nest {depth} deep, hardware loop stack holds {limit}"
            ),
            CompileError::ProgramTooLarge { len, capacity } => write!(
                f,
                "compiled program of {len} instructions exceeds I-Mem capacity {capacity}"
            ),
            CompileError::Config(e) => write!(f, "configuration: {e}"),
            CompileError::Isa(e) => write!(f, "isa: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<IsaError> for CompileError {
    fn from(e: IsaError) -> Self {
        CompileError::Isa(e)
    }
}

impl From<ConfigError> for CompileError {
    fn from(e: ConfigError) -> Self {
        CompileError::Config(e.to_string())
    }
}
