//! Linear-scan register allocation over SSA live ranges.
//!
//! The register file is a fixed hardware structure (`regs_per_thread`
//! M20K-backed registers per thread, r0 reserved by convention), so
//! there is no spill path: exhaustion is a typed
//! [`CompileError::OutOfRegisters`]. Predicate values get the same
//! treatment over the four architectural predicate registers p0..p3.
//!
//! Live ranges respect the hardware-loop regions: a value defined
//! outside a loop and used inside it is live through the *entire* loop
//! (every iteration re-reads it), so its range extends to the loop end.

use crate::error::CompileError;
use crate::ir::{Kernel, Ty, ValueId};
use std::collections::{HashMap, HashSet};

/// The kernel linearized into emission order, with loop extents.
#[derive(Debug, Default)]
pub struct Linear {
    /// Every instruction (including loop headers) in emission order.
    pub order: Vec<ValueId>,
    /// Position of each instruction in `order`.
    pub pos: HashMap<ValueId, usize>,
    /// `(header, first body pos, last body pos)` per loop, outermost
    /// first.
    pub loops: Vec<(ValueId, usize, usize)>,
}

/// Flatten the region tree into emission order.
pub fn linearize(k: &Kernel) -> Linear {
    let mut lin = Linear::default();
    fn walk(k: &Kernel, region: &[ValueId], lin: &mut Linear) {
        for &v in region {
            lin.pos.insert(v, lin.order.len());
            lin.order.push(v);
            if let Some(body) = &k.inst(v).body {
                let start = lin.order.len();
                let slot = lin.loops.len();
                lin.loops.push((v, start, start));
                walk(k, body, lin);
                lin.loops[slot].2 = lin.order.len().saturating_sub(1);
            }
        }
    }
    walk(k, k.body(), &mut lin);
    lin
}

/// Result of allocation: hardware registers for every materialized
/// value.
#[derive(Debug, Default)]
pub struct Allocation {
    /// General-purpose register per word value.
    pub reg: HashMap<ValueId, u8>,
    /// Predicate register (0..=3) per predicate value.
    pub pred: HashMap<ValueId, u8>,
    /// Registers used, as a count including r0 (what
    /// `regs_per_thread` must cover).
    pub regs_used: usize,
}

/// Compute the live-range end of `def` given all its use positions,
/// extending through any loop that contains a use but not the
/// definition.
fn range_end(def_pos: usize, uses: &[usize], loops: &[(ValueId, usize, usize)]) -> usize {
    let mut end = def_pos;
    for &u in uses {
        let mut e = u;
        // Outermost loop that contains the use but started after the
        // definition: the value must survive every iteration of it.
        for &(_, start, last) in loops {
            if start > def_pos && (start..=last).contains(&u) {
                e = e.max(last);
                break; // loops are outermost-first; the first hit is widest
            }
        }
        end = end.max(e);
    }
    end
}

/// Allocate hardware registers for every value that `materialized` says
/// needs one (predicates always need one). `word_regs` is the total
/// register-file size per thread (r0 included but reserved);
/// `pred_available` is false for builds without predicate support.
pub fn allocate(
    k: &Kernel,
    lin: &Linear,
    materialized: &HashSet<ValueId>,
    word_regs: usize,
    pred_available: bool,
) -> Result<Allocation, CompileError> {
    // Collect use positions per value (args + guards).
    let mut uses: HashMap<ValueId, Vec<usize>> = HashMap::new();
    for (p, &v) in lin.order.iter().enumerate() {
        let inst = k.inst(v);
        for &a in &inst.args {
            uses.entry(a).or_default().push(p);
        }
        if let Some(g) = inst.guard {
            uses.entry(g.pred).or_default().push(p);
        }
    }

    let empty: Vec<usize> = Vec::new();
    let ends: HashMap<ValueId, usize> = lin
        .order
        .iter()
        .map(|&v| {
            let def = lin.pos[&v];
            let us = uses.get(&v).unwrap_or(&empty);
            (v, range_end(def, us, &lin.loops))
        })
        .collect();

    let mut alloc = Allocation::default();

    // General-purpose registers: r1..=min(word_regs-1, 254).
    let hi = word_regs.min(255).saturating_sub(1);
    let mut free: Vec<u8> = (1..=hi as u8).rev().collect();
    let mut active: Vec<(usize, u8, ValueId)> = Vec::new(); // (end, reg, value)

    // Predicates: p0..p3 (none if the build lacks predicate support).
    let mut pfree: Vec<u8> = if pred_available {
        vec![3, 2, 1, 0]
    } else {
        vec![]
    };
    let mut pactive: Vec<(usize, u8, ValueId)> = Vec::new();

    for (p, &v) in lin.order.iter().enumerate() {
        // Expire ranges that ended strictly before this position.
        active.retain(|&(end, r, _)| {
            if end < p {
                free.push(r);
                false
            } else {
                true
            }
        });
        pactive.retain(|&(end, r, _)| {
            if end < p {
                pfree.push(r);
                false
            } else {
                true
            }
        });

        let inst = k.inst(v);
        match inst.op.ty() {
            Ty::Word if materialized.contains(&v) => {
                free.sort_unstable_by(|a, b| b.cmp(a)); // lowest register last
                let Some(r) = free.pop() else {
                    return Err(CompileError::OutOfRegisters {
                        needed: active.len() + 1,
                        available: hi,
                    });
                };
                active.push((ends[&v], r, v));
                alloc.regs_used = alloc.regs_used.max(r as usize + 1);
                alloc.reg.insert(v, r);
            }
            Ty::Pred => {
                if !pred_available {
                    return Err(CompileError::PredicatesDisabled);
                }
                pfree.sort_unstable_by(|a, b| b.cmp(a));
                let Some(r) = pfree.pop() else {
                    return Err(CompileError::OutOfPredicates {
                        needed: pactive.len() + 1,
                    });
                };
                pactive.push((ends[&v], r, v));
                alloc.pred.insert(v, r);
            }
            _ => {}
        }
    }
    Ok(alloc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{IrBuilder, Op};

    fn materialized_all(k: &Kernel) -> HashSet<ValueId> {
        let mut m = HashSet::new();
        k.for_each_inst(|v, inst| {
            if inst.op.ty() == Ty::Word {
                m.insert(v);
            }
        });
        m
    }

    #[test]
    fn registers_are_reused_after_last_use() {
        // A long dependency chain only ever needs two registers.
        let mut b = IrBuilder::new("chain");
        let tid = b.tid();
        let mut v = b.load(tid, 0);
        for _ in 0..20 {
            v = b.add(v, tid);
        }
        b.store(tid, 0, v);
        let k = b.finish();
        let lin = linearize(&k);
        let m = materialized_all(&k);
        let a = allocate(&k, &lin, &m, 16, false).unwrap();
        assert!(a.regs_used <= 4, "used {} registers", a.regs_used);
    }

    #[test]
    fn exhaustion_is_a_typed_error() {
        // 8 simultaneously-live values into a 4-register file.
        let mut b = IrBuilder::new("wide");
        let tid = b.tid();
        let vals: Vec<_> = (0..8).map(|i| b.load(tid, i)).collect();
        let mut acc = vals[0];
        for &v in &vals[1..] {
            acc = b.add(acc, v);
        }
        b.store(tid, 0, acc);
        let k = b.finish();
        let lin = linearize(&k);
        let m = materialized_all(&k);
        match allocate(&k, &lin, &m, 4, false) {
            Err(CompileError::OutOfRegisters { available, .. }) => assert_eq!(available, 3),
            other => panic!("expected OutOfRegisters, got {other:?}"),
        }
    }

    #[test]
    fn values_used_in_loops_live_through_them() {
        let mut b = IrBuilder::new("looped");
        let tid = b.tid();
        let bias = b.load(tid, 0); // defined before the loop
        b.begin_loop(4);
        let x = b.load(tid, 64);
        let y = b.add(x, bias); // keeps `bias` live across the body
        b.store(tid, 64, y);
        b.end_loop();
        let k = b.finish();
        let lin = linearize(&k);
        let m = materialized_all(&k);
        let a = allocate(&k, &lin, &m, 16, false).unwrap();
        // bias, x and y must coexist: three registers minimum.
        let rb = a.reg[&bias];
        let (_, start, last) = lin.loops[0];
        // No value defined inside the loop may share bias's register.
        for p in start..=last {
            let v = lin.order[p];
            if k.inst(v).op.ty() == Ty::Word {
                assert_ne!(a.reg[&v], rb, "loop-local value reused a live register");
            }
        }
    }

    #[test]
    fn predicates_allocate_from_p0() {
        let mut b = IrBuilder::new("preds");
        let tid = b.tid();
        let c = b.iconst(4);
        let p = b.cmp(crate::ir::CmpOp::Lt, tid, c);
        let q = b.select(tid, c, p);
        b.store(tid, 0, q);
        let k = b.finish();
        let lin = linearize(&k);
        let m = materialized_all(&k);
        let a = allocate(&k, &lin, &m, 16, true).unwrap();
        assert_eq!(a.pred[&p], 0);
        let e = allocate(&k, &lin, &m, 16, false).unwrap_err();
        assert_eq!(e, CompileError::PredicatesDisabled);
    }

    #[test]
    fn too_many_live_predicates_error() {
        let mut b = IrBuilder::new("preds5");
        let tid = b.tid();
        let c = b.iconst(1);
        let ps: Vec<_> = (0..5)
            .map(|_| b.cmp(crate::ir::CmpOp::Lt, tid, c))
            .collect();
        // Use all five at the end so they're simultaneously live.
        let mut acc = tid;
        for &p in &ps {
            acc = b.select(acc, c, p);
        }
        b.store(tid, 0, acc);
        let k = b.finish();
        let lin = linearize(&k);
        let m = materialized_all(&k);
        match allocate(&k, &lin, &m, 16, true) {
            Err(CompileError::OutOfPredicates { needed }) => assert_eq!(needed, 5),
            other => panic!("expected OutOfPredicates, got {other:?}"),
        }
    }

    #[test]
    fn non_materialized_consts_get_no_register() {
        let mut b = IrBuilder::new("imm");
        let tid = b.tid();
        let c = b.iconst(3);
        let y = b.mul(tid, c);
        b.store(tid, 0, y);
        let k = b.finish();
        let lin = linearize(&k);
        // Selection says the const folds into `muli`.
        let mut m = materialized_all(&k);
        m.remove(&c);
        let a = allocate(&k, &lin, &m, 16, false).unwrap();
        assert!(!a.reg.contains_key(&c));
        assert_eq!(a.regs_used, 3); // r0 reserved, tid=r1, y=r2
        assert_eq!(k.inst(c).op, Op::Const(3));
    }
}
