//! Linear-scan register allocation over SSA live ranges.
//!
//! The register file is a fixed hardware structure (`regs_per_thread`
//! M20K-backed registers per thread, r0 reserved by convention), so
//! there is no spill path: exhaustion is a typed
//! [`CompileError::OutOfRegisters`]. Predicate values get the same
//! treatment over the four architectural predicate registers p0..p3.
//!
//! Live ranges respect the hardware-loop regions: a value defined
//! outside a loop and used inside it is live through the *entire* loop
//! (every iteration re-reads it), so its range extends to the loop end.
//!
//! ## Loop-carried coalescing
//!
//! A loop's block parameter, its initial value, its next-iteration
//! (carried) value and its [`crate::ir::Op::Result`]s all want to be
//! *one register* — that is exactly how the hand-written kernels use
//! the hardware loop (`add r7, r7, r8` is the accumulator's carried
//! update writing the parameter's register in place). The allocator
//! builds a coalescing class per parameter:
//!
//! * the **results** always join (they are pure register reads of the
//!   final value);
//! * the **initial value** joins when nothing reads it at or after the
//!   loop header, so the defining instruction can target the
//!   parameter's register directly (`muli r4, r2, k` becomes the index
//!   seed with no `mov`);
//! * the **carried value** joins when it is defined in the loop body
//!   after the parameter's last use (and the parameter feeds no other
//!   back-edge slot), so its defining instruction updates the register
//!   in place with no copy on the back edge.
//!
//! Slots that cannot coalesce get explicit `mov` copies — sequenced as
//! a parallel-copy set by the lowering (`iir`'s `x2=x1; x1=x0` state
//! rotation is such a sequence), with a scratch register reserved per
//! loop only when the back-edge permutation contains a genuine cycle.

use crate::error::CompileError;
use crate::ir::{Kernel, Op, Ty, ValueId};
use std::collections::{HashMap, HashSet};

/// The kernel linearized into emission order, with loop extents.
#[derive(Debug, Default)]
pub struct Linear {
    /// Every instruction (including loop headers) in emission order.
    pub order: Vec<ValueId>,
    /// Position of each instruction in `order`.
    pub pos: HashMap<ValueId, usize>,
    /// `(header, first body pos, last body pos)` per loop, outermost
    /// first.
    pub loops: Vec<(ValueId, usize, usize)>,
}

/// Flatten the region tree into emission order.
pub fn linearize(k: &Kernel) -> Linear {
    let mut lin = Linear::default();
    fn walk(k: &Kernel, region: &[ValueId], lin: &mut Linear) {
        for &v in region {
            lin.pos.insert(v, lin.order.len());
            lin.order.push(v);
            if let Some(body) = &k.inst(v).body {
                let start = lin.order.len();
                let slot = lin.loops.len();
                lin.loops.push((v, start, start));
                walk(k, body, lin);
                lin.loops[slot].2 = lin.order.len().saturating_sub(1);
            }
        }
    }
    walk(k, k.body(), &mut lin);
    lin
}

/// Result of allocation: hardware registers for every materialized
/// value.
#[derive(Debug, Default)]
pub struct Allocation {
    /// General-purpose register per word value.
    pub reg: HashMap<ValueId, u8>,
    /// Predicate register (0..=3) per predicate value.
    pub pred: HashMap<ValueId, u8>,
    /// Registers used, as a count including r0 (what
    /// `regs_per_thread` must cover).
    pub regs_used: usize,
    /// Scratch register per loop whose back-edge copies form a cyclic
    /// permutation (a register swap needs a temporary); live through
    /// the whole loop.
    pub loop_scratch: HashMap<ValueId, u8>,
}

/// Union-find over values, tracking whether a class already contains a
/// block parameter (classes never merge two parameters).
#[derive(Debug, Default)]
struct Classes {
    parent: HashMap<ValueId, ValueId>,
    has_param: HashSet<ValueId>,
}

impl Classes {
    fn find(&mut self, v: ValueId) -> ValueId {
        let p = *self.parent.get(&v).unwrap_or(&v);
        if p == v {
            return v;
        }
        let root = self.find(p);
        self.parent.insert(v, root);
        root
    }

    /// Merge `b` into `a`'s class.
    fn union(&mut self, a: ValueId, b: ValueId) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent.insert(rb, ra);
            if self.has_param.contains(&rb) {
                self.has_param.insert(ra);
            }
        }
    }

    fn class_has_param(&mut self, v: ValueId) -> bool {
        let r = self.find(v);
        self.has_param.contains(&r)
    }
}

/// Compute the live-range end of `def` given all its use positions,
/// extending through any loop that contains a use but not the
/// definition.
fn range_end(def_pos: usize, uses: &[usize], loops: &[(ValueId, usize, usize)]) -> usize {
    let mut end = def_pos;
    for &u in uses {
        let mut e = u;
        // Outermost loop that contains the use but started after the
        // definition: the value must survive every iteration of it.
        for &(_, start, last) in loops {
            if start > def_pos && (start..=last).contains(&u) {
                e = e.max(last);
                break; // loops are outermost-first; the first hit is widest
            }
        }
        end = end.max(e);
    }
    end
}

/// Per-loop block-parameter metadata gathered for coalescing.
#[derive(Debug)]
struct LoopMeta {
    header: ValueId,
    header_pos: usize,
    last: usize,
    params: Vec<ValueId>,
    inits: Vec<ValueId>,
    carried: Vec<ValueId>,
}

/// True when the loop's param-to-param back-edge copies form at least
/// one cyclic permutation (e.g. a swap `carried = [p1, p0]`), which
/// needs a scratch register to sequence.
fn backedge_has_cycle(meta: &LoopMeta) -> bool {
    // map: param index i receives param index j on the back edge.
    let src_of: Vec<Option<usize>> = meta
        .carried
        .iter()
        .map(|c| meta.params.iter().position(|p| p == c))
        .collect();
    let n = meta.params.len();
    // Walk the "receives-from" edges; a node revisited while still on
    // the current path closes a cycle. (Not a permutation: one param
    // may feed several slots, so paths can merge — finished nodes are
    // marked black and skipped.)
    let mut color = vec![0u8; n]; // 0 = unvisited, 1 = on path, 2 = done
    for start in 0..n {
        if color[start] != 0 {
            continue;
        }
        let mut path = Vec::new();
        let mut i = start;
        loop {
            if color[i] == 1 {
                return true;
            }
            if color[i] == 2 {
                break;
            }
            color[i] = 1;
            path.push(i);
            match src_of[i] {
                Some(j) if j != i => i = j, // self-carry is copy-free
                _ => break,
            }
        }
        for &x in &path {
            color[x] = 2;
        }
    }
    false
}

/// Allocate hardware registers for every value that `materialized` says
/// needs one (predicates always need one). `word_regs` is the total
/// register-file size per thread (r0 included but reserved);
/// `pred_available` is false for builds without predicate support.
///
/// Loop block parameters are coalesced with their initial, carried and
/// result values where sound (see the module docs); each coalescing
/// class occupies a single register whose live interval covers every
/// member.
pub fn allocate(
    k: &Kernel,
    lin: &Linear,
    materialized: &HashSet<ValueId>,
    word_regs: usize,
    pred_available: bool,
) -> Result<Allocation, CompileError> {
    // Loop metadata, in traversal order (outermost first).
    let metas: Vec<LoopMeta> = lin
        .loops
        .iter()
        .map(|&(header, _, last)| {
            let inst = k.inst(header);
            LoopMeta {
                header,
                header_pos: lin.pos[&header],
                last,
                params: k.loop_params(header),
                inits: inst.args.clone(),
                carried: inst.carried.clone().unwrap_or_default(),
            }
        })
        .collect();

    // Results per (loop, index).
    let mut results: HashMap<(ValueId, u32), Vec<ValueId>> = HashMap::new();
    for &v in &lin.order {
        if let Op::Result(idx) = k.inst(v).op {
            results.entry((k.inst(v).args[0], idx)).or_default().push(v);
        }
    }

    // Collect use positions per value (args + guards + carried values,
    // which the back-edge copies read at the end of the loop body).
    let mut uses: HashMap<ValueId, Vec<usize>> = HashMap::new();
    for (p, &v) in lin.order.iter().enumerate() {
        let inst = k.inst(v);
        for &a in &inst.args {
            uses.entry(a).or_default().push(p);
        }
        if let Some(g) = inst.guard {
            uses.entry(g.pred).or_default().push(p);
        }
    }
    for meta in &metas {
        for &c in &meta.carried {
            uses.entry(c).or_default().push(meta.last);
        }
    }

    let empty: Vec<usize> = Vec::new();
    let mut ends: HashMap<ValueId, usize> = lin
        .order
        .iter()
        .map(|&v| {
            let def = lin.pos[&v];
            let us = uses.get(&v).unwrap_or(&empty);
            (v, range_end(def, us, &lin.loops))
        })
        .collect();

    // Initial values stay live until every block parameter of their
    // loop has a register. Parameters are allocated at the body's
    // leading positions, right after the header — without this
    // extension a param could be handed a just-expired init's register,
    // and two sequential loops seeded with each other's results in
    // permuted order would turn the *entry* copy set into a register
    // cycle that the back-edge-only scratch reservation cannot break.
    // With it, entry-copy destinations are always disjoint from
    // entry-copy sources (coalesced slots excepted, and those copies
    // vanish), so entry sets sequence without a scratch register.
    for meta in &metas {
        for &init in &meta.inits {
            if let Some(e) = ends.get_mut(&init) {
                *e = (*e).max(meta.header_pos + meta.params.len());
            }
        }
    }

    // ---- coalescing classes -------------------------------------------
    // Result joins first, for every loop: a result is a pure read of a
    // parameter's final value, so its class must carry the has-param
    // mark *before* any conditional coalescing below consults it. An
    // outer loop's carried value can be a nested loop's result — doing
    // these joins lazily (per loop, in traversal order) lets the outer
    // carried check read a stale "no param here" for the inner result
    // and coalesce the outer parameter straight into the inner
    // parameter's class, whose entry copy then clobbers the outer
    // parameter every time the inner loop runs.
    let mut classes = Classes::default();
    for meta in &metas {
        for (i, &p) in meta.params.iter().enumerate() {
            let root = classes.find(p);
            classes.has_param.insert(root);
            if let Some(rs) = results.get(&(meta.header, i as u32)) {
                for &r in rs {
                    classes.union(p, r);
                }
            }
        }
    }
    for meta in &metas {
        for (i, &p) in meta.params.iter().enumerate() {
            // Initial value: joins when nothing reads it at or after
            // the loop header (so the defining instruction can write
            // the parameter's register directly). A value already in a
            // parameter class (an outer param, another loop's slot, a
            // result) never joins.
            let init = meta.inits[i];
            // Coalescing the init elides the entry copy: the register
            // must already hold the initial value every time the loop
            // is *entered*. An enclosing loop re-enters this loop once
            // per outer iteration, after the back edge overwrote the
            // shared register with the carried value — sound only if
            // the init is re-defined inside that enclosing loop. A loop
            // that starts after the init's definition and contains this
            // header is exactly the unsound case.
            let reentered_without_redef = |d: usize| {
                lin.loops
                    .iter()
                    .any(|&(_, start, last)| start > d && (start..=last).contains(&meta.header_pos))
            };
            let init_ok = !classes.class_has_param(init)
                && uses
                    .get(&init)
                    .unwrap_or(&empty)
                    .iter()
                    .all(|&u| u <= meta.header_pos)
                && lin.pos.get(&init).is_some_and(|&d| d < meta.header_pos)
                && !lin
                    .pos
                    .get(&init)
                    .copied()
                    .is_some_and(reentered_without_redef);
            if init_ok {
                classes.union(p, init);
            }
            // Carried value: joins when defined in this body after the
            // parameter's last read, so updating the register in place
            // cannot clobber a value still needed this iteration. A
            // parameter feeding another back-edge slot keeps its
            // register readable until the copies run, so its own slot
            // must not coalesce over it.
            let c = meta.carried[i];
            let c_pos = lin.pos.get(&c).copied();
            let feeds_other_slot = meta
                .carried
                .iter()
                .enumerate()
                .any(|(j, &cc)| j != i && cc == p);
            let carried_ok = !classes.class_has_param(c)
                && c_pos.is_some_and(|d| d > meta.header_pos && d <= meta.last)
                && !feeds_other_slot
                && c_pos.is_some_and(|d| uses.get(&p).unwrap_or(&empty).iter().all(|&u| u <= d));
            if carried_ok {
                classes.union(p, c);
            }
        }
    }

    // Class live intervals: a parameter's register stays occupied to
    // the end of its loop (the next iteration reads it at the top), and
    // the class end covers every member.
    let mut class_end: HashMap<ValueId, usize> = HashMap::new();
    let mut param_last: HashMap<ValueId, usize> = HashMap::new();
    for meta in &metas {
        for &p in &meta.params {
            param_last.insert(p, meta.last);
        }
    }
    for &v in &lin.order {
        let root = classes.find(v);
        let mut end = ends[&v];
        if let Some(&l) = param_last.get(&v) {
            end = end.max(l);
        }
        let e = class_end.entry(root).or_insert(end);
        *e = (*e).max(end);
    }

    // Loops whose back-edge permutation needs a scratch register.
    let scratch_loops: HashMap<usize, ValueId> = metas
        .iter()
        .filter(|m| backedge_has_cycle(m))
        .map(|m| (m.header_pos, m.header))
        .collect();

    let mut alloc = Allocation::default();

    // General-purpose registers: r1..=min(word_regs-1, 254).
    let hi = word_regs.min(255).saturating_sub(1);
    let mut free: Vec<u8> = (1..=hi as u8).rev().collect();
    let mut active: Vec<(usize, u8, ValueId)> = Vec::new(); // (end, reg, value)
    let mut class_reg: HashMap<ValueId, u8> = HashMap::new();

    // Predicates: p0..p3 (none if the build lacks predicate support).
    let mut pfree: Vec<u8> = if pred_available {
        vec![3, 2, 1, 0]
    } else {
        vec![]
    };
    let mut pactive: Vec<(usize, u8, ValueId)> = Vec::new();

    for (p, &v) in lin.order.iter().enumerate() {
        // Expire ranges that ended strictly before this position.
        active.retain(|&(end, r, _)| {
            if end < p {
                free.push(r);
                false
            } else {
                true
            }
        });
        pactive.retain(|&(end, r, _)| {
            if end < p {
                pfree.push(r);
                false
            } else {
                true
            }
        });

        let take_reg = |free: &mut Vec<u8>,
                        active: &mut Vec<(usize, u8, ValueId)>,
                        end: usize,
                        v: ValueId|
         -> Result<u8, CompileError> {
            free.sort_unstable_by(|a, b| b.cmp(a)); // lowest register last
            let Some(r) = free.pop() else {
                return Err(CompileError::OutOfRegisters {
                    needed: active.len() + 1,
                    available: hi,
                });
            };
            active.push((end, r, v));
            Ok(r)
        };

        // A loop with a cyclic back-edge permutation reserves a scratch
        // register for the copy sequencer, live through the loop.
        if let Some(&header) = scratch_loops.get(&p) {
            let last = metas
                .iter()
                .find(|m| m.header == header)
                .map(|m| m.last)
                .unwrap_or(p);
            let r = take_reg(&mut free, &mut active, last, header)?;
            alloc.regs_used = alloc.regs_used.max(r as usize + 1);
            alloc.loop_scratch.insert(header, r);
        }

        let inst = k.inst(v);
        match inst.op.ty() {
            Ty::Word if materialized.contains(&v) => {
                let root = classes.find(v);
                if let Some(&r) = class_reg.get(&root) {
                    // The class already owns a register; this member
                    // simply reads/writes it in place.
                    alloc.reg.insert(v, r);
                } else {
                    let end = class_end.get(&root).copied().unwrap_or(ends[&v]);
                    let r = take_reg(&mut free, &mut active, end, v)?;
                    class_reg.insert(root, r);
                    alloc.regs_used = alloc.regs_used.max(r as usize + 1);
                    alloc.reg.insert(v, r);
                }
            }
            Ty::Pred => {
                if !pred_available {
                    return Err(CompileError::PredicatesDisabled);
                }
                pfree.sort_unstable_by(|a, b| b.cmp(a));
                let Some(r) = pfree.pop() else {
                    return Err(CompileError::OutOfPredicates {
                        needed: pactive.len() + 1,
                    });
                };
                pactive.push((ends[&v], r, v));
                alloc.pred.insert(v, r);
            }
            _ => {}
        }
    }
    Ok(alloc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{IrBuilder, Op};

    fn materialized_all(k: &Kernel) -> HashSet<ValueId> {
        let mut m = HashSet::new();
        k.for_each_inst(|v, inst| {
            if inst.op.ty() == Ty::Word {
                m.insert(v);
            }
        });
        m
    }

    #[test]
    fn registers_are_reused_after_last_use() {
        // A long dependency chain only ever needs two registers.
        let mut b = IrBuilder::new("chain");
        let tid = b.tid();
        let mut v = b.load(tid, 0);
        for _ in 0..20 {
            v = b.add(v, tid);
        }
        b.store(tid, 0, v);
        let k = b.finish();
        let lin = linearize(&k);
        let m = materialized_all(&k);
        let a = allocate(&k, &lin, &m, 16, false).unwrap();
        assert!(a.regs_used <= 4, "used {} registers", a.regs_used);
    }

    #[test]
    fn exhaustion_is_a_typed_error() {
        // 8 simultaneously-live values into a 4-register file.
        let mut b = IrBuilder::new("wide");
        let tid = b.tid();
        let vals: Vec<_> = (0..8).map(|i| b.load(tid, i)).collect();
        let mut acc = vals[0];
        for &v in &vals[1..] {
            acc = b.add(acc, v);
        }
        b.store(tid, 0, acc);
        let k = b.finish();
        let lin = linearize(&k);
        let m = materialized_all(&k);
        match allocate(&k, &lin, &m, 4, false) {
            Err(CompileError::OutOfRegisters { available, .. }) => assert_eq!(available, 3),
            other => panic!("expected OutOfRegisters, got {other:?}"),
        }
    }

    #[test]
    fn values_used_in_loops_live_through_them() {
        let mut b = IrBuilder::new("looped");
        let tid = b.tid();
        let bias = b.load(tid, 0); // defined before the loop
        b.begin_loop(4);
        let x = b.load(tid, 64);
        let y = b.add(x, bias); // keeps `bias` live across the body
        b.store(tid, 64, y);
        b.end_loop();
        let k = b.finish();
        let lin = linearize(&k);
        let m = materialized_all(&k);
        let a = allocate(&k, &lin, &m, 16, false).unwrap();
        // bias, x and y must coexist: three registers minimum.
        let rb = a.reg[&bias];
        let (_, start, last) = lin.loops[0];
        // No value defined inside the loop may share bias's register.
        for p in start..=last {
            let v = lin.order[p];
            if k.inst(v).op.ty() == Ty::Word {
                assert_ne!(a.reg[&v], rb, "loop-local value reused a live register");
            }
        }
    }

    #[test]
    fn predicates_allocate_from_p0() {
        let mut b = IrBuilder::new("preds");
        let tid = b.tid();
        let c = b.iconst(4);
        let p = b.cmp(crate::ir::CmpOp::Lt, tid, c);
        let q = b.select(tid, c, p);
        b.store(tid, 0, q);
        let k = b.finish();
        let lin = linearize(&k);
        let m = materialized_all(&k);
        let a = allocate(&k, &lin, &m, 16, true).unwrap();
        assert_eq!(a.pred[&p], 0);
        let e = allocate(&k, &lin, &m, 16, false).unwrap_err();
        assert_eq!(e, CompileError::PredicatesDisabled);
    }

    #[test]
    fn too_many_live_predicates_error() {
        let mut b = IrBuilder::new("preds5");
        let tid = b.tid();
        let c = b.iconst(1);
        let ps: Vec<_> = (0..5)
            .map(|_| b.cmp(crate::ir::CmpOp::Lt, tid, c))
            .collect();
        // Use all five at the end so they're simultaneously live.
        let mut acc = tid;
        for &p in &ps {
            acc = b.select(acc, c, p);
        }
        b.store(tid, 0, acc);
        let k = b.finish();
        let lin = linearize(&k);
        let m = materialized_all(&k);
        match allocate(&k, &lin, &m, 16, true) {
            Err(CompileError::OutOfPredicates { needed }) => assert_eq!(needed, 5),
            other => panic!("expected OutOfPredicates, got {other:?}"),
        }
    }

    #[test]
    fn carried_accumulator_coalesces_to_one_register() {
        // acc = acc + x across a loop: param, init, carried update and
        // result must share one register (no copies anywhere).
        let mut b = IrBuilder::new("acc");
        let tid = b.tid();
        let zero = b.iconst(0);
        let p = b.begin_loop_carried(8, &[zero]);
        let x = b.load(tid, 0);
        let next = b.add(p[0], x);
        let r = b.end_loop_carried(&[next]);
        b.store(tid, 64, r[0]);
        let k = b.finish();
        let lin = linearize(&k);
        let m = materialized_all(&k);
        let a = allocate(&k, &lin, &m, 16, false).unwrap();
        let acc = a.reg[&p[0]];
        assert_eq!(a.reg[&zero], acc, "init must coalesce");
        assert_eq!(a.reg[&next], acc, "carried update must coalesce");
        assert_eq!(a.reg[&r[0]], acc, "result must coalesce");
        assert!(a.loop_scratch.is_empty());
    }

    #[test]
    fn carried_update_before_last_param_use_does_not_coalesce() {
        // The carried value is defined *before* another read of the
        // param (the store), so writing the register in place would
        // clobber the value the store still needs.
        let mut b = IrBuilder::new("t");
        let tid = b.tid();
        let zero = b.iconst(0);
        let p = b.begin_loop_carried(8, &[zero]);
        let x = b.load(tid, 0);
        let next = b.add(p[0], x);
        b.store(tid, 0, p[0]); // param read AFTER the carried def
        let r = b.end_loop_carried(&[next]);
        b.store(tid, 64, r[0]);
        let k = b.finish();
        let lin = linearize(&k);
        let m = materialized_all(&k);
        let a = allocate(&k, &lin, &m, 16, false).unwrap();
        assert_ne!(
            a.reg[&next], a.reg[&p[0]],
            "coalescing would clobber the param before its store"
        );
    }

    #[test]
    fn init_with_later_uses_does_not_coalesce() {
        // The init value is stored after the loop, so the loop must not
        // evolve it in place.
        let mut b = IrBuilder::new("t");
        let tid = b.tid();
        let seed = b.load(tid, 0);
        let p = b.begin_loop_carried(4, &[seed]);
        let one = b.iconst(1);
        let next = b.add(p[0], one);
        let r = b.end_loop_carried(&[next]);
        b.store(tid, 64, r[0]);
        b.store(tid, 128, seed); // init still needed after the loop
        let k = b.finish();
        let lin = linearize(&k);
        let m = materialized_all(&k);
        let a = allocate(&k, &lin, &m, 16, false).unwrap();
        assert_ne!(
            a.reg[&seed], a.reg[&p[0]],
            "init must keep its own register"
        );
    }

    #[test]
    fn swap_permutations_reserve_a_scratch_register() {
        // carried = [p1, p0]: a two-cycle on the back edge.
        let mut b = IrBuilder::new("swap");
        let tid = b.tid();
        let a0 = b.iconst(1);
        let b0 = b.iconst(2);
        let p = b.begin_loop_carried(3, &[a0, b0]);
        b.store(tid, 0, p[0]);
        let r = b.end_loop_carried(&[p[1], p[0]]);
        b.store(tid, 64, r[0]);
        b.store(tid, 128, r[1]);
        let k = b.finish();
        let lin = linearize(&k);
        let m = materialized_all(&k);
        let a = allocate(&k, &lin, &m, 16, false).unwrap();
        assert_eq!(a.loop_scratch.len(), 1, "swap needs one scratch register");
        // The state-rotation *chain* (x2=x1, x1=x0) needs none.
        let mut b = IrBuilder::new("chain");
        let tid = b.tid();
        let z = b.iconst(0);
        let p = b.begin_loop_carried(3, &[z, z]);
        let x0 = b.load(tid, 0);
        b.store(tid, 64, p[1]);
        let _r = b.end_loop_carried(&[x0, p[0]]);
        b.store(tid, 128, tid);
        let k = b.finish();
        let lin = linearize(&k);
        let m = materialized_all(&k);
        let a = allocate(&k, &lin, &m, 16, false).unwrap();
        assert!(a.loop_scratch.is_empty(), "chains sequence without scratch");
    }

    #[test]
    fn non_materialized_consts_get_no_register() {
        let mut b = IrBuilder::new("imm");
        let tid = b.tid();
        let c = b.iconst(3);
        let y = b.mul(tid, c);
        b.store(tid, 0, y);
        let k = b.finish();
        let lin = linearize(&k);
        // Selection says the const folds into `muli`.
        let mut m = materialized_all(&k);
        m.remove(&c);
        let a = allocate(&k, &lin, &m, 16, false).unwrap();
        assert!(!a.reg.contains_key(&c));
        assert_eq!(a.regs_used, 3); // r0 reserved, tid=r1, y=r2
        assert_eq!(k.inst(c).op, Op::Const(3));
    }
}
