//! # simt-compiler — an optimizing compiler for the SIMT soft processor
//!
//! The kernels of this reproduction were, until this crate, written the
//! way the paper's were: by hand, register by register, against the
//! [`simt_isa::KernelBuilder`] or the text assembler. That does not
//! scale to the ROADMAP's production ambitions — many kernel families,
//! many processor configurations, repeated launches. This crate adds
//! the compilation layer in between, shaped after cranelift/wasmtime:
//!
//! * [`ir`] — a small **SSA kernel IR**: typed values ([`Ty`]), ops
//!   covering the full ALU / memory / predicate surface, and nested
//!   regions that map one-to-one onto the ISA's zero-overhead hardware
//!   loops — including **loop-carried values** as Cranelift-style block
//!   parameters ([`IrBuilder::begin_loop_carried`]), which is what lets
//!   `matmul`/`iir` compile instead of being hand-scheduled. Built with
//!   [`IrBuilder`].
//! * [`passes`] — an **optimization pipeline** (constant folding with
//!   bit-exact datapath semantics, strength reduction of multiplies
//!   into the barrel-replacement shifter and of address adds into
//!   `lds`/`sts` offset fields, loop-invariant code motion out of
//!   hardware-loop bodies, dominator-scoped CSE, store-to-load
//!   forwarding, `mad` fusion, DCE), iterated to a fixpoint, then a
//!   final **load/store schedule** for the cycle model — all with
//!   per-pass before/after statistics ([`PipelineReport`]).
//! * [`regalloc`] — **linear-scan register allocation** over SSA live
//!   ranges, with loop-carried coalescing: each block parameter shares
//!   one register with its initial, carried and result values wherever
//!   sound, so lowered loops carry no copies on the back edge. The
//!   register file is fixed hardware, so exhaustion is a typed
//!   [`CompileError::OutOfRegisters`], never a spill.
//! * [`lower`] — instruction selection (immediate forms for constant
//!   operands) and emission of a [`simt_isa::Program`] through the
//!   existing [`simt_isa::KernelBuilder`].
//! * [`cache`] — a **content-addressed [`CompileCache`]**: hash of
//!   (IR or assembly source, [`ProcessorConfig`], opt level) →
//!   compiled program, shared across a device pool so repeated launches
//!   never re-lower. `simt-runtime` mounts one on its launch path.
//!
//! ## Quickstart
//!
//! ```
//! use simt_compiler::{compile, IrBuilder, OptLevel};
//! use simt_core::ProcessorConfig;
//!
//! // shared[tid + 64] = 3 * shared[tid] + 7
//! let mut b = IrBuilder::new("scale_bias");
//! let tid = b.tid();
//! let x = b.load(tid, 0);
//! let c3 = b.iconst(3);
//! let x3 = b.mul(x, c3);
//! let c7 = b.iconst(7);
//! let y = b.add(x3, c7);
//! b.store(tid, 64, y);
//! let kernel = b.finish();
//!
//! let cfg = ProcessorConfig::default();
//! let out = compile(&kernel, &cfg, OptLevel::Full).unwrap();
//! assert_eq!(out.program.len(), 6); // stid, lds, muli, addi, sts, exit
//! ```
//!
//! `docs/COMPILER.md` at the repository root walks the whole pipeline
//! with worked examples (saxpy stage by stage, the loop-carried
//! matmul).

#![warn(missing_docs)]

pub mod analysis;
pub mod cache;
pub mod error;
pub mod ir;
pub mod lower;
pub mod passes;
pub mod regalloc;
pub mod stitch;

pub use cache::CompileCache;
pub use error::CompileError;
pub use ir::{BinOp, CmpOp, IrBuilder, Kernel, Op, Ty, UnOp, ValueId};
pub use lower::{compile, CompiledKernel, OptLevel};
pub use passes::{
    const_fold, cse, dce, elide_stores, forward_stores, licm, mad_fuse, optimize, schedule_mem,
    strength_reduce, PassStats, PipelineReport,
};
pub use stitch::{concat_kernels, fuse_kernels, FuseReport};

use simt_core::ProcessorConfig;

/// Convenience: compile with the full pipeline.
pub fn compile_full(
    kernel: &Kernel,
    config: &ProcessorConfig,
) -> Result<CompiledKernel, CompileError> {
    compile(kernel, config, OptLevel::Full)
}
