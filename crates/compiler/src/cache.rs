//! Content-addressed compile cache.
//!
//! Keys are deterministic 64-bit content hashes of (source, processor
//! configuration, opt level) — the wasmtime/cranelift artifact-cache
//! shape: identical kernels compiled for identical targets share one
//! [`Program`] no matter which stream, device or process-lifetime
//! launch asked first. Both frontends are covered: IR kernels (hashed
//! over a canonical renumbering, see [`Kernel::content_hash`]) and text
//! assembly (hashed over the source bytes).
//!
//! The cache is thread-safe and cheap to share (`Arc<CompileCache>`
//! across a device pool); hit/miss counters feed the runtime's
//! statistics. A hit compares the stored source material against the
//! request, so a 64-bit key collision degrades to a one-off compile
//! instead of returning the wrong program, and the map lock is never
//! held across a compile (per-key pending tracking serializes only
//! same-key callers).

use crate::error::CompileError;
use crate::ir::{hash_config, Fnv, Kernel};
use crate::lower::{compile, OptLevel};
use simt_core::{DecodedProgram, ProcessorConfig};
use simt_forensics::{CacheTier, FlightEvent, FlightRecorder};
use simt_isa::{IsaError, Program};
use simt_profile::{TraceEvent, Tracer};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// What a cache entry was compiled from. Kept alongside the program so
/// a 64-bit key collision is *detected* (the material is compared on
/// every hit) instead of silently handing back the wrong kernel. IR
/// material is the same canonical form the hash covers
/// ([`Kernel::canonical_bytes`]: dense-renumbered, reachable-only,
/// config included), so content-identical kernels that differ in name
/// or arena garbage still hit.
#[derive(Debug, PartialEq)]
enum SourceMaterial {
    /// Canonical IR + config bytes, plus the opt level.
    Ir { canon: Vec<u8>, opt_full: bool },
    /// Assembly source text.
    Asm(String),
}

#[derive(Debug)]
struct Entry {
    material: SourceMaterial,
    config: ProcessorConfig,
    program: Arc<Program>,
    /// The program predecoded for `config`
    /// ([`simt_core::DecodedProgram`]), filled on the first decoded
    /// lookup so graph replays and repeated stream launches skip
    /// re-decoding entirely.
    decoded: Option<Arc<DecodedProgram>>,
    /// Recency stamp for LRU eviction (larger = used more recently).
    last_used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<u64, Entry>,
    /// Keys currently being compiled by some thread; others wait on
    /// the condvar instead of compiling the same kernel in parallel —
    /// and instead of holding the map lock across a compile, which
    /// would serialize unrelated compilations pool-wide.
    pending: HashSet<u64>,
    /// Monotonic recency clock.
    tick: u64,
    /// Maximum resident artifacts (`None` = unbounded). A long-running
    /// pool serving many distinct programs must not grow without limit;
    /// past the bound the least-recently-used artifact is evicted.
    capacity: Option<usize>,
}

/// A shared, content-addressed map from compiled-artifact keys to
/// programs.
#[derive(Debug, Default)]
pub struct CompileCache {
    inner: Mutex<Inner>,
    ready: Condvar,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    decode_hits: AtomicU64,
    decode_misses: AtomicU64,
    /// Optional structured-event sink (see [`CompileCache::with_tracer`]).
    tracer: Option<Arc<Tracer>>,
    /// Optional always-on flight recorder (see
    /// [`CompileCache::with_flight`]).
    flight: Option<Arc<FlightRecorder>>,
}

/// Internal lookup result: the program, its decode when requested, and
/// whether the artifact came out of the cache.
type Lookup<E> = Result<(Arc<Program>, Option<Arc<DecodedProgram>>, bool), E>;

/// Outcome of claiming a key under the lock.
enum Claim {
    /// Resident artifact; the decode is `Some` iff the caller asked
    /// for a decoded lookup.
    Hit(Arc<Program>, Option<Arc<DecodedProgram>>),
    /// This thread owns the compile for the key.
    Owned,
    /// The key is resident but the material differs (hash collision):
    /// compile without caching.
    Collision,
}

impl CompileCache {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache holding at most `capacity` artifacts, evicting
    /// the least-recently-used past the bound.
    ///
    /// # Panics
    /// If `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity >= 1, "a compile cache needs room for one entry");
        let cache = Self::default();
        cache.inner.lock().unwrap().capacity = Some(capacity);
        cache
    }

    /// Attach a [`Tracer`]: every lookup then emits
    /// [`TraceEvent::CompileCacheHit`] / [`TraceEvent::CompileCacheMiss`]
    /// (plus the decode-cache pair), and every fresh IR compile emits one
    /// [`TraceEvent::PassRun`] per pipeline pass invocation.
    pub fn with_tracer(mut self, tracer: Arc<Tracer>) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Attach a flight recorder: every compile- and decode-cache lookup
    /// then records a compact [`FlightEvent::CacheQuery`], independent
    /// of the opt-in tracer.
    pub fn with_flight(mut self, flight: Arc<FlightRecorder>) -> Self {
        self.flight = Some(flight);
        self
    }

    /// Record `event` when a tracer is attached (the disabled path is a
    /// branch on `None`).
    fn emit(&self, event: TraceEvent) {
        if let Some(t) = &self.tracer {
            t.record(event);
        }
    }

    /// Record a cache outcome on the flight recorder when one is
    /// attached (same branch-on-`None` disabled path as `emit`).
    fn note_cache(&self, kernel: &str, cache: CacheTier, hit: bool) {
        if let Some(f) = &self.flight {
            f.record(FlightEvent::CacheQuery {
                kernel: kernel.to_string(),
                cache,
                hit,
            });
        }
    }

    /// Claim `key` under the lock: hit, collision, or take ownership of
    /// the compile (waiting out any other thread already compiling it).
    /// With `want_decoded`, a hit also returns the entry's predecoded
    /// form, deriving and caching it on first request (decoding is a
    /// cheap linear pass, so holding the lock is acceptable).
    fn claim(
        &self,
        key: u64,
        material: &SourceMaterial,
        config: &ProcessorConfig,
        want_decoded: bool,
        label: &str,
    ) -> Claim {
        let mut inner = self.inner.lock().unwrap();
        loop {
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(e) = inner.map.get_mut(&key) {
                // Artifact identity ignores host-tuning fields
                // (parallel_threshold) — see
                // ProcessorConfig::artifact_compatible.
                if e.material == *material && e.config.artifact_compatible(config) {
                    e.last_used = tick;
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    self.emit(TraceEvent::CompileCacheHit {
                        kernel: label.to_string(),
                        decoded: want_decoded,
                    });
                    self.note_cache(label, CacheTier::Compile, true);
                    let decoded = if want_decoded {
                        Some(match &e.decoded {
                            Some(d) => {
                                self.decode_hits.fetch_add(1, Ordering::Relaxed);
                                self.emit(TraceEvent::DecodeCacheHit {
                                    kernel: label.to_string(),
                                });
                                self.note_cache(label, CacheTier::Decode, true);
                                Arc::clone(d)
                            }
                            None => {
                                self.decode_misses.fetch_add(1, Ordering::Relaxed);
                                self.emit(TraceEvent::DecodeCacheMiss {
                                    kernel: label.to_string(),
                                });
                                self.note_cache(label, CacheTier::Decode, false);
                                let d = Arc::new(DecodedProgram::decode(
                                    Arc::clone(&e.program),
                                    &e.config,
                                ));
                                e.decoded = Some(Arc::clone(&d));
                                d
                            }
                        })
                    } else {
                        None
                    };
                    return Claim::Hit(Arc::clone(&e.program), decoded);
                }
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.emit(TraceEvent::CompileCacheMiss {
                    kernel: label.to_string(),
                });
                self.note_cache(label, CacheTier::Compile, false);
                return Claim::Collision;
            }
            if inner.pending.insert(key) {
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.emit(TraceEvent::CompileCacheMiss {
                    kernel: label.to_string(),
                });
                self.note_cache(label, CacheTier::Compile, false);
                return Claim::Owned;
            }
            inner = self.ready.wait(inner).unwrap();
        }
    }

    /// Publish (or on failure abandon) an owned compile, evict past the
    /// LRU bound, and wake waiters.
    fn settle(&self, key: u64, entry: Option<Entry>) {
        let mut inner = self.inner.lock().unwrap();
        inner.pending.remove(&key);
        if let Some(mut e) = entry {
            inner.tick += 1;
            e.last_used = inner.tick;
            inner.map.insert(key, e);
            if let Some(cap) = inner.capacity {
                while inner.map.len() > cap {
                    let lru = inner
                        .map
                        .iter()
                        .min_by_key(|(_, e)| e.last_used)
                        .map(|(&k, _)| k)
                        .expect("over-capacity map is non-empty");
                    inner.map.remove(&lru);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.ready.notify_all();
    }

    /// Compile an IR kernel (or return the cached artifact, flagged
    /// `true`). Concurrent launches of the same kernel compile exactly
    /// once — later callers wait for the first, and unrelated keys
    /// compile in parallel (the map lock is not held across a compile).
    pub fn get_or_compile(
        &self,
        kernel: &Kernel,
        config: &ProcessorConfig,
        opt: OptLevel,
    ) -> Result<(Arc<Program>, bool), CompileError> {
        let (p, _, hit) = self.compile_inner(kernel, config, opt, false)?;
        Ok((p, hit))
    }

    /// [`CompileCache::get_or_compile`], returning the artifact
    /// predecoded for `config` — the form
    /// `simt_core::Processor::load_decoded` consumes directly. The
    /// decode is cached with the entry, so repeated launches and graph
    /// replays pay it once (observable via
    /// [`CompileCache::decode_hits`]).
    pub fn get_or_compile_decoded(
        &self,
        kernel: &Kernel,
        config: &ProcessorConfig,
        opt: OptLevel,
    ) -> Result<(Arc<DecodedProgram>, bool), CompileError> {
        let (_, d, hit) = self.compile_inner(kernel, config, opt, true)?;
        Ok((d.expect("decoded lookup returns a decode"), hit))
    }

    fn compile_inner(
        &self,
        kernel: &Kernel,
        config: &ProcessorConfig,
        opt: OptLevel,
        want_decoded: bool,
    ) -> Lookup<CompileError> {
        // Validate before hashing: the canonical serialization assumes
        // well-formed regions, and a malformed kernel must surface the
        // same typed error here as on the direct compile() path.
        kernel.validate()?;
        let canon = kernel.canonical_bytes(config);
        let mut h = Fnv::new();
        h.write_u8(0x1A); // IR namespace
        h.write_u8(matches!(opt, OptLevel::Full) as u8);
        h.write_bytes(&canon);
        let key = h.finish();
        let material = SourceMaterial::Ir {
            canon,
            opt_full: matches!(opt, OptLevel::Full),
        };
        match self.claim(key, &material, config, want_decoded, &kernel.name) {
            Claim::Hit(p, d) => Ok((p, d, true)),
            Claim::Collision => {
                // Keyspace collision: serve a correct one-off compile,
                // leave the resident entry alone.
                let p = Arc::new(compile(kernel, config, opt)?.program);
                let d = self.one_off_decode(&p, config, want_decoded, &kernel.name);
                Ok((p, d, false))
            }
            Claim::Owned => match compile(kernel, config, opt) {
                Ok(compiled) => {
                    if self.tracer.is_some() {
                        for ps in &compiled.report.passes {
                            self.emit(TraceEvent::PassRun {
                                kernel: kernel.name.clone(),
                                pass: ps.pass.to_string(),
                                insts_before: ps.insts_before,
                                insts_after: ps.insts_after,
                                changed: ps.changed,
                            });
                        }
                    }
                    let p = Arc::new(compiled.program);
                    let d = self.one_off_decode(&p, config, want_decoded, &kernel.name);
                    self.settle(
                        key,
                        Some(Entry {
                            material,
                            config: config.clone(),
                            program: Arc::clone(&p),
                            decoded: d.clone(),
                            last_used: 0,
                        }),
                    );
                    Ok((p, d, false))
                }
                Err(e) => {
                    self.settle(key, None);
                    Err(e)
                }
            },
        }
    }

    /// Assemble a text kernel (or return the cached artifact, flagged
    /// `true`), keyed by the source bytes and configuration.
    pub fn get_or_assemble(
        &self,
        asm: &str,
        config: &ProcessorConfig,
    ) -> Result<(Arc<Program>, bool), IsaError> {
        let (p, _, hit) = self.assemble_inner(asm, config, false)?;
        Ok((p, hit))
    }

    /// [`CompileCache::get_or_assemble`], returning the artifact
    /// predecoded for `config` (see
    /// [`CompileCache::get_or_compile_decoded`]).
    pub fn get_or_assemble_decoded(
        &self,
        asm: &str,
        config: &ProcessorConfig,
    ) -> Result<(Arc<DecodedProgram>, bool), IsaError> {
        let (_, d, hit) = self.assemble_inner(asm, config, true)?;
        Ok((d.expect("decoded lookup returns a decode"), hit))
    }

    fn assemble_inner(
        &self,
        asm: &str,
        config: &ProcessorConfig,
        want_decoded: bool,
    ) -> Lookup<IsaError> {
        let mut h = Fnv::new();
        h.write_u8(0x2B); // asm namespace
        h.write_bytes(asm.as_bytes());
        hash_config(&mut h, config);
        let key = h.finish();
        let material = SourceMaterial::Asm(asm.to_string());
        // Assembly sources carry no kernel name; label by content hash
        // (only materialized when a tracer is listening).
        let label = if self.tracer.is_some() {
            format!("asm#{key:016x}")
        } else {
            String::new()
        };
        match self.claim(key, &material, config, want_decoded, &label) {
            Claim::Hit(p, d) => Ok((p, d, true)),
            Claim::Collision => {
                let p = Arc::new(simt_isa::assemble(asm)?);
                let d = self.one_off_decode(&p, config, want_decoded, &label);
                Ok((p, d, false))
            }
            Claim::Owned => match simt_isa::assemble(asm) {
                Ok(program) => {
                    let p = Arc::new(program);
                    let d = self.one_off_decode(&p, config, want_decoded, &label);
                    self.settle(
                        key,
                        Some(Entry {
                            material,
                            config: config.clone(),
                            program: Arc::clone(&p),
                            decoded: d.clone(),
                            last_used: 0,
                        }),
                    );
                    Ok((p, d, false))
                }
                Err(e) => {
                    self.settle(key, None);
                    Err(e)
                }
            },
        }
    }

    /// Decode a freshly-built program when the caller asked for the
    /// decoded form (counted as a decode miss).
    fn one_off_decode(
        &self,
        program: &Arc<Program>,
        config: &ProcessorConfig,
        want_decoded: bool,
        label: &str,
    ) -> Option<Arc<DecodedProgram>> {
        if !want_decoded {
            return None;
        }
        self.decode_misses.fetch_add(1, Ordering::Relaxed);
        self.emit(TraceEvent::DecodeCacheMiss {
            kernel: label.to_string(),
        });
        self.note_cache(label, CacheTier::Decode, false);
        Some(Arc::new(DecodedProgram::decode(
            Arc::clone(program),
            config,
        )))
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (compilations) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Artifacts evicted by the LRU bound so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Decoded-form lookups served from a cached decode (no re-decode).
    pub fn decode_hits(&self) -> u64 {
        self.decode_hits.load(Ordering::Relaxed)
    }

    /// Decoded-form lookups that had to decode (first decoded request
    /// per entry, fresh compiles, and collision one-offs).
    pub fn decode_misses(&self) -> u64 {
        self.decode_misses.load(Ordering::Relaxed)
    }

    /// The configured LRU bound (`None` = unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.inner.lock().unwrap().capacity
    }

    /// Cached artifacts.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// True when nothing has been cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hits over total lookups (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits() as f64;
        let total = h + self.misses() as f64;
        if total == 0.0 {
            0.0
        } else {
            h / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::IrBuilder;

    fn kernel(mul: i32) -> Kernel {
        let mut b = IrBuilder::new("k");
        let tid = b.tid();
        let x = b.load(tid, 0);
        let c = b.iconst(mul);
        let y = b.mul(x, c);
        b.store(tid, 64, y);
        b.finish()
    }

    #[test]
    fn repeated_compiles_hit() {
        let cache = CompileCache::new();
        let cfg = ProcessorConfig::small();
        let k = kernel(3);
        let (p1, hit1) = cache.get_or_compile(&k, &cfg, OptLevel::Full).unwrap();
        let (p2, hit2) = cache.get_or_compile(&k, &cfg, OptLevel::Full).unwrap();
        assert!(Arc::ptr_eq(&p1, &p2));
        assert!(!hit1);
        assert!(hit2);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
        assert!(cache.hit_rate() > 0.49);
    }

    #[test]
    fn distinct_kernels_configs_and_levels_miss() {
        let cache = CompileCache::new();
        let cfg = ProcessorConfig::small();
        let k = kernel(3);
        cache.get_or_compile(&k, &cfg, OptLevel::Full).unwrap();
        cache
            .get_or_compile(&kernel(4), &cfg, OptLevel::Full)
            .unwrap();
        cache
            .get_or_compile(&k, &cfg.clone().with_threads(32), OptLevel::Full)
            .unwrap();
        cache.get_or_compile(&k, &cfg, OptLevel::None).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 4));
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn assembly_is_cached_by_source_and_config() {
        let cache = CompileCache::new();
        let cfg = ProcessorConfig::small();
        let src = "  stid r1\n  sts [r1+0], r1\n  exit";
        let (p1, hit1) = cache.get_or_assemble(src, &cfg).unwrap();
        let (p2, hit2) = cache.get_or_assemble(src, &cfg).unwrap();
        assert!(Arc::ptr_eq(&p1, &p2));
        assert!(!hit1);
        assert!(hit2);
        let _ = cache
            .get_or_assemble(src, &cfg.clone().with_threads(32))
            .unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
    }

    #[test]
    fn arena_garbage_does_not_defeat_the_cache() {
        // Content-identical kernels that differ only in unreachable
        // arena entries share one hash AND one canonical material, so
        // the second lookup is a true hit (not a false collision).
        let cache = CompileCache::new();
        let cfg = ProcessorConfig::small();
        let k1 = kernel(3);
        let mut k2 = kernel(3);
        let garbage = k2.append_inst(crate::ir::Op::Const(99), vec![]);
        let _ = garbage; // never placed in a region
        let (_, hit1) = cache.get_or_compile(&k1, &cfg, OptLevel::Full).unwrap();
        let (_, hit2) = cache.get_or_compile(&k2, &cfg, OptLevel::Full).unwrap();
        assert!(!hit1);
        assert!(hit2, "garbage-only difference must still hit");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn malformed_kernels_error_instead_of_panicking() {
        // A kernel whose store references a value from another
        // builder's arena: the cache path must return the same typed
        // Malformed error as compile(), not panic inside the hasher
        // (a panic here would kill a runtime device worker and hang
        // synchronize()).
        let mut other = IrBuilder::new("other");
        for _ in 0..8 {
            let _ = other.iconst(1);
        }
        let foreign = other.tid(); // ValueId(8), out of range below
        let mut b = IrBuilder::new("bad");
        let tid = b.tid();
        b.store(tid, 0, foreign);
        let bad = b.finish();
        let cache = CompileCache::new();
        let cfg = ProcessorConfig::small();
        match cache.get_or_compile(&bad, &cfg, OptLevel::Full) {
            Err(CompileError::Malformed { .. }) => {}
            other => panic!("expected Malformed, got {other:?}"),
        }
        assert!(cache.is_empty());
    }

    #[test]
    fn failed_compiles_are_not_cached() {
        let cache = CompileCache::new();
        let cfg = ProcessorConfig::small().with_regs_per_thread(2);
        let k = kernel(3);
        assert!(cache.get_or_compile(&k, &cfg, OptLevel::Full).is_err());
        assert!(cache.is_empty());
        assert!(cache.get_or_assemble("  frob r1", &cfg).is_err());
        assert!(cache.is_empty());
    }

    #[test]
    fn lru_bound_evicts_the_coldest_artifact() {
        let cache = CompileCache::with_capacity(2);
        assert_eq!(cache.capacity(), Some(2));
        let cfg = ProcessorConfig::small();
        cache
            .get_or_compile(&kernel(1), &cfg, OptLevel::Full)
            .unwrap();
        cache
            .get_or_compile(&kernel(2), &cfg, OptLevel::Full)
            .unwrap();
        assert_eq!((cache.len(), cache.evictions()), (2, 0));
        // Touch kernel(1) so kernel(2) is the LRU entry.
        let (_, hit) = cache
            .get_or_compile(&kernel(1), &cfg, OptLevel::Full)
            .unwrap();
        assert!(hit);
        // A third artifact pushes out kernel(2), not kernel(1).
        cache
            .get_or_compile(&kernel(3), &cfg, OptLevel::Full)
            .unwrap();
        assert_eq!((cache.len(), cache.evictions()), (2, 1));
        let (_, hit1) = cache
            .get_or_compile(&kernel(1), &cfg, OptLevel::Full)
            .unwrap();
        assert!(hit1, "recently-used artifact survived the eviction");
        // kernel(2) was evicted: compiling it again is a miss (and in
        // turn evicts the now-coldest kernel(3)).
        let (_, hit2) = cache
            .get_or_compile(&kernel(2), &cfg, OptLevel::Full)
            .unwrap();
        assert!(!hit2, "evicted artifact must recompile");
        assert_eq!(cache.evictions(), 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let cache = CompileCache::new();
        assert_eq!(cache.capacity(), None);
        let cfg = ProcessorConfig::small();
        for m in 1..=16 {
            cache
                .get_or_compile(&kernel(m), &cfg, OptLevel::Full)
                .unwrap();
        }
        assert_eq!((cache.len(), cache.evictions()), (16, 0));
    }

    #[test]
    fn decoded_lookups_cache_the_decode_with_the_artifact() {
        let cache = CompileCache::new();
        let cfg = ProcessorConfig::small();
        let k = kernel(3);
        // Fresh compile: the decode rides the new entry (a miss).
        let (d1, hit1) = cache
            .get_or_compile_decoded(&k, &cfg, OptLevel::Full)
            .unwrap();
        assert!(!hit1);
        assert_eq!((cache.decode_hits(), cache.decode_misses()), (0, 1));
        // Repeat: compile hit AND decode hit — the same Arc comes back.
        let (d2, hit2) = cache
            .get_or_compile_decoded(&k, &cfg, OptLevel::Full)
            .unwrap();
        assert!(hit2);
        assert!(Arc::ptr_eq(&d1, &d2));
        assert_eq!((cache.decode_hits(), cache.decode_misses()), (1, 1));
        assert_eq!(d1.config(), &cfg);
        // A program-only lookup of the same entry leaves decode counters
        // untouched.
        let (p, hit3) = cache.get_or_compile(&k, &cfg, OptLevel::Full).unwrap();
        assert!(hit3);
        assert!(Arc::ptr_eq(d1.program(), &p));
        assert_eq!((cache.decode_hits(), cache.decode_misses()), (1, 1));
    }

    #[test]
    fn parallel_threshold_does_not_split_the_cache() {
        // The fan-out threshold is a host-tuning knob: it changes
        // neither the compiled artifact nor the decode, so sweeping it
        // (as `tables --sim` does) must not force recompiles.
        let cache = CompileCache::new();
        let k = kernel(3);
        let base = ProcessorConfig::small();
        let (d1, hit1) = cache
            .get_or_compile_decoded(&k, &base, OptLevel::Full)
            .unwrap();
        assert!(!hit1);
        for threshold in [0usize, 64, 1024, usize::MAX] {
            let cfg = base.clone().with_parallel_threshold(threshold);
            let (d, hit) = cache
                .get_or_compile_decoded(&k, &cfg, OptLevel::Full)
                .unwrap();
            assert!(hit, "threshold {threshold} must share the artifact");
            assert!(Arc::ptr_eq(&d, &d1));
        }
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn decode_fills_lazily_on_entries_compiled_without_it() {
        let cache = CompileCache::new();
        let cfg = ProcessorConfig::small();
        let src = "  stid r1\n  sts [r1+0], r1\n  exit";
        // Assembled without asking for the decode...
        let (_, hit) = cache.get_or_assemble(src, &cfg).unwrap();
        assert!(!hit);
        assert_eq!(cache.decode_misses(), 0);
        // ...the first decoded lookup derives and caches it...
        let (d1, hit1) = cache.get_or_assemble_decoded(src, &cfg).unwrap();
        assert!(hit1, "same artifact: a compile hit");
        assert_eq!((cache.decode_hits(), cache.decode_misses()), (0, 1));
        // ...and every later decoded lookup shares it.
        let (d2, _) = cache.get_or_assemble_decoded(src, &cfg).unwrap();
        assert!(Arc::ptr_eq(&d1, &d2));
        assert_eq!((cache.decode_hits(), cache.decode_misses()), (1, 1));
    }

    #[test]
    fn tracer_sees_hits_misses_decodes_and_passes() {
        let tracer = Arc::new(Tracer::new(256));
        let cache = CompileCache::new().with_tracer(Arc::clone(&tracer));
        let cfg = ProcessorConfig::small();
        let k = kernel(3);
        // Fresh decoded compile: miss + one-off decode miss + passes.
        cache
            .get_or_compile_decoded(&k, &cfg, OptLevel::Full)
            .unwrap();
        // Repeat: hit + decode hit.
        cache
            .get_or_compile_decoded(&k, &cfg, OptLevel::Full)
            .unwrap();
        // Assembly miss, labelled by content hash.
        cache.get_or_assemble("  stid r1\n  exit", &cfg).unwrap();
        let ev = tracer.events();
        let count = |f: &dyn Fn(&TraceEvent) -> bool| ev.iter().filter(|e| f(e)).count();
        assert_eq!(
            count(&|e| matches!(e, TraceEvent::CompileCacheMiss { .. })),
            2
        );
        assert_eq!(
            count(&|e| matches!(e, TraceEvent::CompileCacheHit { decoded: true, .. })),
            1
        );
        assert_eq!(
            count(&|e| matches!(e, TraceEvent::DecodeCacheMiss { .. })),
            1
        );
        assert_eq!(
            count(&|e| matches!(e, TraceEvent::DecodeCacheHit { .. })),
            1
        );
        assert!(
            count(&|e| matches!(e, TraceEvent::PassRun { .. })) > 0,
            "full-opt compiles report their passes"
        );
        // IR events carry the kernel name; asm events a hash label.
        assert!(ev
            .iter()
            .any(|e| matches!(e, TraceEvent::CompileCacheMiss { kernel } if kernel == "k")));
        assert!(ev.iter().any(
            |e| matches!(e, TraceEvent::CompileCacheMiss { kernel } if kernel.starts_with("asm#"))
        ));
    }

    #[test]
    fn flight_recorder_sees_cache_outcomes() {
        let flight = Arc::new(FlightRecorder::new(64));
        let cache = CompileCache::new().with_flight(Arc::clone(&flight));
        let cfg = ProcessorConfig::small();
        let k = kernel(5);
        // Fresh decoded compile: compile miss + decode miss.
        cache
            .get_or_compile_decoded(&k, &cfg, OptLevel::Full)
            .unwrap();
        // Repeat: compile hit + decode hit.
        cache
            .get_or_compile_decoded(&k, &cfg, OptLevel::Full)
            .unwrap();
        let ev = flight.snapshot();
        let count = |cache: CacheTier, hit: bool| {
            ev.iter()
                .filter(|r| {
                    matches!(&r.event, FlightEvent::CacheQuery { cache: c, hit: h, .. }
                        if *c == cache && *h == hit)
                })
                .count()
        };
        assert_eq!(count(CacheTier::Compile, false), 1);
        assert_eq!(count(CacheTier::Compile, true), 1);
        assert_eq!(count(CacheTier::Decode, false), 1);
        assert_eq!(count(CacheTier::Decode, true), 1);
        assert!(ev.iter().all(|r| matches!(
            &r.event,
            FlightEvent::CacheQuery { kernel, .. } if kernel == "k"
        )));
    }

    #[test]
    fn cache_is_shareable_across_threads() {
        let cache = Arc::new(CompileCache::new());
        let cfg = ProcessorConfig::small();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let cfg = cfg.clone();
                std::thread::spawn(move || {
                    cache
                        .get_or_compile(&kernel(7), &cfg, OptLevel::Full)
                        .unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // The miss path compiles under the lock: exactly one compile.
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 3);
    }
}
