//! Lowering: instruction selection and emission of a
//! [`simt_isa::Program`] through the existing [`KernelBuilder`].
//!
//! Selection folds constant operands into the ISA's immediate forms
//! (`addi`, `muli`, `shli`, …) so constants that only feed immediate
//! positions never materialize; everything else gets a register from
//! the linear-scan allocator and a register-register instruction.
//! Hardware-loop regions lower onto [`KernelBuilder::begin_loop`] /
//! [`KernelBuilder::end_loop`], which patch the zero-overhead `loop`
//! instruction's end address.

use crate::error::CompileError;
use crate::ir::{BinOp, Inst, Kernel, Op, Ty, UnOp, ValueId};
use crate::passes::{optimize, PipelineReport};
use crate::regalloc::{allocate, linearize, Allocation};
use simt_core::ProcessorConfig;
use simt_isa::{Instruction, KernelBuilder, Opcode, Program};
use std::collections::HashSet;

/// How hard to optimize before emission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptLevel {
    /// Straight lowering of the IR as written (the baseline the pass
    /// pipeline is measured against).
    None,
    /// The full pipeline: constant folding, strength reduction, CSE,
    /// DCE, iterated to a fixpoint.
    Full,
}

/// A compiled kernel: the program plus what the pipeline did to get it.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    /// The emitted program, ready to load into I-Mem.
    pub program: Program,
    /// Per-pass instruction-count statistics (empty at
    /// [`OptLevel::None`]).
    pub report: PipelineReport,
    /// General-purpose registers the kernel occupies (including the
    /// reserved r0) — the floor for `regs_per_thread`.
    pub regs_used: usize,
    /// Per-PC source attribution: for each emitted instruction, the
    /// IR value id it was lowered from (loop entry/back-edge copies
    /// and the loop instruction itself charge to the loop's value;
    /// the final `exit` is `None`). Always exactly one entry per
    /// program instruction, so a per-PC execution profile indexes it
    /// directly.
    pub source_map: Vec<Option<u32>>,
}

/// Compile an IR kernel for a processor configuration.
pub fn compile(
    kernel: &Kernel,
    config: &ProcessorConfig,
    opt: OptLevel,
) -> Result<CompiledKernel, CompileError> {
    config.validate()?;
    kernel.validate()?;
    let depth = kernel.loop_depth();
    if depth > config.loop_stack_depth {
        return Err(CompileError::LoopTooDeep {
            depth,
            limit: config.loop_stack_depth,
        });
    }
    let mut k = kernel.clone();
    let report = match opt {
        OptLevel::Full => optimize(&mut k),
        OptLevel::None => PipelineReport {
            insts_before: k.live_insts(),
            insts_after: k.live_insts(),
            ..Default::default()
        },
    };
    debug_assert!(k.validate().is_ok(), "passes broke the IR:\n{k}");

    let materialized = select_materialized(&k);
    let lin = linearize(&k);
    let alloc = allocate(
        &k,
        &lin,
        &materialized,
        config.regs_per_thread,
        config.predicates,
    )?;

    let mut b = KernelBuilder::new();
    let mut source_map = Vec::new();
    emit_region(&k, k.body(), &mut b, &alloc, &materialized, &mut source_map)?;
    b.exit();
    source_map.push(None);
    let program = b.build()?;
    debug_assert_eq!(
        source_map.len(),
        program.len(),
        "source map out of lockstep with emission"
    );
    if program.len() > config.imem_capacity {
        return Err(CompileError::ProgramTooLarge {
            len: program.len(),
            capacity: config.imem_capacity,
        });
    }
    Ok(CompiledKernel {
        program,
        report,
        regs_used: alloc.regs_used.max(1),
        source_map,
    })
}

/// Which operand (if a constant) folds into the instruction's immediate
/// field. Commutative ops accept the constant on either side; shifts
/// only on the right, and only when the amount fits the 16-bit field.
fn inline_slot(k: &Kernel, inst: &Inst) -> Option<usize> {
    let Op::Bin(b) = inst.op else { return None };
    let c0 = k.as_const(inst.args[0]);
    let c1 = k.as_const(inst.args[1]);
    match b {
        BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor => {
            if c1.is_some() {
                Some(1)
            } else if c0.is_some() {
                Some(0)
            } else {
                None
            }
        }
        BinOp::Sub => c1.map(|_| 1),
        BinOp::Shl | BinOp::Lsr | BinOp::Asr => match c1 {
            Some(c) if (0..=0xFFFF).contains(&(c as i64)) => Some(1),
            _ => None,
        },
        _ => None,
    }
}

/// Constants that must be materialized with `movi` (some use is not an
/// immediate position), plus every non-constant word value. Carried
/// values are read by the back-edge copies, so constants referenced by
/// a carried list need a register too.
fn select_materialized(k: &Kernel) -> HashSet<ValueId> {
    let mut mat = HashSet::new();
    k.for_each_inst(|v, inst| {
        if inst.op.ty() == Ty::Word && !matches!(inst.op, Op::Const(_)) {
            mat.insert(v);
        }
        let slot = inline_slot(k, inst);
        for (i, &a) in inst.args.iter().enumerate() {
            if k.as_const(a).is_some() && slot != Some(i) {
                mat.insert(a);
            }
        }
        if let Some(cs) = &inst.carried {
            for &c in cs {
                if k.as_const(c).is_some() {
                    mat.insert(c);
                }
            }
        }
    });
    mat
}

/// True if lowering the region would emit at least one instruction
/// (loops around nothing are skipped — the builder rejects empty loop
/// bodies, and the hardware has nothing to repeat).
fn region_emits(k: &Kernel, region: &[ValueId], mat: &HashSet<ValueId>) -> bool {
    region.iter().any(|&v| {
        let inst = k.inst(v);
        match &inst.op {
            Op::Const(_) => mat.contains(&v),
            // Params and results are register names, not instructions;
            // a loop with carried values still emits its back-edge
            // copies, which `emit_region` accounts for separately.
            Op::Param(_) | Op::Result(_) => false,
            Op::Loop(_) => inst
                .body
                .as_ref()
                .is_some_and(|body| region_emits(k, body, mat)),
            _ => true,
        }
    })
}

/// Order a parallel-copy set (`dst ← src`, all conceptually
/// simultaneous) into sequential `mov`s: self-copies drop, a copy whose
/// destination no other pending copy still reads goes next, and a
/// cyclic permutation is broken by parking one destination's old value
/// in the loop's scratch register (reserved by the allocator exactly
/// when a cycle exists).
fn sequence_copies(
    pairs: Vec<(u8, u8)>,
    scratch: Option<u8>,
    loop_v: ValueId,
) -> Result<Vec<(u8, u8)>, CompileError> {
    let mut pending: Vec<(u8, u8)> = pairs.into_iter().filter(|(d, s)| d != s).collect();
    let mut out = Vec::with_capacity(pending.len());
    while !pending.is_empty() {
        if let Some(i) = pending
            .iter()
            .position(|&(d, _)| !pending.iter().any(|&(_, s)| s == d))
        {
            out.push(pending.remove(i));
        } else {
            // Every destination is still read by another copy: a cycle.
            let t = scratch.ok_or(CompileError::Malformed {
                value: loop_v.0,
                detail: "cyclic copy set without a scratch register".into(),
            })?;
            let (d, _) = pending[0];
            out.push((t, d)); // park d's old value
            for p in pending.iter_mut() {
                if p.1 == d {
                    p.1 = t;
                }
            }
        }
    }
    Ok(out)
}

fn emit_region(
    k: &Kernel,
    region: &[ValueId],
    b: &mut KernelBuilder,
    alloc: &Allocation,
    mat: &HashSet<ValueId>,
    src: &mut Vec<Option<u32>>,
) -> Result<(), CompileError> {
    for &v in region {
        let inst = k.inst(v);
        if let Op::Loop(count) = inst.op {
            let body = inst.body.as_ref().expect("validated loop body");
            let params = k.loop_params(v);
            let scratch = alloc.loop_scratch.get(&v).copied();

            // Entry copies: parameter registers take their initial
            // values. Coalesced slots vanish (dst == src); the rest run
            // as a sequenced parallel-copy set before the loop opens —
            // they are needed even if the loop body emits nothing (the
            // results still read the parameter registers).
            let entry: Vec<(u8, u8)> = params
                .iter()
                .zip(&inst.args)
                .map(|(&p, &init)| Ok((reg(alloc, p)?, reg(alloc, init)?)))
                .collect::<Result<_, CompileError>>()?;
            for (d, s) in sequence_copies(entry, scratch, v)? {
                b.emit_instruction(Instruction::new(Opcode::Mov).rd(d).ra(s));
                src.push(Some(v.index() as u32));
            }

            // Back-edge copies: non-coalesced carried slots rotate into
            // the parameter registers at the end of every iteration.
            let carried = inst.carried.clone().unwrap_or_default();
            let back: Vec<(u8, u8)> = params
                .iter()
                .zip(&carried)
                .map(|(&p, &c)| Ok((reg(alloc, p)?, reg(alloc, c)?)))
                .collect::<Result<_, CompileError>>()?;
            let back = sequence_copies(back, scratch, v)?;

            if !region_emits(k, body, mat) && back.is_empty() {
                // Nothing repeats: the parameters keep their entry
                // values, which is exactly the final state.
                continue;
            }
            let open = b.begin_loop(count);
            src.push(Some(v.index() as u32));
            emit_region(k, body, b, alloc, mat, src)?;
            for (d, s) in back {
                b.emit_instruction(Instruction::new(Opcode::Mov).rd(d).ra(s));
                src.push(Some(v.index() as u32));
            }
            b.end_loop(open);
            continue;
        }
        if let Some(mi) = build_instruction(k, v, alloc, mat)? {
            b.emit_instruction(mi);
            src.push(Some(v.index() as u32));
        }
    }
    Ok(())
}

fn reg(alloc: &Allocation, v: ValueId) -> Result<u8, CompileError> {
    alloc.reg.get(&v).copied().ok_or(CompileError::Malformed {
        value: v.index() as u32,
        detail: "value reached emission without a register".into(),
    })
}

fn pred(alloc: &Allocation, v: ValueId) -> Result<u8, CompileError> {
    alloc.pred.get(&v).copied().ok_or(CompileError::Malformed {
        value: v.index() as u32,
        detail: "predicate reached emission without a register".into(),
    })
}

fn bin_opcode(b: BinOp) -> Opcode {
    match b {
        BinOp::Add => Opcode::Add,
        BinOp::Sub => Opcode::Sub,
        BinOp::Mul => Opcode::MulLo,
        BinOp::MulHi => Opcode::MulHi,
        BinOp::MulUHi => Opcode::MuluHi,
        BinOp::Min => Opcode::Min,
        BinOp::Max => Opcode::Max,
        BinOp::And => Opcode::And,
        BinOp::Or => Opcode::Or,
        BinOp::Xor => Opcode::Xor,
        BinOp::Shl => Opcode::Shl,
        BinOp::Lsr => Opcode::Lsr,
        BinOp::Asr => Opcode::Asr,
        BinOp::SatAdd => Opcode::SatAdd,
        BinOp::SatSub => Opcode::SatSub,
    }
}

fn bin_imm_opcode(b: BinOp) -> Opcode {
    match b {
        BinOp::Add => Opcode::Addi,
        BinOp::Sub => Opcode::Subi,
        BinOp::Mul => Opcode::Muli,
        BinOp::And => Opcode::Andi,
        BinOp::Or => Opcode::Ori,
        BinOp::Xor => Opcode::Xori,
        BinOp::Shl => Opcode::Shli,
        BinOp::Lsr => Opcode::Lsri,
        BinOp::Asr => Opcode::Asri,
        _ => unreachable!("{b:?} has no immediate form"),
    }
}

fn un_opcode(u: UnOp) -> Opcode {
    match u {
        UnOp::Abs => Opcode::Abs,
        UnOp::Neg => Opcode::Neg,
        UnOp::Not => Opcode::Not,
        UnOp::Cnot => Opcode::Cnot,
        UnOp::Popc => Opcode::Popc,
        UnOp::Clz => Opcode::Clz,
        UnOp::Brev => Opcode::Brev,
    }
}

fn cmp_opcode(c: crate::ir::CmpOp) -> Opcode {
    use crate::ir::CmpOp::*;
    match c {
        Eq => Opcode::SetpEq,
        Ne => Opcode::SetpNe,
        Lt => Opcode::SetpLt,
        Le => Opcode::SetpLe,
        Gt => Opcode::SetpGt,
        Ge => Opcode::SetpGe,
        Ltu => Opcode::SetpLtu,
        Geu => Opcode::SetpGeu,
    }
}

/// Select and build the machine instruction for one IR instruction
/// (`None` for constants that live purely in immediate fields).
fn build_instruction(
    k: &Kernel,
    v: ValueId,
    alloc: &Allocation,
    mat: &HashSet<ValueId>,
) -> Result<Option<Instruction>, CompileError> {
    let inst = k.inst(v);
    let args = &inst.args;
    let mut mi = match &inst.op {
        // Params and results are names for registers the allocator has
        // already placed; they emit nothing themselves.
        Op::Param(_) | Op::Result(_) => return Ok(None),
        Op::Const(c) => {
            if !mat.contains(&v) {
                return Ok(None);
            }
            Instruction::new(Opcode::Movi)
                .rd(reg(alloc, v)?)
                .imm(*c as u32)
        }
        Op::Tid => Instruction::new(Opcode::Stid).rd(reg(alloc, v)?),
        Op::Ntid => Instruction::new(Opcode::Sntid).rd(reg(alloc, v)?),
        Op::Bin(b) => match inline_slot(k, inst) {
            Some(slot) => {
                let c = k.as_const(args[slot]).expect("inline slot is a constant");
                let other = args[1 - slot];
                Instruction::new(bin_imm_opcode(*b))
                    .rd(reg(alloc, v)?)
                    .ra(reg(alloc, other)?)
                    .imm(c as u32)
            }
            None => Instruction::new(bin_opcode(*b))
                .rd(reg(alloc, v)?)
                .ra(reg(alloc, args[0])?)
                .rb(reg(alloc, args[1])?),
        },
        Op::Un(u) => Instruction::new(un_opcode(*u))
            .rd(reg(alloc, v)?)
            .ra(reg(alloc, args[0])?),
        Op::Mad => Instruction::new(Opcode::MadLo)
            .rd(reg(alloc, v)?)
            .ra(reg(alloc, args[0])?)
            .rb(reg(alloc, args[1])?)
            .rc(reg(alloc, args[2])?),
        Op::MulShr(s) => Instruction::new(Opcode::MulShr)
            .rd(reg(alloc, v)?)
            .ra(reg(alloc, args[0])?)
            .rb(reg(alloc, args[1])?)
            .imm(s & 63),
        Op::ShAdd(s) => Instruction::new(Opcode::ShAdd)
            .rd(reg(alloc, v)?)
            .ra(reg(alloc, args[0])?)
            .rb(reg(alloc, args[1])?)
            .imm(s & 31),
        Op::Rotr(s) => Instruction::new(Opcode::Rotri)
            .rd(reg(alloc, v)?)
            .ra(reg(alloc, args[0])?)
            .imm(s & 0xFFFF),
        Op::Cmp(c) => Instruction::new(cmp_opcode(*c))
            .rd(pred(alloc, v)?)
            .ra(reg(alloc, args[0])?)
            .rb(reg(alloc, args[1])?),
        Op::Select => Instruction::new(Opcode::Selp)
            .rd(reg(alloc, v)?)
            .ra(reg(alloc, args[0])?)
            .rb(reg(alloc, args[1])?)
            .rc(pred(alloc, args[2])?),
        Op::Load(off) => Instruction::new(Opcode::Lds)
            .rd(reg(alloc, v)?)
            .ra(reg(alloc, args[0])?)
            .imm(off & 0xFFFF),
        Op::Store(off) => Instruction::new(Opcode::Sts)
            .ra(reg(alloc, args[0])?)
            .rb(reg(alloc, args[1])?)
            .imm(off & 0xFFFF),
        Op::Loop(_) => unreachable!("loops are emitted by emit_region"),
    };
    if let Some(s) = inst.scale {
        mi = mi.scaled(s);
    }
    if let Some(g) = inst.guard {
        mi = mi.guarded(pred(alloc, g.pred)?, g.negate);
    }
    Ok(Some(mi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::IrBuilder;
    use simt_isa::disassemble;

    fn cfg() -> ProcessorConfig {
        ProcessorConfig::default()
            .with_threads(64)
            .with_shared_words(1024)
    }

    /// The doc-example kernel: shared[tid+64] = 3*shared[tid] + 7.
    fn scale_bias() -> Kernel {
        let mut b = IrBuilder::new("scale_bias");
        let tid = b.tid();
        let x = b.load(tid, 0);
        let c3 = b.iconst(3);
        let x3 = b.mul(x, c3);
        let c7 = b.iconst(7);
        let y = b.add(x3, c7);
        b.store(tid, 64, y);
        b.finish()
    }

    #[test]
    fn lowering_reproduces_the_handwritten_program() {
        // Same shape as the hand-written kernel, except the allocator
        // reuses the load's register once its range ends (r2 for the
        // final sum instead of a fresh r4).
        let out = compile(&scale_bias(), &cfg(), OptLevel::Full).unwrap();
        let expected = simt_isa::assemble(
            "  stid r1
               lds r2, [r1+0]
               muli r3, r2, 3
               addi r2, r3, 7
               sts [r1+64], r2
               exit",
        )
        .unwrap();
        assert_eq!(
            out.program.instructions(),
            expected.instructions(),
            "\n{}",
            disassemble(&out.program)
        );
        assert_eq!(out.regs_used, 4);
    }

    #[test]
    fn source_map_stays_in_lockstep_with_emission() {
        // One entry per emitted instruction, everything attributed
        // except the trailing exit — including loop-carried kernels,
        // whose entry/back-edge copies charge to the loop value.
        let mut b = IrBuilder::new("mapped");
        let tid = b.tid();
        let zero = b.iconst(0);
        let acc = b.begin_loop_carried(5, &[zero]);
        let x = b.load(tid, 0);
        let s = b.add(acc[0], x);
        let res = b.end_loop_carried(&[s]);
        b.store(tid, 64, res[0]);
        let k = b.finish();
        for opt in [OptLevel::None, OptLevel::Full] {
            let out = compile(&k, &cfg(), opt).unwrap();
            assert_eq!(out.source_map.len(), out.program.len());
            let (last, body) = out.source_map.split_last().unwrap();
            assert_eq!(*last, None, "exit carries no source value");
            assert!(
                body.iter().all(|s| s.is_some()),
                "every non-exit PC is attributed: {:?}",
                out.source_map
            );
        }
    }

    #[test]
    fn optimized_is_never_larger_than_naive() {
        let k = scale_bias();
        let naive = compile(&k, &cfg(), OptLevel::None).unwrap();
        let full = compile(&k, &cfg(), OptLevel::Full).unwrap();
        assert!(full.program.len() <= naive.program.len());
    }

    #[test]
    fn strength_reduced_mul_emits_shli() {
        let mut b = IrBuilder::new("by16");
        let tid = b.tid();
        let x = b.load(tid, 0);
        let c = b.iconst(16);
        let y = b.mul(x, c);
        b.store(tid, 64, y);
        let k = b.finish();
        let full = compile(&k, &cfg(), OptLevel::Full).unwrap();
        let ops: Vec<Opcode> = full
            .program
            .instructions()
            .iter()
            .map(|i| i.opcode)
            .collect();
        assert!(ops.contains(&Opcode::Shli), "{ops:?}");
        assert!(!ops.contains(&Opcode::Muli), "{ops:?}");
        // The naive build multiplies.
        let naive = compile(&k, &cfg(), OptLevel::None).unwrap();
        let nops: Vec<Opcode> = naive
            .program
            .instructions()
            .iter()
            .map(|i| i.opcode)
            .collect();
        assert!(nops.contains(&Opcode::Muli), "{nops:?}");
    }

    #[test]
    fn loops_lower_to_hardware_loops() {
        let mut b = IrBuilder::new("looped");
        let tid = b.tid();
        b.begin_loop(6);
        let x = b.load(tid, 0);
        let one = b.iconst(1);
        let y = b.add(x, one);
        b.store(tid, 0, y);
        b.end_loop();
        let k = b.finish();
        let out = compile(&k, &cfg(), OptLevel::Full).unwrap();
        let loops: Vec<&Instruction> = out
            .program
            .instructions()
            .iter()
            .filter(|i| i.opcode == Opcode::Loop)
            .collect();
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].loop_count(), 6);
        assert!(loops[0].loop_end() > 0);
    }

    #[test]
    fn predicates_require_a_predicate_build() {
        let mut b = IrBuilder::new("clamp");
        let tid = b.tid();
        let x = b.load(tid, 0);
        let c = b.iconst(100);
        let p = b.cmp(crate::ir::CmpOp::Lt, x, c);
        let y = b.select(x, c, p);
        b.store(tid, 64, y);
        let k = b.finish();
        assert_eq!(
            compile(&k, &cfg(), OptLevel::Full).unwrap_err(),
            CompileError::PredicatesDisabled
        );
        let out = compile(&k, &cfg().with_predicates(true), OptLevel::Full).unwrap();
        assert!(out
            .program
            .instructions()
            .iter()
            .any(|i| i.opcode == Opcode::Selp));
    }

    #[test]
    fn register_pressure_errors_are_typed() {
        let mut b = IrBuilder::new("wide");
        let tid = b.tid();
        let vals: Vec<_> = (0..30).map(|i| b.load(tid, i)).collect();
        let mut acc = vals[0];
        for &v in &vals[1..] {
            acc = b.add(acc, v);
        }
        b.store(tid, 0, acc);
        let k = b.finish();
        let tight = cfg().with_regs_per_thread(8);
        match compile(&k, &tight, OptLevel::Full) {
            Err(CompileError::OutOfRegisters { available, .. }) => assert_eq!(available, 7),
            other => panic!("expected OutOfRegisters, got {other:?}"),
        }
        // A roomier file compiles the same kernel.
        assert!(compile(&k, &cfg().with_regs_per_thread(64), OptLevel::Full).is_ok());
    }

    fn run_words(
        k: &Kernel,
        cfg: &ProcessorConfig,
        opt: OptLevel,
        out_off: usize,
        out_len: usize,
    ) -> Vec<u32> {
        let compiled = compile(k, cfg, opt).unwrap();
        let mut cpu = simt_core::Processor::new(cfg.clone()).unwrap();
        cpu.load_program(&compiled.program).unwrap();
        cpu.run(simt_core::RunOptions::default()).unwrap();
        cpu.shared().read_words(out_off, out_len).unwrap()
    }

    #[test]
    fn carried_accumulator_lowers_without_backedge_copies() {
        // Σ_{i<8} shared[tid]: the accumulator must live in ONE register
        // updated in place — no `mov` anywhere in the program.
        let mut b = IrBuilder::new("acc");
        let tid = b.tid();
        let zero = b.iconst(0);
        let p = b.begin_loop_carried(8, &[zero]);
        let x = b.load(tid, 0);
        let next = b.add(p[0], x);
        let r = b.end_loop_carried(&[next]);
        b.store(tid, 64, r[0]);
        let k = b.finish();
        let out = compile(&k, &cfg(), OptLevel::Full).unwrap();
        let movs = out
            .program
            .instructions()
            .iter()
            .filter(|i| i.opcode == Opcode::Mov)
            .count();
        assert_eq!(movs, 0, "\n{}", disassemble(&out.program));
        // And it computes 8 * shared[tid] = 0 bit-exactly on the core
        // (shared memory starts zeroed, so seed via the accumulator).
        let words = run_words(&k, &cfg(), OptLevel::Full, 64, 4);
        assert_eq!(words, vec![0; 4]);
    }

    #[test]
    fn state_rotation_emits_ordered_backedge_movs() {
        // y[i] = x[i-1] (a one-sample delay line): carried chain
        // x1' = x0, x2' = x1 — the x2 copy must read x1 *before* the
        // x1 copy overwrites it, exactly the hand-written `mov` order.
        let mut b = IrBuilder::new("delay");
        let tid = b.tid();
        let z0 = b.iconst(0);
        let p = b.begin_loop_carried(4, &[z0, z0]);
        let x0 = b.load(tid, 0);
        b.store(tid, 64, p[0]); // previous iteration's sample
        b.store(tid, 128, p[1]); // the sample before that
        let _ = b.end_loop_carried(&[x0, p[0]]);
        b.store(tid, 192, tid);
        let k = b.finish();
        let out = compile(&k, &cfg(), OptLevel::Full).unwrap();
        let asm = disassemble(&out.program);
        // One entry copy (both params share the zero init) plus the two
        // back-edge rotation movs.
        let movs: Vec<&Instruction> = out
            .program
            .instructions()
            .iter()
            .filter(|i| i.opcode == Opcode::Mov)
            .collect();
        assert_eq!(movs.len(), 3, "entry copy + two back-edge movs\n{asm}");
        // The back-edge chain must run oldest-first: x2 <- x1, then
        // x1 <- x0.
        let back = &movs[1..];
        assert_eq!(back[0].ra, back[1].rd, "rotation order\n{asm}");
    }

    #[test]
    fn swap_loops_sequence_through_the_scratch_register() {
        // carried = [p1, p0] over 3 iterations starting from (1, 2):
        // an odd number of swaps lands on (2, 1).
        let mut b = IrBuilder::new("swap");
        let tid = b.tid();
        let a0 = b.iconst(1);
        let b0 = b.iconst(2);
        let p = b.begin_loop_carried(3, &[a0, b0]);
        b.store(tid, 0, p[0]);
        let r = b.end_loop_carried(&[p[1], p[0]]);
        b.store(tid, 64, r[0]);
        b.store(tid, 128, r[1]);
        let k = b.finish();
        for opt in [OptLevel::None, OptLevel::Full] {
            let words = run_words(&k, &cfg(), opt, 64, 1);
            assert_eq!(words[0], 2, "{opt:?}: a after 3 swaps");
            let words = run_words(&k, &cfg(), opt, 128, 1);
            assert_eq!(words[0], 1, "{opt:?}: b after 3 swaps");
        }
    }

    #[test]
    fn swapped_results_seeding_a_second_loop_compile_and_run() {
        // Regression: loop B seeded with loop A's results in *swapped*
        // order. A's result registers expire at B's header, and
        // without the init live-range extension the linear scan could
        // hand them to B's params crossed — turning B's entry copies
        // into a register cycle with no scratch reserved (back-edge
        // cycle detection never sees entry sets). Must compile at both
        // opt levels and compute (1+2)+2 / (2+2)+2 swapped.
        let mut b = IrBuilder::new("seed_swap");
        let tid = b.tid();
        let c1 = b.iconst(1);
        let c2 = b.iconst(2);
        let one = b.iconst(1);
        let p = b.begin_loop_carried(2, &[c1, c2]);
        let a2 = b.add(p[0], one);
        let b2 = b.add(p[1], one);
        let r = b.end_loop_carried(&[a2, b2]);
        let q = b.begin_loop_carried(2, &[r[1], r[0]]); // swapped seeds
        let qa = b.add(q[0], one);
        let qb = b.add(q[1], one);
        let s = b.end_loop_carried(&[qa, qb]);
        b.store(tid, 64, s[0]);
        b.store(tid, 128, s[1]);
        let k = b.finish();
        for opt in [OptLevel::None, OptLevel::Full] {
            let a = run_words(&k, &cfg(), opt, 64, 1)[0];
            let bb = run_words(&k, &cfg(), opt, 128, 1)[0];
            assert_eq!((a, bb), (6, 5), "{opt:?}");
        }
    }

    #[test]
    fn reentered_carried_loop_does_not_clobber_its_init() {
        // Fuzzer regression (simt-fuzzgen seed 100): a carried loop
        // nested in an outer loop coalesced its parameter with the
        // init (const 3), eliding the entry copy. The back edge then
        // wrote the carried value (-ntid) into the shared register, and
        // the *second* outer iteration's store read the clobber
        // instead of 3. The init must keep its own register whenever
        // an enclosing loop re-enters the carried loop without
        // re-defining it.
        let mut b = IrBuilder::new("reentry_keeps_init");
        let tid = b.tid();
        let ntid = b.ntid();
        let c3 = b.iconst(3);
        let d = b.un(crate::ir::UnOp::Neg, ntid); // any value != 3
        b.begin_loop(2); // outer
        b.store(tid, 64, c3); // re-reads c3 every outer iteration
        let _p = b.begin_loop_carried(1, &[c3]);
        let r = b.end_loop_carried(&[d]);
        b.store(tid, 192, r[0]); // keep the inner loop live
        b.end_loop();
        let k = b.finish();
        for opt in [OptLevel::None, OptLevel::Full] {
            let words = run_words(&k, &cfg(), opt, 64, 4);
            assert_eq!(words, vec![3; 4], "{opt:?}: init clobbered");
        }
    }

    #[test]
    fn outer_param_survives_nested_loop_returning_it() {
        // Fuzzer regression (simt-fuzzgen seed 451): outer carried
        // value = a nested loop's result. Result-to-parameter joins ran
        // lazily per loop, so when the outer loop's carried check asked
        // "is the inner result already a parameter class?" the answer
        // was a stale no — and the outer parameter was coalesced
        // straight into the inner parameter's class. The inner entry
        // copy (param <- init 1) then clobbered the outer parameter
        // before the body read it.
        let mut b = IrBuilder::new("outer_param_vs_inner_entry");
        let tid = b.tid();
        let c1 = b.iconst(1);
        let x0 = b.iconst(5);
        let q = b.begin_loop_carried(2, &[x0]); // outer, q0 = 5
        let _p = b.begin_loop_carried(1, &[c1]); // inner, seeded with 1
        b.store(tid, 64, q[0]); // outer param read inside inner body
        let r = b.end_loop_carried(&[q[0]]); // inner returns q0
        let s = b.end_loop_carried(&[r[0]]); // outer carries it back
        b.store(tid, 192, s[0]);
        let k = b.finish();
        for opt in [OptLevel::None, OptLevel::Full] {
            let inner = run_words(&k, &cfg(), opt, 64, 4);
            assert_eq!(inner, vec![5; 4], "{opt:?}: outer param clobbered");
            let after = run_words(&k, &cfg(), opt, 192, 4);
            assert_eq!(after, vec![5; 4], "{opt:?}: carried chain broken");
        }
    }

    #[test]
    fn loop_results_read_the_final_value_after_the_loop() {
        // A walking index: idx starts at tid, adds 3 per iteration; the
        // result after 5 iterations is tid + 15.
        let mut b = IrBuilder::new("walk");
        let tid = b.tid();
        let p = b.begin_loop_carried(5, &[tid]);
        let three = b.iconst(3);
        let next = b.add(p[0], three);
        let r = b.end_loop_carried(&[next]);
        b.store(tid, 64, r[0]);
        let k = b.finish();
        for opt in [OptLevel::None, OptLevel::Full] {
            let words = run_words(&k, &cfg(), opt, 64, 8);
            for (t, &w) in words.iter().enumerate() {
                assert_eq!(w, t as u32 + 15, "{opt:?}: thread {t}");
            }
        }
    }

    #[test]
    fn imem_capacity_is_enforced() {
        let mut b = IrBuilder::new("big");
        let tid = b.tid();
        let mut v = b.load(tid, 0);
        for _ in 0..600 {
            v = b.add(v, tid);
            b.store(tid, 0, v);
        }
        let k = b.finish();
        match compile(&k, &cfg(), OptLevel::Full) {
            Err(CompileError::ProgramTooLarge { capacity, .. }) => assert_eq!(capacity, 512),
            other => panic!("expected ProgramTooLarge, got {other:?}"),
        }
    }
}
