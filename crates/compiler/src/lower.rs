//! Lowering: instruction selection and emission of a
//! [`simt_isa::Program`] through the existing [`KernelBuilder`].
//!
//! Selection folds constant operands into the ISA's immediate forms
//! (`addi`, `muli`, `shli`, …) so constants that only feed immediate
//! positions never materialize; everything else gets a register from
//! the linear-scan allocator and a register-register instruction.
//! Hardware-loop regions lower onto [`KernelBuilder::begin_loop`] /
//! [`KernelBuilder::end_loop`], which patch the zero-overhead `loop`
//! instruction's end address.

use crate::error::CompileError;
use crate::ir::{BinOp, Inst, Kernel, Op, Ty, UnOp, ValueId};
use crate::passes::{optimize, PipelineReport};
use crate::regalloc::{allocate, linearize, Allocation};
use simt_core::ProcessorConfig;
use simt_isa::{Instruction, KernelBuilder, Opcode, Program};
use std::collections::HashSet;

/// How hard to optimize before emission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptLevel {
    /// Straight lowering of the IR as written (the baseline the pass
    /// pipeline is measured against).
    None,
    /// The full pipeline: constant folding, strength reduction, CSE,
    /// DCE, iterated to a fixpoint.
    Full,
}

/// A compiled kernel: the program plus what the pipeline did to get it.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    /// The emitted program, ready to load into I-Mem.
    pub program: Program,
    /// Per-pass instruction-count statistics (empty at
    /// [`OptLevel::None`]).
    pub report: PipelineReport,
    /// General-purpose registers the kernel occupies (including the
    /// reserved r0) — the floor for `regs_per_thread`.
    pub regs_used: usize,
}

/// Compile an IR kernel for a processor configuration.
pub fn compile(
    kernel: &Kernel,
    config: &ProcessorConfig,
    opt: OptLevel,
) -> Result<CompiledKernel, CompileError> {
    config.validate()?;
    kernel.validate()?;
    let mut k = kernel.clone();
    let report = match opt {
        OptLevel::Full => optimize(&mut k),
        OptLevel::None => PipelineReport {
            insts_before: k.live_insts(),
            insts_after: k.live_insts(),
            ..Default::default()
        },
    };
    debug_assert!(k.validate().is_ok(), "passes broke the IR:\n{k}");

    let materialized = select_materialized(&k);
    let lin = linearize(&k);
    let alloc = allocate(
        &k,
        &lin,
        &materialized,
        config.regs_per_thread,
        config.predicates,
    )?;

    let mut b = KernelBuilder::new();
    emit_region(&k, k.body(), &mut b, &alloc, &materialized)?;
    b.exit();
    let program = b.build()?;
    if program.len() > config.imem_capacity {
        return Err(CompileError::ProgramTooLarge {
            len: program.len(),
            capacity: config.imem_capacity,
        });
    }
    Ok(CompiledKernel {
        program,
        report,
        regs_used: alloc.regs_used.max(1),
    })
}

/// Which operand (if a constant) folds into the instruction's immediate
/// field. Commutative ops accept the constant on either side; shifts
/// only on the right, and only when the amount fits the 16-bit field.
fn inline_slot(k: &Kernel, inst: &Inst) -> Option<usize> {
    let Op::Bin(b) = inst.op else { return None };
    let c0 = k.as_const(inst.args[0]);
    let c1 = k.as_const(inst.args[1]);
    match b {
        BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor => {
            if c1.is_some() {
                Some(1)
            } else if c0.is_some() {
                Some(0)
            } else {
                None
            }
        }
        BinOp::Sub => c1.map(|_| 1),
        BinOp::Shl | BinOp::Lsr | BinOp::Asr => match c1 {
            Some(c) if (0..=0xFFFF).contains(&(c as i64)) => Some(1),
            _ => None,
        },
        _ => None,
    }
}

/// Constants that must be materialized with `movi` (some use is not an
/// immediate position), plus every non-constant word value.
fn select_materialized(k: &Kernel) -> HashSet<ValueId> {
    let mut mat = HashSet::new();
    k.for_each_inst(|v, inst| {
        if inst.op.ty() == Ty::Word && !matches!(inst.op, Op::Const(_)) {
            mat.insert(v);
        }
        let slot = inline_slot(k, inst);
        for (i, &a) in inst.args.iter().enumerate() {
            if k.as_const(a).is_some() && slot != Some(i) {
                mat.insert(a);
            }
        }
    });
    mat
}

/// True if lowering the region would emit at least one instruction
/// (loops around nothing are skipped — the builder rejects empty loop
/// bodies, and the hardware has nothing to repeat).
fn region_emits(k: &Kernel, region: &[ValueId], mat: &HashSet<ValueId>) -> bool {
    region.iter().any(|&v| {
        let inst = k.inst(v);
        match &inst.op {
            Op::Const(_) => mat.contains(&v),
            Op::Loop(_) => inst
                .body
                .as_ref()
                .is_some_and(|body| region_emits(k, body, mat)),
            _ => true,
        }
    })
}

fn emit_region(
    k: &Kernel,
    region: &[ValueId],
    b: &mut KernelBuilder,
    alloc: &Allocation,
    mat: &HashSet<ValueId>,
) -> Result<(), CompileError> {
    for &v in region {
        let inst = k.inst(v);
        if let Op::Loop(count) = inst.op {
            let body = inst.body.as_ref().expect("validated loop body");
            if !region_emits(k, body, mat) {
                continue;
            }
            let open = b.begin_loop(count);
            emit_region(k, body, b, alloc, mat)?;
            b.end_loop(open);
            continue;
        }
        if let Some(mi) = build_instruction(k, v, alloc, mat)? {
            b.emit_instruction(mi);
        }
    }
    Ok(())
}

fn reg(alloc: &Allocation, v: ValueId) -> Result<u8, CompileError> {
    alloc.reg.get(&v).copied().ok_or(CompileError::Malformed {
        value: v.index() as u32,
        detail: "value reached emission without a register".into(),
    })
}

fn pred(alloc: &Allocation, v: ValueId) -> Result<u8, CompileError> {
    alloc.pred.get(&v).copied().ok_or(CompileError::Malformed {
        value: v.index() as u32,
        detail: "predicate reached emission without a register".into(),
    })
}

fn bin_opcode(b: BinOp) -> Opcode {
    match b {
        BinOp::Add => Opcode::Add,
        BinOp::Sub => Opcode::Sub,
        BinOp::Mul => Opcode::MulLo,
        BinOp::MulHi => Opcode::MulHi,
        BinOp::MulUHi => Opcode::MuluHi,
        BinOp::Min => Opcode::Min,
        BinOp::Max => Opcode::Max,
        BinOp::And => Opcode::And,
        BinOp::Or => Opcode::Or,
        BinOp::Xor => Opcode::Xor,
        BinOp::Shl => Opcode::Shl,
        BinOp::Lsr => Opcode::Lsr,
        BinOp::Asr => Opcode::Asr,
        BinOp::SatAdd => Opcode::SatAdd,
        BinOp::SatSub => Opcode::SatSub,
    }
}

fn bin_imm_opcode(b: BinOp) -> Opcode {
    match b {
        BinOp::Add => Opcode::Addi,
        BinOp::Sub => Opcode::Subi,
        BinOp::Mul => Opcode::Muli,
        BinOp::And => Opcode::Andi,
        BinOp::Or => Opcode::Ori,
        BinOp::Xor => Opcode::Xori,
        BinOp::Shl => Opcode::Shli,
        BinOp::Lsr => Opcode::Lsri,
        BinOp::Asr => Opcode::Asri,
        _ => unreachable!("{b:?} has no immediate form"),
    }
}

fn un_opcode(u: UnOp) -> Opcode {
    match u {
        UnOp::Abs => Opcode::Abs,
        UnOp::Neg => Opcode::Neg,
        UnOp::Not => Opcode::Not,
        UnOp::Cnot => Opcode::Cnot,
        UnOp::Popc => Opcode::Popc,
        UnOp::Clz => Opcode::Clz,
        UnOp::Brev => Opcode::Brev,
    }
}

fn cmp_opcode(c: crate::ir::CmpOp) -> Opcode {
    use crate::ir::CmpOp::*;
    match c {
        Eq => Opcode::SetpEq,
        Ne => Opcode::SetpNe,
        Lt => Opcode::SetpLt,
        Le => Opcode::SetpLe,
        Gt => Opcode::SetpGt,
        Ge => Opcode::SetpGe,
        Ltu => Opcode::SetpLtu,
        Geu => Opcode::SetpGeu,
    }
}

/// Select and build the machine instruction for one IR instruction
/// (`None` for constants that live purely in immediate fields).
fn build_instruction(
    k: &Kernel,
    v: ValueId,
    alloc: &Allocation,
    mat: &HashSet<ValueId>,
) -> Result<Option<Instruction>, CompileError> {
    let inst = k.inst(v);
    let args = &inst.args;
    let mut mi = match &inst.op {
        Op::Const(c) => {
            if !mat.contains(&v) {
                return Ok(None);
            }
            Instruction::new(Opcode::Movi)
                .rd(reg(alloc, v)?)
                .imm(*c as u32)
        }
        Op::Tid => Instruction::new(Opcode::Stid).rd(reg(alloc, v)?),
        Op::Ntid => Instruction::new(Opcode::Sntid).rd(reg(alloc, v)?),
        Op::Bin(b) => match inline_slot(k, inst) {
            Some(slot) => {
                let c = k.as_const(args[slot]).expect("inline slot is a constant");
                let other = args[1 - slot];
                Instruction::new(bin_imm_opcode(*b))
                    .rd(reg(alloc, v)?)
                    .ra(reg(alloc, other)?)
                    .imm(c as u32)
            }
            None => Instruction::new(bin_opcode(*b))
                .rd(reg(alloc, v)?)
                .ra(reg(alloc, args[0])?)
                .rb(reg(alloc, args[1])?),
        },
        Op::Un(u) => Instruction::new(un_opcode(*u))
            .rd(reg(alloc, v)?)
            .ra(reg(alloc, args[0])?),
        Op::Mad => Instruction::new(Opcode::MadLo)
            .rd(reg(alloc, v)?)
            .ra(reg(alloc, args[0])?)
            .rb(reg(alloc, args[1])?)
            .rc(reg(alloc, args[2])?),
        Op::MulShr(s) => Instruction::new(Opcode::MulShr)
            .rd(reg(alloc, v)?)
            .ra(reg(alloc, args[0])?)
            .rb(reg(alloc, args[1])?)
            .imm(s & 63),
        Op::ShAdd(s) => Instruction::new(Opcode::ShAdd)
            .rd(reg(alloc, v)?)
            .ra(reg(alloc, args[0])?)
            .rb(reg(alloc, args[1])?)
            .imm(s & 31),
        Op::Rotr(s) => Instruction::new(Opcode::Rotri)
            .rd(reg(alloc, v)?)
            .ra(reg(alloc, args[0])?)
            .imm(s & 0xFFFF),
        Op::Cmp(c) => Instruction::new(cmp_opcode(*c))
            .rd(pred(alloc, v)?)
            .ra(reg(alloc, args[0])?)
            .rb(reg(alloc, args[1])?),
        Op::Select => Instruction::new(Opcode::Selp)
            .rd(reg(alloc, v)?)
            .ra(reg(alloc, args[0])?)
            .rb(reg(alloc, args[1])?)
            .rc(pred(alloc, args[2])?),
        Op::Load(off) => Instruction::new(Opcode::Lds)
            .rd(reg(alloc, v)?)
            .ra(reg(alloc, args[0])?)
            .imm(off & 0xFFFF),
        Op::Store(off) => Instruction::new(Opcode::Sts)
            .ra(reg(alloc, args[0])?)
            .rb(reg(alloc, args[1])?)
            .imm(off & 0xFFFF),
        Op::Loop(_) => unreachable!("loops are emitted by emit_region"),
    };
    if let Some(s) = inst.scale {
        mi = mi.scaled(s);
    }
    if let Some(g) = inst.guard {
        mi = mi.guarded(pred(alloc, g.pred)?, g.negate);
    }
    Ok(Some(mi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::IrBuilder;
    use simt_isa::disassemble;

    fn cfg() -> ProcessorConfig {
        ProcessorConfig::default()
            .with_threads(64)
            .with_shared_words(1024)
    }

    /// The doc-example kernel: shared[tid+64] = 3*shared[tid] + 7.
    fn scale_bias() -> Kernel {
        let mut b = IrBuilder::new("scale_bias");
        let tid = b.tid();
        let x = b.load(tid, 0);
        let c3 = b.iconst(3);
        let x3 = b.mul(x, c3);
        let c7 = b.iconst(7);
        let y = b.add(x3, c7);
        b.store(tid, 64, y);
        b.finish()
    }

    #[test]
    fn lowering_reproduces_the_handwritten_program() {
        // Same shape as the hand-written kernel, except the allocator
        // reuses the load's register once its range ends (r2 for the
        // final sum instead of a fresh r4).
        let out = compile(&scale_bias(), &cfg(), OptLevel::Full).unwrap();
        let expected = simt_isa::assemble(
            "  stid r1
               lds r2, [r1+0]
               muli r3, r2, 3
               addi r2, r3, 7
               sts [r1+64], r2
               exit",
        )
        .unwrap();
        assert_eq!(
            out.program.instructions(),
            expected.instructions(),
            "\n{}",
            disassemble(&out.program)
        );
        assert_eq!(out.regs_used, 4);
    }

    #[test]
    fn optimized_is_never_larger_than_naive() {
        let k = scale_bias();
        let naive = compile(&k, &cfg(), OptLevel::None).unwrap();
        let full = compile(&k, &cfg(), OptLevel::Full).unwrap();
        assert!(full.program.len() <= naive.program.len());
    }

    #[test]
    fn strength_reduced_mul_emits_shli() {
        let mut b = IrBuilder::new("by16");
        let tid = b.tid();
        let x = b.load(tid, 0);
        let c = b.iconst(16);
        let y = b.mul(x, c);
        b.store(tid, 64, y);
        let k = b.finish();
        let full = compile(&k, &cfg(), OptLevel::Full).unwrap();
        let ops: Vec<Opcode> = full
            .program
            .instructions()
            .iter()
            .map(|i| i.opcode)
            .collect();
        assert!(ops.contains(&Opcode::Shli), "{ops:?}");
        assert!(!ops.contains(&Opcode::Muli), "{ops:?}");
        // The naive build multiplies.
        let naive = compile(&k, &cfg(), OptLevel::None).unwrap();
        let nops: Vec<Opcode> = naive
            .program
            .instructions()
            .iter()
            .map(|i| i.opcode)
            .collect();
        assert!(nops.contains(&Opcode::Muli), "{nops:?}");
    }

    #[test]
    fn loops_lower_to_hardware_loops() {
        let mut b = IrBuilder::new("looped");
        let tid = b.tid();
        b.begin_loop(6);
        let x = b.load(tid, 0);
        let one = b.iconst(1);
        let y = b.add(x, one);
        b.store(tid, 0, y);
        b.end_loop();
        let k = b.finish();
        let out = compile(&k, &cfg(), OptLevel::Full).unwrap();
        let loops: Vec<&Instruction> = out
            .program
            .instructions()
            .iter()
            .filter(|i| i.opcode == Opcode::Loop)
            .collect();
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].loop_count(), 6);
        assert!(loops[0].loop_end() > 0);
    }

    #[test]
    fn predicates_require_a_predicate_build() {
        let mut b = IrBuilder::new("clamp");
        let tid = b.tid();
        let x = b.load(tid, 0);
        let c = b.iconst(100);
        let p = b.cmp(crate::ir::CmpOp::Lt, x, c);
        let y = b.select(x, c, p);
        b.store(tid, 64, y);
        let k = b.finish();
        assert_eq!(
            compile(&k, &cfg(), OptLevel::Full).unwrap_err(),
            CompileError::PredicatesDisabled
        );
        let out = compile(&k, &cfg().with_predicates(true), OptLevel::Full).unwrap();
        assert!(out
            .program
            .instructions()
            .iter()
            .any(|i| i.opcode == Opcode::Selp));
    }

    #[test]
    fn register_pressure_errors_are_typed() {
        let mut b = IrBuilder::new("wide");
        let tid = b.tid();
        let vals: Vec<_> = (0..30).map(|i| b.load(tid, i)).collect();
        let mut acc = vals[0];
        for &v in &vals[1..] {
            acc = b.add(acc, v);
        }
        b.store(tid, 0, acc);
        let k = b.finish();
        let tight = cfg().with_regs_per_thread(8);
        match compile(&k, &tight, OptLevel::Full) {
            Err(CompileError::OutOfRegisters { available, .. }) => assert_eq!(available, 7),
            other => panic!("expected OutOfRegisters, got {other:?}"),
        }
        // A roomier file compiles the same kernel.
        assert!(compile(&k, &cfg().with_regs_per_thread(64), OptLevel::Full).is_ok());
    }

    #[test]
    fn imem_capacity_is_enforced() {
        let mut b = IrBuilder::new("big");
        let tid = b.tid();
        let mut v = b.load(tid, 0);
        for _ in 0..600 {
            v = b.add(v, tid);
            b.store(tid, 0, v);
        }
        let k = b.finish();
        match compile(&k, &cfg(), OptLevel::Full) {
            Err(CompileError::ProgramTooLarge { capacity, .. }) => assert_eq!(capacity, 512),
            other => panic!("expected ProgramTooLarge, got {other:?}"),
        }
    }
}
