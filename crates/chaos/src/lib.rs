//! # simt-chaos — deterministic fault injection and recovery policy
//!
//! Production accelerator pools treat faults as the normal case:
//! transient launch failures, wedged kernels, flaky copy engines and
//! outright dead devices all have to be survived, not aborted on. This
//! crate gives the `simt-runtime` scheduler that posture in a way that
//! stays **testable**: every fault is decided by a pure hash over the
//! fault-plan seed and the command's *stable identity* (stream id,
//! per-stream sequence number, attempt number), never by wall-clock,
//! thread interleaving or shared-RNG draw order. The same
//! [`ChaosConfig`] therefore injects the same faults at the same
//! commands on every run — recovery is differential-testable against a
//! fault-free oracle and pinned in CI like any other artifact.
//!
//! The vocabulary:
//!
//! * [`ChaosConfig`] — seed + per-family rates, installed via
//!   `RuntimeConfig::with_chaos`;
//! * [`FaultPlan`] — the compiled decision oracle the scheduler
//!   consults per command attempt;
//! * [`FaultKind`] — the four injected fault families;
//! * [`RecoveryConfig`] — watchdog budget, bounded retries with
//!   modeled exponential backoff, and the per-device fault budget that
//!   drives [`DeviceHealth`] transitions
//!   (`Healthy → Degraded → Quarantined`).
//!
//! The scheduler models injected faults as *dispatch* failures: the
//! plan also picks the device the faulted attempt is blamed on
//! ([`FaultPlan::decide`] returns a [`PlannedFault`] carrying it), so
//! per-device fault accounting and quarantine timing are as
//! deterministic as the injections themselves.

#![warn(missing_docs)]

/// The injected fault families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The launch was dropped on its way to the device (recoverable by
    /// a plain retry).
    TransientLaunch,
    /// The kernel wedged on the device; the watchdog kills it after the
    /// configured modeled-cycle budget and the attempt resolves as a
    /// timeout.
    HungKernel,
    /// The copy engine corrupted / dropped the transfer.
    CopyFault,
    /// The blamed device is failing *every* command handed to it (a
    /// sticky whole-device failure — the quarantine driver).
    DeviceFailure,
}

impl FaultKind {
    /// Stable label used for metrics (`faults_injected_total{family}`)
    /// and flight-recorder events.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::TransientLaunch => "transient_launch",
            FaultKind::HungKernel => "hung_kernel",
            FaultKind::CopyFault => "copy_fault",
            FaultKind::DeviceFailure => "device_failure",
        }
    }
}

/// Per-device health, driven by the scheduler's fault tracker against
/// [`RecoveryConfig::degrade_after`] / [`RecoveryConfig::quarantine_after`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceHealth {
    /// Inside the fault budget; full placement member.
    Healthy,
    /// Accumulating faults; still placed on, but one step from the
    /// door.
    Degraded,
    /// Over the fault budget: excluded from stream placement and graph
    /// replay until `Runtime::reset_device` readmits it.
    Quarantined,
}

impl DeviceHealth {
    /// Numeric severity for gauges: 0 healthy, 1 degraded, 2
    /// quarantined.
    pub fn severity(&self) -> u64 {
        match self {
            DeviceHealth::Healthy => 0,
            DeviceHealth::Degraded => 1,
            DeviceHealth::Quarantined => 2,
        }
    }
}

/// A sticky whole-device failure: from per-stream sequence number
/// `from_seq` on, every launch whose pseudo-dispatch lands on `device`
/// fails with [`FaultKind::DeviceFailure`] — until the device crosses
/// its fault budget and is quarantined (at which point it stops
/// receiving dispatches), or an operator `reset_device` readmits it
/// (modeling a replaced part: the sticky fault is retired with it).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StickyDevice {
    /// The failing device.
    pub device: usize,
    /// First per-stream sequence number the failure applies to.
    pub from_seq: u64,
}

/// Seeded fault-injection configuration. Rates are per command
/// *attempt* (a retried command redraws), in `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Seed every fault decision derives from.
    pub seed: u64,
    /// Probability a launch attempt fails transiently.
    pub transient_launch_rate: f64,
    /// Probability a launch attempt hangs (watchdog timeout).
    pub hung_kernel_rate: f64,
    /// Probability a copy attempt hits a copy-engine fault.
    pub copy_fault_rate: f64,
    /// Optional sticky whole-device failure.
    pub sticky: Option<StickyDevice>,
}

impl ChaosConfig {
    /// A plan seeded with `seed` and all rates zero.
    pub fn new(seed: u64) -> Self {
        ChaosConfig {
            seed,
            transient_launch_rate: 0.0,
            hung_kernel_rate: 0.0,
            copy_fault_rate: 0.0,
            sticky: None,
        }
    }

    /// Set the transient launch-failure rate.
    pub fn with_transient_launch_rate(mut self, rate: f64) -> Self {
        self.transient_launch_rate = rate;
        self
    }

    /// Set the hung-kernel rate.
    pub fn with_hung_kernel_rate(mut self, rate: f64) -> Self {
        self.hung_kernel_rate = rate;
        self
    }

    /// Set the copy-engine fault rate.
    pub fn with_copy_fault_rate(mut self, rate: f64) -> Self {
        self.copy_fault_rate = rate;
        self
    }

    /// Install a sticky whole-device failure on `device`, active from
    /// per-stream sequence number `from_seq`.
    pub fn with_sticky_device(mut self, device: usize, from_seq: u64) -> Self {
        self.sticky = Some(StickyDevice { device, from_seq });
        self
    }
}

/// Recovery policy: the watchdog budget, the bounded-retry/backoff
/// schedule, and the per-device fault budget. Lives on
/// `RuntimeConfig` with defaults that change nothing for fault-free
/// workloads.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryConfig {
    /// Modeled-cycle budget the watchdog grants every launch; overruns
    /// (real or injected hangs) resolve as typed timeouts. The default
    /// (`1 << 32` cycles, ~5 s at the paper's clock) is far above any
    /// honest kernel in the zoo.
    pub watchdog_cycle_budget: u64,
    /// Total attempts per command, the first included. `1` disables
    /// retries.
    pub max_attempts: u32,
    /// Backoff charged to the stream's virtual timeline before retry
    /// `n` (1-based): `base << (n - 1)`, capped.
    pub backoff_base_cycles: u64,
    /// Upper bound on a single backoff.
    pub backoff_cap_cycles: u64,
    /// Faults a device accumulates before it is marked
    /// [`DeviceHealth::Degraded`].
    pub degrade_after: u64,
    /// Faults a device accumulates before it is quarantined (the fault
    /// budget).
    pub quarantine_after: u64,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            watchdog_cycle_budget: 1 << 32,
            max_attempts: 4,
            backoff_base_cycles: 64,
            backoff_cap_cycles: 1 << 20,
            degrade_after: 2,
            quarantine_after: 5,
        }
    }
}

impl RecoveryConfig {
    /// Modeled backoff cycles charged before retry `attempt` (1-based:
    /// the first retry is attempt 1). Exponential, capped.
    pub fn backoff_cycles(&self, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(1).min(63);
        self.backoff_base_cycles
            .saturating_shl(shift)
            .min(self.backoff_cap_cycles)
    }
}

/// A fault the plan decided to inject into one command attempt: the
/// family plus the device the attempt is blamed on (the pseudo-dispatch
/// target — see the crate docs for why blame is plan-derived rather
/// than taken from the executing worker).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedFault {
    /// Fault family.
    pub kind: FaultKind,
    /// Device the faulted attempt is charged to.
    pub device: usize,
}

/// Domain-separation salts for the per-family draws.
const SALT_BLAME: u64 = 0x1;
const SALT_TRANSIENT: u64 = 0x2;
const SALT_HUNG: u64 = 0x3;
const SALT_COPY: u64 = 0x4;

/// SplitMix64 finalizer: the bit mixer behind every fault decision.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The compiled decision oracle: rates fixed to integer thresholds,
/// consulted by the scheduler once per command attempt. Pure — two
/// plans from the same config answer identically forever.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    /// Per-family thresholds against a 32-bit draw.
    transient: u64,
    hung: u64,
    copy: u64,
    sticky: Option<StickyDevice>,
}

/// Convert a `[0, 1]` rate into a threshold for a 32-bit uniform draw.
fn threshold(rate: f64) -> u64 {
    (rate.clamp(0.0, 1.0) * 4_294_967_296.0) as u64
}

impl FaultPlan {
    /// Compile `cfg` into a decision oracle.
    pub fn new(cfg: &ChaosConfig) -> Self {
        FaultPlan {
            seed: cfg.seed,
            transient: threshold(cfg.transient_launch_rate),
            hung: threshold(cfg.hung_kernel_rate),
            copy: threshold(cfg.copy_fault_rate),
            sticky: cfg.sticky,
        }
    }

    /// The configured sticky device failure, if any.
    pub fn sticky(&self) -> Option<&StickyDevice> {
        self.sticky.as_ref()
    }

    /// One deterministic 64-bit draw for `(stream, seq, attempt, salt)`.
    fn draw(&self, stream: u64, seq: u64, attempt: u64, salt: u64) -> u64 {
        let mut h = mix(self.seed ^ mix(salt));
        h = mix(h ^ stream);
        h = mix(h ^ seq);
        mix(h ^ attempt)
    }

    /// Does the `(stream, seq, attempt)` draw for `salt` land under
    /// `threshold`?
    fn hit(&self, stream: u64, seq: u64, attempt: u64, salt: u64, threshold: u64) -> bool {
        (self.draw(stream, seq, attempt, salt) >> 32) < threshold
    }

    /// The pseudo-dispatch device an attempt is blamed on: a
    /// deterministic pick over the pool, excluding `avoid` (the device
    /// the previous attempt failed on) when an alternative exists.
    pub fn blame(
        &self,
        devices: usize,
        stream: u64,
        seq: u64,
        attempt: u64,
        avoid: Option<usize>,
    ) -> usize {
        let h = self.draw(stream, seq, attempt, SALT_BLAME);
        match avoid {
            Some(a) if devices > 1 && a < devices => {
                let k = (h % (devices as u64 - 1)) as usize;
                if k >= a {
                    k + 1
                } else {
                    k
                }
            }
            _ => (h % devices.max(1) as u64) as usize,
        }
    }

    /// Decide the fate of one command attempt. `is_copy` selects the
    /// copy-engine family; `avoid` is the device the previous attempt
    /// of this command was blamed on (retries fail over); and
    /// `sticky_active` tells the plan whether the configured sticky
    /// device is still in the placement pool (a quarantined or reset
    /// device receives no dispatches, so it stops faulting them).
    #[allow(clippy::too_many_arguments)]
    pub fn decide(
        &self,
        stream: u64,
        seq: u64,
        attempt: u64,
        is_copy: bool,
        devices: usize,
        avoid: Option<usize>,
        sticky_active: bool,
    ) -> Option<PlannedFault> {
        let device = self.blame(devices, stream, seq, attempt, avoid);
        if is_copy {
            return self
                .hit(stream, seq, attempt, SALT_COPY, self.copy)
                .then_some(PlannedFault {
                    kind: FaultKind::CopyFault,
                    device,
                });
        }
        if sticky_active {
            if let Some(s) = &self.sticky {
                if device == s.device && seq >= s.from_seq {
                    return Some(PlannedFault {
                        kind: FaultKind::DeviceFailure,
                        device,
                    });
                }
            }
        }
        if self.hit(stream, seq, attempt, SALT_TRANSIENT, self.transient) {
            return Some(PlannedFault {
                kind: FaultKind::TransientLaunch,
                device,
            });
        }
        if self.hit(stream, seq, attempt, SALT_HUNG, self.hung) {
            return Some(PlannedFault {
                kind: FaultKind::HungKernel,
                device,
            });
        }
        None
    }
}

/// `saturating_shl` does not exist on u64; local helper with shift
/// clamping semantics (shift ≥ 64 saturates toward the cap by
/// overflowing to max).
trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, shift: u32) -> u64 {
        if self == 0 {
            return 0;
        }
        if shift >= self.leading_zeros() {
            u64::MAX
        } else {
            self << shift
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(seed: u64) -> FaultPlan {
        FaultPlan::new(
            &ChaosConfig::new(seed)
                .with_transient_launch_rate(0.25)
                .with_hung_kernel_rate(0.1)
                .with_copy_fault_rate(0.2),
        )
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = plan(7);
        let b = plan(7);
        let c = plan(8);
        let mut diverged = false;
        for seq in 0..256u64 {
            let x = a.decide(0, seq, 0, false, 2, None, false);
            assert_eq!(x, b.decide(0, seq, 0, false, 2, None, false));
            if x != c.decide(0, seq, 0, false, 2, None, false) {
                diverged = true;
            }
        }
        assert!(diverged, "two seeds injecting identically is a bad hash");
    }

    #[test]
    fn rates_are_roughly_honored() {
        let p = plan(42);
        let n = 4096u64;
        let faults = (0..n)
            .filter(|&seq| p.decide(0, seq, 0, false, 2, None, false).is_some())
            .count() as f64;
        // transient 0.25 + hung on the remainder ≈ 0.325 combined.
        let rate = faults / n as f64;
        assert!((0.25..0.42).contains(&rate), "observed rate {rate}");
    }

    #[test]
    fn retries_redraw_and_usually_clear() {
        let p = plan(3);
        let mut cleared = 0;
        let mut faulted = 0;
        for seq in 0..512u64 {
            if p.decide(0, seq, 0, false, 2, None, false).is_some() {
                faulted += 1;
                if p.decide(0, seq, 1, false, 2, None, false).is_none() {
                    cleared += 1;
                }
            }
        }
        assert!(faulted > 50, "rate too low to test: {faulted}");
        assert!(
            cleared * 2 > faulted,
            "retries must redraw: {cleared}/{faulted} cleared"
        );
    }

    #[test]
    fn blame_excludes_the_avoided_device() {
        let p = plan(9);
        for seq in 0..128u64 {
            for avoid in 0..3usize {
                let b = p.blame(3, 0, seq, 1, Some(avoid));
                assert_ne!(b, avoid);
                assert!(b < 3);
            }
        }
        // Single device: nothing to fail over to.
        assert_eq!(p.blame(1, 0, 0, 1, Some(0)), 0);
    }

    #[test]
    fn sticky_device_faults_only_its_own_dispatches() {
        let p = FaultPlan::new(&ChaosConfig::new(5).with_sticky_device(1, 4));
        let mut hits = 0;
        for seq in 0..64u64 {
            let d = p.decide(0, seq, 0, false, 2, None, true);
            match d {
                Some(f) => {
                    assert_eq!(f.kind, FaultKind::DeviceFailure);
                    assert_eq!(f.device, 1);
                    assert!(seq >= 4, "sticky fired before from_seq at {seq}");
                    hits += 1;
                }
                None => assert!(seq < 4 || p.blame(2, 0, seq, 0, None) == 0),
            }
            // Inactive sticky (quarantined / reset device): no faults.
            assert_eq!(p.decide(0, seq, 0, false, 2, None, false), None);
        }
        assert!(hits > 10, "sticky device never blamed: {hits}");
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let r = RecoveryConfig {
            backoff_base_cycles: 64,
            backoff_cap_cycles: 200,
            ..RecoveryConfig::default()
        };
        assert_eq!(r.backoff_cycles(1), 64);
        assert_eq!(r.backoff_cycles(2), 128);
        assert_eq!(r.backoff_cycles(3), 200);
        assert_eq!(r.backoff_cycles(63), 200);
    }

    #[test]
    fn health_severity_is_ordered() {
        assert!(DeviceHealth::Healthy.severity() < DeviceHealth::Degraded.severity());
        assert!(DeviceHealth::Degraded.severity() < DeviceHealth::Quarantined.severity());
    }
}
