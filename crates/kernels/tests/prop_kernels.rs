//! Property tests: every kernel is bit-exact against its host reference
//! on random inputs and shapes — including the IR frontends compiled
//! through the full `simt-compiler` pipeline (loop-carried SSA, LICM,
//! load/store scheduling), which must never change a result.

use proptest::prelude::*;
use simt_compiler::{compile, OptLevel};
use simt_core::{ProcessorConfig, RunOptions};
use simt_kernels::harness::run_program;
use simt_kernels::qformat::{as_i32, as_words};
use simt_kernels::{fir, iir, matmul, qformat, reduce, scan, sobel, vector, workload};

fn arb_i32_vec(n: usize) -> impl Strategy<Value = Vec<i32>> {
    proptest::collection::vec(any::<i32>(), n..=n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn saxpy_random(a in any::<i32>(), seed in 0u64..1000) {
        let x = workload::wide_int_vector(128, seed);
        let y = workload::wide_int_vector(128, seed + 1);
        let (got, _) = vector::saxpy(a, &x, &y).unwrap();
        prop_assert_eq!(got, vector::saxpy_ref(a, &x, &y));
    }

    #[test]
    fn scale_random(shift in 0u32..40, x in arb_i32_vec(64)) {
        let (got, _) = vector::scale(shift, &x).unwrap();
        prop_assert_eq!(got, vector::scale_ref(shift, &x));
    }

    #[test]
    fn satadd_random(x in arb_i32_vec(48), y in arb_i32_vec(48)) {
        let (got, _) = vector::sat_add(&x, &y).unwrap();
        prop_assert_eq!(got, vector::sat_add_ref(&x, &y));
    }

    #[test]
    fn dot_random(log_n in 1u32..=10, seed in 0u64..500) {
        let n = 1usize << log_n;
        let x = workload::wide_int_vector(n, seed);
        let y = workload::wide_int_vector(n, seed + 7);
        let (got, _) = reduce::dot_scaled(&x, &y).unwrap();
        prop_assert_eq!(got, reduce::dot_ref(&x, &y));
    }

    #[test]
    fn scan_random(log_n in 1u32..=10, seed in 0u64..500) {
        let n = 1usize << log_n;
        let x = workload::wide_int_vector(n, seed);
        let (got, _) = scan::scan(&x).unwrap();
        prop_assert_eq!(got, scan::scan_ref(&x));
    }

    #[test]
    fn fir_random(taps in 1usize..=24, seed in 0u64..500) {
        let n = 96;
        let h = workload::q15_signal(taps, seed + 3);
        let x = workload::q15_signal(n + taps - 1, seed);
        let (got, _) = fir::fir(&x, &h, n).unwrap();
        prop_assert_eq!(got, fir::fir_ref(&x, &h, n));
    }

    #[test]
    fn matmul_random(m in 1usize..=8, k in 1usize..=12, log_n in 1u32..=4, seed in 0u64..500) {
        let n = 1usize << log_n;
        prop_assume!(m * n <= 1024);
        let a = workload::q15_matrix(m, k, seed);
        let b = workload::q15_matrix(k, n, seed + 1);
        let (got, _) = matmul::matmul(&a, &b, m, k, n).unwrap();
        prop_assert_eq!(got, matmul::matmul_ref(&a, &b, m, k, n));
    }

    #[test]
    fn iir_random(n in 1usize..=32, m in 1usize..=24, seed in 0u64..500) {
        let q = iir::Biquad::lowpass();
        let mut x = vec![0i32; n * m];
        for (i, v) in workload::q15_signal(n * m, seed).into_iter().enumerate() {
            x[i] = v;
        }
        let (got, _) = iir::iir(&x, n, m, q).unwrap();
        prop_assert_eq!(got, iir::iir_ref(&x, n, m, q));
    }

    #[test]
    fn sobel_random(log_w in 2u32..=5, ih in 2usize..=16, seed in 0u64..500) {
        let iw = 1usize << log_w;
        prop_assume!(iw * ih <= 1024);
        let img: Vec<i32> = workload::int_vector((iw + 2) * (ih + 2), seed);
        let (got, _) = sobel::sobel(&img, iw, ih).unwrap();
        prop_assert_eq!(got, sobel::sobel_ref(&img, iw, ih));
    }

    #[test]
    fn q15_mul_matches_mulshr_semantics(a in any::<i32>(), b in any::<i32>()) {
        let host = qformat::q15_mul(a, b);
        let full = ((a as i64) * (b as i64)) >> 15;
        prop_assert_eq!(host, full as i32);
    }

    #[test]
    fn matmul_ir_random(m in 1usize..=8, k in 1usize..=12, log_n in 1u32..=4, seed in 0u64..500) {
        let n = 1usize << log_n;
        prop_assume!(m * n <= 1024);
        let a = workload::q15_matrix(m, k, seed);
        let b = workload::q15_matrix(k, n, seed + 1);
        let cfg = ProcessorConfig::default()
            .with_threads(m * n)
            .with_shared_words(8192);
        let compiled = compile(&matmul::matmul_ir(m, k, n), &cfg, OptLevel::Full).unwrap();
        let r = run_program(
            cfg,
            &compiled.program,
            &[(matmul::A_OFF, &as_words(&a)), (matmul::B_OFF, &as_words(&b))],
            matmul::C_OFF,
            m * n,
            RunOptions::default(),
        )
        .unwrap();
        prop_assert_eq!(as_i32(&r.output), matmul::matmul_ref(&a, &b, m, k, n));
    }

    #[test]
    fn iir_ir_random(n in 1usize..=32, m in 1usize..=24, seed in 0u64..500) {
        let q = iir::Biquad::lowpass();
        let x = workload::q15_signal(n * m, seed);
        let cfg = ProcessorConfig::default()
            .with_threads(n)
            .with_shared_words(8192);
        let compiled = compile(&iir::iir_ir(n, m, q), &cfg, OptLevel::Full).unwrap();
        let r = run_program(
            cfg,
            &compiled.program,
            &[(iir::X_OFF, &as_words(&x))],
            iir::Y_OFF,
            n * m,
            RunOptions::default(),
        )
        .unwrap();
        prop_assert_eq!(as_i32(&r.output), iir::iir_ref(&x, n, m, q));
    }

    // Fixed-point property for the new passes: LICM + the load/store
    // schedule run inside `optimize()`, and the optimized lowering of
    // the fir/reduce families must stay bit-exact against the host
    // references for every shape — reordering never changes results.
    #[test]
    fn fir_ir_full_pipeline_is_fixed_point(taps in 1usize..=24, seed in 0u64..500) {
        let n = 96;
        let h = workload::q15_signal(taps, seed + 3);
        let x = workload::q15_signal(n + taps - 1, seed);
        let cfg = ProcessorConfig::default()
            .with_threads(n)
            .with_shared_words(8192);
        let compiled = compile(&fir::fir_ir(taps), &cfg, OptLevel::Full).unwrap();
        let r = run_program(
            cfg,
            &compiled.program,
            &[(fir::X_OFF, &as_words(&x)), (fir::H_OFF, &as_words(&h))],
            fir::Y_OFF,
            n,
            RunOptions::default(),
        )
        .unwrap();
        prop_assert_eq!(as_i32(&r.output), fir::fir_ref(&x, &h, n));
    }

    #[test]
    fn reduce_ir_full_pipeline_is_fixed_point(log_n in 1u32..=10, seed in 0u64..500) {
        let n = 1usize << log_n;
        let x = workload::wide_int_vector(n, seed);
        let y = workload::wide_int_vector(n, seed + 7);
        let cfg = ProcessorConfig::default()
            .with_threads(n)
            .with_shared_words(4096);
        // Scaled-tree dot product through the full pipeline.
        let compiled = compile(&reduce::dot_ir(n), &cfg, OptLevel::Full).unwrap();
        let r = run_program(
            cfg.clone(),
            &compiled.program,
            &[(reduce::X_OFF, &as_words(&x)), (reduce::Y_OFF, &as_words(&y))],
            reduce::SCRATCH,
            1,
            RunOptions::default(),
        )
        .unwrap();
        prop_assert_eq!(r.output[0] as i32, reduce::dot_ref(&x, &y));
        // Scaled-tree sum likewise.
        let compiled = compile(&reduce::sum_ir(n), &cfg, OptLevel::Full).unwrap();
        let r = run_program(
            cfg,
            &compiled.program,
            &[(reduce::X_OFF, &as_words(&x))],
            reduce::SCRATCH,
            1,
            RunOptions::default(),
        )
        .unwrap();
        prop_assert_eq!(r.output[0] as i32, reduce::sum_ref(&x));
    }
}
