//! Q15 FIR filter — the signal-processing workload class the paper's
//! fixed-point design targets (§2.1).
//!
//! One thread per output sample: `y[i] = Σ_j (h[j]·x[i+j]) >> 15`, taps
//! broadcast from shared memory (the multi-port memory serves the same
//! address to all read ports without banking conflicts — the §2 design
//! point).

use crate::harness::{run_kernel, KernelError, KernelResult};
use crate::qformat::{as_i32, as_words, q15_mac};
use simt_compiler::{IrBuilder, Kernel};
use simt_core::{ProcessorConfig, RunOptions};
use std::fmt::Write;

/// Input samples offset (n + taps − 1 words).
pub const X_OFF: usize = 0;
/// Tap offset.
pub const H_OFF: usize = 2048;
/// Output offset.
pub const Y_OFF: usize = 4096;

/// Generate the unrolled FIR source for `taps` coefficients.
pub fn fir_asm(taps: usize) -> String {
    assert!((1..=64).contains(&taps), "taps {taps} out of 1..=64");
    let mut s = String::from(
        "  stid r1
           movi r5, 0
           movi r4, 0\n",
    );
    for j in 0..taps {
        let _ = write!(
            s,
            "  lds r2, [r1+{xj}]
           lds r3, [r5+{hj}]
           mulshr r2, r2, r3, 15
           add r4, r4, r2\n",
            xj = X_OFF + j,
            hj = H_OFF + j,
        );
    }
    s.push_str(&format!("  sts [r1+{Y_OFF}], r4\n  exit\n"));
    s
}

/// IR frontend for the unrolled FIR: per tap, an explicit sample
/// address (`tid + j`), a tap broadcast load off a zero base, a Q15
/// `mulshr` and an accumulate. The optimizer folds the per-tap address
/// adds into the load offsets, merges the recomputed zero constants,
/// and elides the `acc = 0 + term0` seed add — landing two
/// instructions *under* the hand-written [`fir_asm`].
pub fn fir_ir(taps: usize) -> Kernel {
    fir_ir_at(taps, X_OFF, H_OFF, Y_OFF)
}

/// [`fir_ir`] with explicit operand placement, so pipeline stages can
/// chain through arbitrary shared-memory windows.
pub fn fir_ir_at(taps: usize, x_off: usize, h_off: usize, y_off: usize) -> Kernel {
    assert!((1..=64).contains(&taps), "taps {taps} out of 1..=64");
    let mut b = IrBuilder::new(format!("fir{taps}_y{y_off}"));
    let tid = b.tid();
    let zero = b.iconst(0);
    let mut acc = b.iconst(0);
    for j in 0..taps {
        let xo = b.iconst((x_off + j) as i32);
        let xa = b.add(tid, xo);
        let x = b.load(xa, 0);
        let h = b.load(zero, (h_off + j) as u32);
        let term = b.mulshr(x, h, 15);
        acc = b.add(acc, term);
    }
    let yo = b.iconst(y_off as i32);
    let ya = b.add(tid, yo);
    b.store(ya, 0, acc);
    b.finish()
}

/// Run the FIR over `x` (length n + taps − 1) producing n outputs.
pub fn fir(x: &[i32], taps: &[i32], n: usize) -> Result<(Vec<i32>, KernelResult), KernelError> {
    assert_eq!(
        x.len(),
        n + taps.len() - 1,
        "x must have n + taps - 1 samples"
    );
    assert!(n <= 1024);
    let cfg = ProcessorConfig::default()
        .with_threads(n)
        .with_shared_words(8192);
    let r = run_kernel(
        cfg,
        &fir_asm(taps.len()),
        &[(X_OFF, &as_words(x)), (H_OFF, &as_words(taps))],
        Y_OFF,
        n,
        RunOptions::default(),
    )?;
    Ok((as_i32(&r.output), r))
}

/// Host reference with identical fixed-point semantics.
pub fn fir_ref(x: &[i32], taps: &[i32], n: usize) -> Vec<i32> {
    (0..n)
        .map(|i| {
            taps.iter()
                .enumerate()
                .fold(0i32, |acc, (j, &h)| q15_mac(acc, x[i + j], h))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qformat::{from_q15, to_q15};
    use crate::workload::{lowpass_taps, q15_signal};

    #[test]
    fn fir_matches_reference() {
        let n = 256;
        let taps = lowpass_taps(16);
        let x = q15_signal(n + taps.len() - 1, 42);
        let (got, _) = fir(&x, &taps, n).unwrap();
        assert_eq!(got, fir_ref(&x, &taps, n));
    }

    #[test]
    fn single_tap_is_scaling() {
        let n = 64;
        let taps = vec![to_q15(0.5)];
        let x = q15_signal(n, 7);
        let (got, _) = fir(&x, &taps, n).unwrap();
        for (g, xi) in got.iter().zip(&x) {
            assert_eq!(*g, (xi * taps[0]) >> 15);
        }
    }

    #[test]
    fn lowpass_attenuates_oscillation() {
        // A ±0.5 alternating signal through a 16-tap low-pass should come
        // out close to zero.
        let n = 128;
        let taps = lowpass_taps(16);
        let x: Vec<i32> = (0..n + 15)
            .map(|i| to_q15(if i % 2 == 0 { 0.5 } else { -0.5 }))
            .collect();
        let (got, _) = fir(&x, &taps, n).unwrap();
        for &g in &got[8..] {
            assert!(from_q15(g).abs() < 0.08, "residual {}", from_q15(g));
        }
    }

    #[test]
    fn fir_ir_is_bit_exact_against_the_host_reference() {
        use crate::harness::run_program;
        use simt_compiler::{compile, OptLevel};
        let n = 128;
        let taps = lowpass_taps(16);
        let x = q15_signal(n + taps.len() - 1, 77);
        let cfg = ProcessorConfig::default()
            .with_threads(n)
            .with_shared_words(8192);
        let compiled = compile(&fir_ir(taps.len()), &cfg, OptLevel::Full).unwrap();
        let r = run_program(
            cfg,
            &compiled.program,
            &[(X_OFF, &as_words(&x)), (H_OFF, &as_words(&taps))],
            Y_OFF,
            n,
            RunOptions::default(),
        )
        .unwrap();
        assert_eq!(as_i32(&r.output), fir_ref(&x, &taps, n));
    }

    #[test]
    fn fir_pipeline_beats_both_naive_and_handwritten() {
        use simt_compiler::{compile, OptLevel};
        let taps = 16;
        let cfg = ProcessorConfig::default()
            .with_threads(128)
            .with_shared_words(8192);
        let k = fir_ir(taps);
        let naive = compile(&k, &cfg, OptLevel::None).unwrap();
        let full = compile(&k, &cfg, OptLevel::Full).unwrap();
        let hand = simt_isa::assemble(&fir_asm(taps)).unwrap();
        assert!(full.program.len() < naive.program.len());
        // The optimizer elides the zero-accumulator movi and the first
        // accumulate, beating the hand-written kernel by two.
        assert_eq!(full.program.len() + 2, hand.len());
    }

    #[test]
    fn cycle_cost_scales_with_taps() {
        let n = 128;
        let t8 = lowpass_taps(8);
        let t32 = lowpass_taps(32);
        let x8 = q15_signal(n + 7, 1);
        let x32 = q15_signal(n + 31, 1);
        let (_, r8) = fir(&x8, &t8, n).unwrap();
        let (_, r32) = fir(&x32, &t32, n).unwrap();
        assert!(r32.stats.cycles > 3 * r8.stats.cycles);
    }
}
