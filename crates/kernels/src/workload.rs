//! Deterministic workload generators (seeded — benches and tests get
//! reproducible inputs).

use crate::qformat::to_q15;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A vector of small-ish integers (|v| < 2^20, so integer kernels avoid
/// uninteresting wraparound unless they ask for it).
pub fn int_vector(n: usize, seed: u64) -> Vec<i32> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| rng.gen_range(-(1 << 20)..(1 << 20)))
        .collect()
}

/// A full-range integer vector (exercises wraparound).
pub fn wide_int_vector(n: usize, seed: u64) -> Vec<i32> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen()).collect()
}

/// A Q15 signal: sum of two sines plus uniform noise, amplitude < 1.
pub fn q15_signal(n: usize, seed: u64) -> Vec<i32> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let t = i as f64;
            let s =
                0.45 * (t * 0.05).sin() + 0.25 * (t * 0.31).sin() + 0.15 * rng.gen_range(-1.0..1.0);
            to_q15(s)
        })
        .collect()
}

/// Low-pass FIR taps in Q15 (simple windowed average, sums to ≈ 1.0).
pub fn lowpass_taps(t: usize) -> Vec<i32> {
    let w: Vec<f64> = (0..t)
        .map(|i| {
            let x = (i as f64 + 0.5) / t as f64 * std::f64::consts::PI;
            x.sin()
        })
        .collect();
    let sum: f64 = w.iter().sum();
    w.iter().map(|&v| to_q15(v / sum)).collect()
}

/// A Q15 matrix in row-major order with entries in (−0.5, 0.5).
pub fn q15_matrix(rows: usize, cols: usize, seed: u64) -> Vec<i32> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..rows * cols)
        .map(|_| to_q15(rng.gen_range(-0.5..0.5)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(int_vector(32, 7), int_vector(32, 7));
        assert_ne!(int_vector(32, 7), int_vector(32, 8));
        assert_eq!(q15_signal(16, 1), q15_signal(16, 1));
    }

    #[test]
    fn taps_normalised() {
        let taps = lowpass_taps(16);
        let sum: i64 = taps.iter().map(|&t| t as i64).sum();
        assert!((sum - (1 << 15)).abs() < 64, "tap sum {sum}");
    }

    #[test]
    fn signal_in_q15_range() {
        for &v in &q15_signal(256, 3) {
            assert!(v.abs() < (1 << 15));
        }
    }
}
