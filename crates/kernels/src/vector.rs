//! Elementwise vector kernels: saxpy, arithmetic scaling, saturating clip.
//!
//! One thread per element; memory layout `x` at [`X_OFF`], `y` at
//! [`Y_OFF`], result at [`Z_OFF`] (offsets in words, n ≤ 1024).

use crate::harness::{run_kernel, KernelError, KernelResult};
use simt_compiler::{IrBuilder, Kernel};
use simt_core::{ProcessorConfig, RunOptions};

/// Offset of the x vector.
pub const X_OFF: usize = 0;
/// Offset of the y vector.
pub const Y_OFF: usize = 1024;
/// Offset of the result vector.
pub const Z_OFF: usize = 2048;

fn config(n: usize) -> ProcessorConfig {
    ProcessorConfig::default()
        .with_threads(n)
        .with_shared_words(4096)
}

/// `z[i] = a*x[i] + y[i]` (integer saxpy).
pub fn saxpy_asm(a: i32) -> String {
    format!(
        "  stid r1
           lds r2, [r1+{X_OFF}]
           lds r3, [r1+{Y_OFF}]
           muli r2, r2, {a}
           add r4, r2, r3
           sts [r1+{Z_OFF}], r4
           exit"
    )
}

/// Run saxpy on the simulator.
pub fn saxpy(a: i32, x: &[i32], y: &[i32]) -> Result<(Vec<i32>, KernelResult), KernelError> {
    assert_eq!(x.len(), y.len());
    let n = x.len();
    let xw = crate::qformat::as_words(x);
    let yw = crate::qformat::as_words(y);
    let r = run_kernel(
        config(n),
        &saxpy_asm(a),
        &[(X_OFF, &xw), (Y_OFF, &yw)],
        Z_OFF,
        n,
        RunOptions::default(),
    )?;
    Ok((crate::qformat::as_i32(&r.output), r))
}

/// Host reference for saxpy.
pub fn saxpy_ref(a: i32, x: &[i32], y: &[i32]) -> Vec<i32> {
    x.iter()
        .zip(y)
        .map(|(&xi, &yi)| a.wrapping_mul(xi).wrapping_add(yi))
        .collect()
}

/// IR frontend for saxpy, written the way a mechanical code generator
/// would emit it: explicit address arithmetic, one constant per use.
/// The `simt-compiler` pipeline folds the address adds into `lds`/`sts`
/// offset fields and recovers the hand-scheduled [`saxpy_asm`] shape
/// (and strength-reduces the multiply to a shift when `a` is a power of
/// two).
pub fn saxpy_ir(a: i32) -> Kernel {
    saxpy_ir_at(a, X_OFF, Y_OFF, Z_OFF)
}

/// [`saxpy_ir`] with explicit operand placement, so pipeline stages can
/// chain through arbitrary shared-memory windows.
pub fn saxpy_ir_at(a: i32, x_off: usize, y_off: usize, z_off: usize) -> Kernel {
    let mut b = IrBuilder::new(format!("saxpy_a{a}_z{z_off}"));
    let tid = b.tid();
    let xo = b.iconst(x_off as i32);
    let xa = b.add(tid, xo);
    let x = b.load(xa, 0);
    let yo = b.iconst(y_off as i32);
    let ya = b.add(tid, yo);
    let y = b.load(ya, 0);
    let ca = b.iconst(a);
    let ax = b.mul(x, ca);
    let z = b.add(ax, y);
    let zo = b.iconst(z_off as i32);
    let za = b.add(tid, zo);
    b.store(za, 0, z);
    b.finish()
}

/// `z[i] = x[i] >> s` arithmetic — the fixed-point normalisation §4.2
/// motivates ("scaling and normalization (to prevent overflow and
/// control wordgrowth) will need arithmetic ... right shifts").
pub fn scale_asm(shift: u32) -> String {
    format!(
        "  stid r1
           lds r2, [r1+{X_OFF}]
           asri r3, r2, {shift}
           sts [r1+{Z_OFF}], r3
           exit"
    )
}

/// Run the arithmetic scaling kernel.
pub fn scale(shift: u32, x: &[i32]) -> Result<(Vec<i32>, KernelResult), KernelError> {
    let n = x.len();
    let xw = crate::qformat::as_words(x);
    let r = run_kernel(
        config(n),
        &scale_asm(shift),
        &[(X_OFF, &xw)],
        Z_OFF,
        n,
        RunOptions::default(),
    )?;
    Ok((crate::qformat::as_i32(&r.output), r))
}

/// Host reference for the scaling kernel (hardware semantics: shift ≥ 32
/// saturates to the sign).
pub fn scale_ref(shift: u32, x: &[i32]) -> Vec<i32> {
    x.iter()
        .map(|&v| if shift >= 32 { v >> 31 } else { v >> shift })
        .collect()
}

/// IR frontend for the arithmetic scaling kernel with explicit operand
/// placement (`out[i] = in[i] >> shift`, arithmetic) — the fixed-point
/// normalisation stage pipelines insert between compute stages.
pub fn scale_ir_at(shift: u32, in_off: usize, out_off: usize) -> Kernel {
    let mut b = IrBuilder::new(format!("scale_s{shift}_o{out_off}"));
    let tid = b.tid();
    let io = b.iconst(in_off as i32);
    let ia = b.add(tid, io);
    let x = b.load(ia, 0);
    let sh = b.iconst(shift as i32);
    let y = b.bin(simt_compiler::BinOp::Asr, x, sh);
    let oo = b.iconst(out_off as i32);
    let oa = b.add(tid, oo);
    b.store(oa, 0, y);
    b.finish()
}

/// `z[i] = clamp(x[i] + y[i])` with saturating arithmetic.
pub fn sat_add_asm() -> String {
    format!(
        "  stid r1
           lds r2, [r1+{X_OFF}]
           lds r3, [r1+{Y_OFF}]
           satadd r4, r2, r3
           sts [r1+{Z_OFF}], r4
           exit"
    )
}

/// Run the saturating add kernel.
pub fn sat_add(x: &[i32], y: &[i32]) -> Result<(Vec<i32>, KernelResult), KernelError> {
    assert_eq!(x.len(), y.len());
    let n = x.len();
    let xw = crate::qformat::as_words(x);
    let yw = crate::qformat::as_words(y);
    let r = run_kernel(
        config(n),
        &sat_add_asm(),
        &[(X_OFF, &xw), (Y_OFF, &yw)],
        Z_OFF,
        n,
        RunOptions::default(),
    )?;
    Ok((crate::qformat::as_i32(&r.output), r))
}

/// Host reference for saturating add.
pub fn sat_add_ref(x: &[i32], y: &[i32]) -> Vec<i32> {
    x.iter()
        .zip(y)
        .map(|(&a, &b)| a.saturating_add(b))
        .collect()
}

/// Offset of the w vector (the fused multiply-add addend).
pub const W_OFF: usize = 3072;

/// `z[i] = x[i]*y[i] + w[i]`, hand-scheduled on the DSP column's single
/// `mad.lo` instruction.
pub fn fma_asm() -> String {
    format!(
        "  stid r1
           lds r2, [r1+{X_OFF}]
           lds r3, [r1+{Y_OFF}]
           lds r4, [r1+{W_OFF}]
           mad.lo r5, r2, r3, r4
           sts [r1+{Z_OFF}], r5
           exit"
    )
}

/// IR frontend for the elementwise fused multiply-add, emitted as the
/// mechanical `mul` + `add` pair — the compiler's `mad-fuse` pass is
/// what recovers the single `mad.lo`, matching [`fma_asm`].
pub fn fma_ir() -> Kernel {
    let mut b = IrBuilder::new("fma");
    let tid = b.tid();
    let xo = b.iconst(X_OFF as i32);
    let xa = b.add(tid, xo);
    let x = b.load(xa, 0);
    let yo = b.iconst(Y_OFF as i32);
    let ya = b.add(tid, yo);
    let y = b.load(ya, 0);
    let wo = b.iconst(W_OFF as i32);
    let wa = b.add(tid, wo);
    let w = b.load(wa, 0);
    let p = b.mul(x, y);
    let z = b.add(p, w);
    let zo = b.iconst(Z_OFF as i32);
    let za = b.add(tid, zo);
    b.store(za, 0, z);
    b.finish()
}

/// Run the fused multiply-add kernel.
pub fn fma(x: &[i32], y: &[i32], w: &[i32]) -> Result<(Vec<i32>, KernelResult), KernelError> {
    assert_eq!(x.len(), y.len());
    assert_eq!(x.len(), w.len());
    let n = x.len();
    let xw = crate::qformat::as_words(x);
    let yw = crate::qformat::as_words(y);
    let ww = crate::qformat::as_words(w);
    let r = run_kernel(
        config(n),
        &fma_asm(),
        &[(X_OFF, &xw), (Y_OFF, &yw), (W_OFF, &ww)],
        Z_OFF,
        n,
        RunOptions::default(),
    )?;
    Ok((crate::qformat::as_i32(&r.output), r))
}

/// Host reference for the fused multiply-add (wrapping, low 32 bits of
/// the product — `mad.lo` semantics).
pub fn fma_ref(x: &[i32], y: &[i32], w: &[i32]) -> Vec<i32> {
    x.iter()
        .zip(y)
        .zip(w)
        .map(|((&a, &b), &c)| a.wrapping_mul(b).wrapping_add(c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_program;
    use crate::qformat::{as_i32, as_words};
    use crate::workload::int_vector;
    use simt_compiler::{compile, OptLevel};

    #[test]
    fn saxpy_ir_is_bit_exact_against_the_host_reference() {
        let n = 128;
        let x = int_vector(n, 5);
        let y = int_vector(n, 6);
        for a in [3, -7, 16] {
            let compiled = compile(&saxpy_ir(a), &config(n), OptLevel::Full).unwrap();
            let r = run_program(
                config(n),
                &compiled.program,
                &[(X_OFF, &as_words(&x)), (Y_OFF, &as_words(&y))],
                Z_OFF,
                n,
                RunOptions::default(),
            )
            .unwrap();
            assert_eq!(as_i32(&r.output), saxpy_ref(a, &x, &y), "a={a}");
        }
    }

    #[test]
    fn saxpy_pipeline_recovers_the_handwritten_length() {
        // The naive frontend carries explicit address adds; the pass
        // pipeline must fold them away, landing on the hand-scheduled
        // instruction count.
        let k = saxpy_ir(3);
        let naive = compile(&k, &config(64), OptLevel::None).unwrap();
        let full = compile(&k, &config(64), OptLevel::Full).unwrap();
        let handwritten = simt_isa::assemble(&saxpy_asm(3)).unwrap();
        assert!(
            full.program.len() < naive.program.len(),
            "pipeline did not shrink: {} vs {}",
            full.program.len(),
            naive.program.len()
        );
        assert_eq!(full.program.len(), handwritten.len());
        assert!(full.report.reduction() > 0.0);
    }

    #[test]
    fn saxpy_matches_reference() {
        let x = int_vector(64, 1);
        let y = int_vector(64, 2);
        let (got, _) = saxpy(3, &x, &y).unwrap();
        assert_eq!(got, saxpy_ref(3, &x, &y));
    }

    #[test]
    fn saxpy_negative_coefficient() {
        let x = int_vector(128, 3);
        let y = int_vector(128, 4);
        let (got, _) = saxpy(-7, &x, &y).unwrap();
        assert_eq!(got, saxpy_ref(-7, &x, &y));
    }

    #[test]
    fn scaling_preserves_sign() {
        let x: Vec<i32> = vec![-1024, -1, 0, 1, 1024, i32::MIN, i32::MAX];
        let mut padded = x.clone();
        padded.resize(16, 0);
        let (got, _) = scale(5, &padded).unwrap();
        assert_eq!(got, scale_ref(5, &padded));
        assert_eq!(got[0], -32);
    }

    #[test]
    fn fma_matches_reference_and_mad_fuses() {
        let n = 64;
        let x = int_vector(n, 11);
        let y = int_vector(n, 12);
        let w = int_vector(n, 13);
        let (got, _) = fma(&x, &y, &w).unwrap();
        assert_eq!(got, fma_ref(&x, &y, &w));
        // The IR frontend carries a separate mul + add; the pipeline's
        // mad-fuse pass lands on the hand-written single-mad program.
        let compiled = compile(&fma_ir(), &config(n), OptLevel::Full).unwrap();
        let hand = simt_isa::assemble(&fma_asm()).unwrap();
        assert_eq!(
            compiled.program.instructions(),
            hand.instructions(),
            "mad-fuse must recover the hand-written kernel"
        );
        // And the naive lowering still multiplies then adds.
        let naive = compile(&fma_ir(), &config(n), OptLevel::None).unwrap();
        assert!(naive.program.len() > compiled.program.len());
        // Bit-exact through the simulator.
        let r = run_program(
            config(n),
            &compiled.program,
            &[
                (X_OFF, &as_words(&x)),
                (Y_OFF, &as_words(&y)),
                (W_OFF, &as_words(&w)),
            ],
            Z_OFF,
            n,
            RunOptions::default(),
        )
        .unwrap();
        assert_eq!(as_i32(&r.output), fma_ref(&x, &y, &w));
    }

    #[test]
    fn scale_ir_matches_the_asm_kernel() {
        let n = 64;
        let x = int_vector(n, 9);
        let compiled = compile(&scale_ir_at(5, X_OFF, Z_OFF), &config(n), OptLevel::Full).unwrap();
        let r = run_program(
            config(n),
            &compiled.program,
            &[(X_OFF, &as_words(&x))],
            Z_OFF,
            n,
            RunOptions::default(),
        )
        .unwrap();
        assert_eq!(as_i32(&r.output), scale_ref(5, &x));
        // Same shape as the hand-written scale kernel.
        let hand = simt_isa::assemble(&scale_asm(5)).unwrap();
        assert_eq!(compiled.program.len(), hand.len());
    }

    #[test]
    fn saturating_add_clamps() {
        let x = vec![i32::MAX, i32::MIN, 100, -100];
        let y = vec![1000, -1000, 23, -23];
        let mut xp = x.clone();
        let mut yp = y.clone();
        xp.resize(16, 0);
        yp.resize(16, 0);
        let (got, _) = sat_add(&xp, &yp).unwrap();
        assert_eq!(got, sat_add_ref(&xp, &yp));
        assert_eq!(got[0], i32::MAX);
        assert_eq!(got[1], i32::MIN);
    }
}
