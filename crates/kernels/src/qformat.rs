//! Q-format fixed-point helpers (host side).
//!
//! The processor is 32-bit fixed point; signal kernels use Q15 (1 sign
//! bit, 15 fraction bits in the low half) so products fit comfortably and
//! `mulshr` rescales in one instruction.

/// One in Q15.
pub const Q15_ONE: i32 = 1 << 15;

/// Convert a float to Q15 with saturation.
pub fn to_q15(x: f64) -> i32 {
    let v = (x * Q15_ONE as f64).round();
    v.clamp(-(1i64 << 31) as f64, ((1i64 << 31) - 1) as f64) as i32
}

/// Convert Q15 to float.
pub fn from_q15(x: i32) -> f64 {
    x as f64 / Q15_ONE as f64
}

/// Q15 multiply with the same semantics as the kernel's `mulshr ..., 15`:
/// full 64-bit product, arithmetic shift right by 15, low 32 bits.
pub fn q15_mul(a: i32, b: i32) -> i32 {
    (((a as i64) * (b as i64)) >> 15) as i32
}

/// Q15 multiply-accumulate.
pub fn q15_mac(acc: i32, a: i32, b: i32) -> i32 {
    acc.wrapping_add(q15_mul(a, b))
}

/// Reinterpret an i32 slice as the u32 words the simulator stores.
pub fn as_words(xs: &[i32]) -> Vec<u32> {
    xs.iter().map(|&x| x as u32).collect()
}

/// Reinterpret simulator words as i32.
pub fn as_i32(xs: &[u32]) -> Vec<i32> {
    xs.iter().map(|&x| x as i32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        for x in [-0.99, -0.5, 0.0, 0.25, 0.5, 0.999] {
            let q = to_q15(x);
            assert!((from_q15(q) - x).abs() < 1.0 / Q15_ONE as f64);
        }
    }

    #[test]
    fn q15_mul_halves() {
        assert_eq!(q15_mul(Q15_ONE / 2, Q15_ONE / 2), Q15_ONE / 4);
        assert_eq!(q15_mul(-Q15_ONE / 2, Q15_ONE / 2), -Q15_ONE / 4);
        assert_eq!(q15_mul(Q15_ONE, 12345), 12345);
    }

    #[test]
    fn mac_accumulates() {
        let acc = q15_mac(100, Q15_ONE, 50);
        assert_eq!(acc, 150);
    }

    #[test]
    fn word_views() {
        let xs = vec![-1i32, 0, 7];
        assert_eq!(as_i32(&as_words(&xs)), xs);
    }
}
