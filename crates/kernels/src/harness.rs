//! Kernel launch harness: assemble or compile, load memory, run, read
//! back.

use simt_compiler::CompileError;
use simt_core::{ExecError, ExecStats, LoadError, Processor, ProcessorConfig, RunOptions};
use simt_isa::{IsaError, Program};
use std::fmt;

/// Anything that can go wrong launching a kernel.
#[derive(Debug)]
pub enum KernelError {
    /// Assembly failed.
    Asm(IsaError),
    /// IR compilation failed.
    Compile(CompileError),
    /// Configuration rejected.
    Config(simt_core::ConfigError),
    /// Program rejected at load.
    Load(LoadError),
    /// Runtime trap.
    Exec(ExecError),
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::Asm(e) => write!(f, "assembly: {e}"),
            KernelError::Compile(e) => write!(f, "compile: {e}"),
            KernelError::Config(e) => write!(f, "config: {e}"),
            KernelError::Load(e) => write!(f, "load: {e}"),
            KernelError::Exec(e) => write!(f, "exec: {e}"),
        }
    }
}

impl std::error::Error for KernelError {}

impl From<IsaError> for KernelError {
    fn from(e: IsaError) -> Self {
        KernelError::Asm(e)
    }
}
impl From<CompileError> for KernelError {
    fn from(e: CompileError) -> Self {
        KernelError::Compile(e)
    }
}
impl From<simt_core::ConfigError> for KernelError {
    fn from(e: simt_core::ConfigError) -> Self {
        KernelError::Config(e)
    }
}
impl From<LoadError> for KernelError {
    fn from(e: LoadError) -> Self {
        KernelError::Load(e)
    }
}
impl From<ExecError> for KernelError {
    fn from(e: ExecError) -> Self {
        KernelError::Exec(e)
    }
}

/// Result of a kernel launch.
#[derive(Debug, Clone)]
pub struct KernelResult {
    /// Execution statistics (cycle-exact).
    pub stats: ExecStats,
    /// The requested output window of shared memory.
    pub output: Vec<u32>,
    /// Full shared-memory image (diagnostics).
    pub memory: Vec<u32>,
}

/// Assemble `asm`, place `(offset, words)` blocks into shared memory,
/// run to `exit`, and read `out_len` words from `out_off`.
pub fn run_kernel(
    config: ProcessorConfig,
    asm: &str,
    mem_init: &[(usize, &[u32])],
    out_off: usize,
    out_len: usize,
    opts: RunOptions,
) -> Result<KernelResult, KernelError> {
    let program = simt_isa::assemble(asm)?;
    run_program(config, &program, mem_init, out_off, out_len, opts)
}

/// Run an already-compiled [`Program`] with the same load/run/read-back
/// contract as [`run_kernel`] — the execution path for
/// `simt-compiler`-built kernels.
pub fn run_program(
    config: ProcessorConfig,
    program: &Program,
    mem_init: &[(usize, &[u32])],
    out_off: usize,
    out_len: usize,
    opts: RunOptions,
) -> Result<KernelResult, KernelError> {
    let mut cpu = Processor::new(config)?;
    for (off, words) in mem_init {
        cpu.shared_mut().load_words(*off, words)?;
    }
    cpu.load_program(program)?;
    let stats = cpu.run(opts)?;
    let output = cpu.shared().read_words(out_off, out_len)?;
    Ok(KernelResult {
        stats,
        output,
        memory: cpu.shared().as_slice().to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_a_trivial_kernel() {
        let r = run_kernel(
            ProcessorConfig::small(),
            "  stid r1\n  sts [r1+0], r1\n  exit",
            &[],
            0,
            64,
            RunOptions::default(),
        )
        .unwrap();
        assert_eq!(r.output[10], 10);
        assert!(r.stats.cycles > 0);
    }

    #[test]
    fn errors_are_typed() {
        let e = run_kernel(
            ProcessorConfig::small(),
            "  bogus r1",
            &[],
            0,
            1,
            RunOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(e, KernelError::Asm(_)), "{e}");

        let e = run_kernel(
            ProcessorConfig::small(),
            "  stid r1\n  lds r2, [r1+60000]\n  exit",
            &[],
            0,
            1,
            RunOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(e, KernelError::Exec(_)), "{e}");
    }
}
