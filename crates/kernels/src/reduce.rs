//! Tree reductions built on **dynamic thread scaling** (§2).
//!
//! "The memory bandwidth reduction is partially offset by dynamic thread
//! scaling ... writing back only a subset of the threads (this may happen
//! during vector reductions), can significantly reduce the number of
//! clocks required for the STO (store) instruction."
//!
//! Two functionally identical dot-product kernels are provided:
//!
//! * [`dot_asm_scaled`] — each halving step runs with a `.tk` dynamic
//!   thread scale, so its loads/stores stream only the active threads;
//! * [`dot_asm_predicated`] — the same tree masked with predicates
//!   instead: every step still pays full-width store clocks (and the
//!   processor must be built with the +50 % predicate logic).
//!
//! The cycle gap between them is the paper's motivating ablation for the
//! feature; `simt-bench` measures it.

use crate::harness::{run_kernel, KernelError, KernelResult};
use crate::qformat::{as_i32, as_words};
use simt_compiler::{IrBuilder, Kernel, ValueId};
use simt_core::{ProcessorConfig, RunOptions};

/// x vector offset.
pub const X_OFF: usize = 0;
/// y vector offset.
pub const Y_OFF: usize = 1024;
/// Reduction scratch offset.
pub const SCRATCH: usize = 2048;

fn check_n(n: usize) {
    assert!(
        n.is_power_of_two() && (2..=1024).contains(&n),
        "n={n} must be a power of two in 2..=1024"
    );
}

/// Scaled-tree dot product source for `n` threads (power of two).
pub fn dot_asm_scaled(n: usize) -> String {
    check_n(n);
    let mut s = format!(
        "  stid r1
           lds r2, [r1+{X_OFF}]
           lds r3, [r1+{Y_OFF}]
           mul.lo r4, r2, r3
           sts [r1+{SCRATCH}], r4\n"
    );
    let mut stride = n / 2;
    let mut k = 1u32;
    while stride >= 1 {
        // Active threads = n >> k = stride.
        s.push_str(&format!(
            "  lds.t{k} r2, [r1+{SCRATCH}]
           lds.t{k} r3, [r1+{off}]
           add.t{k} r2, r2, r3
           sts.t{k} [r1+{SCRATCH}], r2\n",
            off = SCRATCH + stride,
        ));
        stride /= 2;
        // The scale field is 3 bits: k caps at 7 (active = n >> 7). The
        // surplus threads of the deepest steps only write scratch
        // indices >= stride, which no later valid read touches (loads
        // complete before stores within each lockstep instruction), so
        // the tree stays exact.
        k = (k + 1).min(7);
    }
    s.push_str("  exit\n");
    s
}

/// Predicate-masked dot product source (no dynamic scaling).
pub fn dot_asm_predicated(n: usize) -> String {
    check_n(n);
    let mut s = format!(
        "  stid r1
           lds r2, [r1+{X_OFF}]
           lds r3, [r1+{Y_OFF}]
           mul.lo r4, r2, r3
           sts [r1+{SCRATCH}], r4\n"
    );
    let mut stride = n / 2;
    while stride >= 1 {
        s.push_str(&format!(
            "  movi r5, {stride}
           setp.lt p0, r1, r5
           @p0 lds r2, [r1+{SCRATCH}]
           @p0 lds r3, [r1+{off}]
           @p0 add r2, r2, r3
           @p0 sts [r1+{SCRATCH}], r2\n",
            off = SCRATCH + stride,
        ));
        stride /= 2;
    }
    s.push_str("  exit\n");
    s
}

/// Shared tail of the IR tree reductions: the scaled halving steps over
/// scratch, emitted with explicit address arithmetic per level (the
/// optimizer's CSE merges the recomputed scratch addresses and the
/// addressing fold turns them into `lds`/`sts` offsets, reproducing the
/// hand-written `.tk` tree of [`dot_asm_scaled`]).
fn ir_tree(b: &mut IrBuilder, tid: ValueId, n: usize, scratch: usize) {
    let mut stride = n / 2;
    let mut k = 1u8;
    while stride >= 1 {
        let so = b.iconst(scratch as i32);
        let la = b.add(tid, so);
        b.scale_next(k);
        let lhs = b.load(la, 0);
        let po = b.iconst((scratch + stride) as i32);
        let pa = b.add(tid, po);
        b.scale_next(k);
        let rhs = b.load(pa, 0);
        b.scale_next(k);
        let sum = b.add(lhs, rhs);
        let so2 = b.iconst(scratch as i32);
        let sa = b.add(tid, so2);
        b.scale_next(k);
        b.store(sa, 0, sum);
        stride /= 2;
        k = (k + 1).min(7); // 3-bit scale field; see dot_asm_scaled
    }
}

/// IR frontend for the scaled-tree dot product (dynamic thread
/// scaling, as [`dot_asm_scaled`]).
pub fn dot_ir(n: usize) -> Kernel {
    dot_ir_at(n, X_OFF, Y_OFF, SCRATCH)
}

/// [`dot_ir`] with explicit operand placement, so pipeline stages can
/// chain through arbitrary shared-memory windows. The result lands at
/// `scratch` (which also holds the tree's partial sums — the window
/// `[scratch, scratch + n)` is clobbered).
pub fn dot_ir_at(n: usize, x_off: usize, y_off: usize, scratch: usize) -> Kernel {
    check_n(n);
    let mut b = IrBuilder::new(format!("dot{n}_s{scratch}"));
    let tid = b.tid();
    let xo = b.iconst(x_off as i32);
    let xa = b.add(tid, xo);
    let x = b.load(xa, 0);
    let yo = b.iconst(y_off as i32);
    let ya = b.add(tid, yo);
    let y = b.load(ya, 0);
    let prod = b.mul(x, y);
    let so = b.iconst(scratch as i32);
    let sa = b.add(tid, so);
    b.store(sa, 0, prod);
    ir_tree(&mut b, tid, n, scratch);
    b.finish()
}

/// IR frontend for the scaled-tree sum reduction (as
/// [`sum_asm_scaled`]).
pub fn sum_ir(n: usize) -> Kernel {
    sum_ir_at(n, X_OFF, SCRATCH)
}

/// [`sum_ir`] with explicit operand placement (see [`dot_ir_at`]).
pub fn sum_ir_at(n: usize, in_off: usize, scratch: usize) -> Kernel {
    check_n(n);
    let mut b = IrBuilder::new(format!("sum{n}_s{scratch}"));
    let tid = b.tid();
    let xo = b.iconst(in_off as i32);
    let xa = b.add(tid, xo);
    let x = b.load(xa, 0);
    let so = b.iconst(scratch as i32);
    let sa = b.add(tid, so);
    b.store(sa, 0, x);
    ir_tree(&mut b, tid, n, scratch);
    b.finish()
}

fn config(n: usize, predicates: bool) -> ProcessorConfig {
    ProcessorConfig::default()
        .with_threads(n)
        .with_shared_words(4096)
        .with_predicates(predicates)
}

/// Run the scaled-tree dot product; returns (result, run data).
pub fn dot_scaled(x: &[i32], y: &[i32]) -> Result<(i32, KernelResult), KernelError> {
    assert_eq!(x.len(), y.len());
    let n = x.len();
    let r = run_kernel(
        config(n, false),
        &dot_asm_scaled(n),
        &[(X_OFF, &as_words(x)), (Y_OFF, &as_words(y))],
        SCRATCH,
        1,
        RunOptions::default(),
    )?;
    Ok((r.output[0] as i32, r))
}

/// Run the predicate-masked dot product.
pub fn dot_predicated(x: &[i32], y: &[i32]) -> Result<(i32, KernelResult), KernelError> {
    assert_eq!(x.len(), y.len());
    let n = x.len();
    let r = run_kernel(
        config(n, true),
        &dot_asm_predicated(n),
        &[(X_OFF, &as_words(x)), (Y_OFF, &as_words(y))],
        SCRATCH,
        1,
        RunOptions::default(),
    )?;
    Ok((r.output[0] as i32, r))
}

/// Host reference (wrapping i32 accumulation, matching `mul.lo`/`add`).
pub fn dot_ref(x: &[i32], y: &[i32]) -> i32 {
    x.iter()
        .zip(y)
        .fold(0i32, |acc, (&a, &b)| acc.wrapping_add(a.wrapping_mul(b)))
}

/// Sum reduction over n (power-of-two) values with dynamic scaling.
pub fn sum_asm_scaled(n: usize) -> String {
    check_n(n);
    let mut s = format!(
        "  stid r1
           lds r4, [r1+{X_OFF}]
           sts [r1+{SCRATCH}], r4\n"
    );
    let mut stride = n / 2;
    let mut k = 1u32;
    while stride >= 1 {
        s.push_str(&format!(
            "  lds.t{k} r2, [r1+{SCRATCH}]
           lds.t{k} r3, [r1+{off}]
           add.t{k} r2, r2, r3
           sts.t{k} [r1+{SCRATCH}], r2\n",
            off = SCRATCH + stride,
        ));
        stride /= 2;
        k = (k + 1).min(7); // 3-bit scale field; see dot_asm_scaled
    }
    s.push_str("  exit\n");
    s
}

/// Run the sum reduction.
pub fn sum_scaled(x: &[i32]) -> Result<(i32, KernelResult), KernelError> {
    let n = x.len();
    let r = run_kernel(
        config(n, false),
        &sum_asm_scaled(n),
        &[(X_OFF, &as_words(x))],
        SCRATCH,
        1,
        RunOptions::default(),
    )?;
    Ok((r.output[0] as i32, r))
}

/// Host sum reference.
pub fn sum_ref(x: &[i32]) -> i32 {
    x.iter().fold(0i32, |a, &b| a.wrapping_add(b))
}

/// Partial sums left in scratch after the tree (diagnostics helper).
pub fn scratch_view(r: &KernelResult, n: usize) -> Vec<i32> {
    as_i32(&r.memory[SCRATCH..SCRATCH + n])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::int_vector;

    #[test]
    fn dot_scaled_matches_reference() {
        for n in [2usize, 4, 16, 64, 256, 1024] {
            let x = int_vector(n, 10 + n as u64);
            let y = int_vector(n, 20 + n as u64);
            let (got, _) = dot_scaled(&x, &y).unwrap();
            assert_eq!(got, dot_ref(&x, &y), "n={n}");
        }
    }

    #[test]
    fn predicated_variant_agrees() {
        let n = 256;
        let x = int_vector(n, 1);
        let y = int_vector(n, 2);
        let (a, _) = dot_scaled(&x, &y).unwrap();
        let (b, _) = dot_predicated(&x, &y).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn dynamic_scaling_saves_cycles() {
        // The paper's motivation: scaled stores stream only the active
        // subset. The predicated tree pays full width every step.
        let n = 1024;
        let x = int_vector(n, 3);
        let y = int_vector(n, 4);
        let (_, scaled) = dot_scaled(&x, &y).unwrap();
        let (_, masked) = dot_predicated(&x, &y).unwrap();
        assert!(
            scaled.stats.cycles * 2 < masked.stats.cycles,
            "scaled {} vs predicated {}",
            scaled.stats.cycles,
            masked.stats.cycles
        );
        assert!(scaled.stats.store_cycles < masked.stats.store_cycles);
    }

    #[test]
    fn sum_matches() {
        let x = int_vector(128, 5);
        let (got, _) = sum_scaled(&x).unwrap();
        assert_eq!(got, sum_ref(&x));
    }

    #[test]
    fn dot_ir_is_bit_exact_and_keeps_the_scaled_tree() {
        use crate::harness::run_program;
        use simt_compiler::{compile, OptLevel};
        for n in [16usize, 256, 1024] {
            let x = int_vector(n, 30 + n as u64);
            let y = int_vector(n, 40 + n as u64);
            let cfg = config(n, false);
            let compiled = compile(&dot_ir(n), &cfg, OptLevel::Full).unwrap();
            // The compiled tree matches the hand-written one instruction
            // for instruction count-wise, scales included.
            let hand = simt_isa::assemble(&dot_asm_scaled(n)).unwrap();
            assert_eq!(compiled.program.len(), hand.len(), "n={n}");
            let scaled = |p: &simt_isa::Program| {
                p.instructions()
                    .iter()
                    .filter(|i| i.scale.is_some())
                    .count()
            };
            assert_eq!(scaled(&compiled.program), scaled(&hand), "n={n}");
            let r = run_program(
                cfg,
                &compiled.program,
                &[(X_OFF, &as_words(&x)), (Y_OFF, &as_words(&y))],
                SCRATCH,
                1,
                RunOptions::default(),
            )
            .unwrap();
            assert_eq!(r.output[0] as i32, dot_ref(&x, &y), "n={n}");
        }
    }

    #[test]
    fn sum_ir_is_bit_exact() {
        use crate::harness::run_program;
        use simt_compiler::{compile, OptLevel};
        let n = 256;
        let x = int_vector(n, 9);
        let cfg = config(n, false);
        let compiled = compile(&sum_ir(n), &cfg, OptLevel::Full).unwrap();
        let r = run_program(
            cfg,
            &compiled.program,
            &[(X_OFF, &as_words(&x))],
            SCRATCH,
            1,
            RunOptions::default(),
        )
        .unwrap();
        assert_eq!(r.output[0] as i32, sum_ref(&x));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        dot_asm_scaled(48);
    }
}
