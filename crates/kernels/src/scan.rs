//! Inclusive prefix sum (Hillis–Steele scan) — a log-step data-parallel
//! primitive that exercises the predicate machinery (§2's optional
//! IF/THEN/ELSE): each step is guarded per lane on `tid >= stride`.
//!
//! The lockstep memory model makes the scan race-free without double
//! buffering: within one `lds`/`sts` pair, every lane's load completes
//! before any lane's store (the 4R muxes stream strictly before the
//! write mux of the *next* instruction).

use crate::harness::{run_kernel, KernelError, KernelResult};
use crate::qformat::{as_i32, as_words};
use simt_core::{ProcessorConfig, RunOptions};

/// Input offset.
pub const X_OFF: usize = 0;
/// Scan working/result offset.
pub const S_OFF: usize = 2048;

/// Generate the scan kernel for `n` threads (power of two ≤ 1024).
pub fn scan_asm(n: usize) -> String {
    assert!(n.is_power_of_two() && (2..=1024).contains(&n), "n={n}");
    let mut s = format!(
        "  stid r1
           lds r2, [r1+{X_OFF}]
           sts [r1+{S_OFF}], r2\n"
    );
    let mut d = 1usize;
    while d < n {
        // Lanes with tid >= d add in the value d to their left; the
        // others keep r2, so the unguarded store rewrites their slot
        // with its existing value.
        s.push_str(&format!(
            "  movi r5, {d}
           setp.ge p0, r1, r5
           @p0 lds r3, [r1+{off}]
           @p0 add r2, r2, r3
           sts [r1+{S_OFF}], r2\n",
            off = S_OFF - d,
        ));
        d *= 2;
    }
    s.push_str("  exit\n");
    s
}

/// Run the inclusive scan.
pub fn scan(x: &[i32]) -> Result<(Vec<i32>, KernelResult), KernelError> {
    let n = x.len();
    let cfg = ProcessorConfig::default()
        .with_threads(n)
        .with_shared_words(4096)
        .with_predicates(true);
    let r = run_kernel(
        cfg,
        &scan_asm(n),
        &[(X_OFF, &as_words(x))],
        S_OFF,
        n,
        RunOptions::default(),
    )?;
    Ok((as_i32(&r.output), r))
}

/// Host reference: wrapping inclusive prefix sum.
pub fn scan_ref(x: &[i32]) -> Vec<i32> {
    let mut acc = 0i32;
    x.iter()
        .map(|&v| {
            acc = acc.wrapping_add(v);
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{int_vector, wide_int_vector};

    #[test]
    fn scan_matches_reference() {
        for n in [2usize, 8, 64, 256, 1024] {
            let x = int_vector(n, n as u64);
            let (got, _) = scan(&x).unwrap();
            assert_eq!(got, scan_ref(&x), "n={n}");
        }
    }

    #[test]
    fn scan_wraps_like_hardware() {
        let x = wide_int_vector(64, 9);
        let (got, _) = scan(&x).unwrap();
        assert_eq!(got, scan_ref(&x));
    }

    #[test]
    fn scan_of_ones_is_iota() {
        let x = vec![1i32; 128];
        let (got, _) = scan(&x).unwrap();
        let want: Vec<i32> = (1..=128).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn log_steps() {
        // n=256 -> 8 guarded steps of 5 instructions each + prologue 3 +
        // exit.
        let src = scan_asm(256);
        let lines = src.lines().filter(|l| !l.trim().is_empty()).count();
        assert_eq!(lines, 3 + 8 * 5 + 1);
    }
}
