//! Runtime-launchable kernel descriptions.
//!
//! A [`LaunchSpec`] packages everything a host runtime needs to run one
//! kernel on one simulated device — processor configuration, assembled
//! source, input placement, output window — plus the bit-exact host
//! reference output, so schedulers can verify results no matter which
//! device, stream, or batch executed the launch.
//!
//! Every kernel family in this crate has a constructor here; the specs
//! are what `simt-runtime` streams enqueue.

use crate::harness::{run_program, KernelError, KernelResult};
use crate::qformat::as_words;
use crate::{fir, iir, matmul, reduce, scan, sobel, vector};
use simt_compiler::{compile_full, Kernel};
use simt_core::{ProcessorConfig, RunOptions};
use simt_isa::Program;

/// What a launch compiles from: text assembly (the hand-scheduled
/// kernels) or an SSA IR kernel (compiled through `simt-compiler`'s
/// pass pipeline). Either way the runtime caches the compiled artifact
/// content-addressed, so repeated launches never re-lower.
#[derive(Debug, Clone)]
pub enum KernelSource {
    /// Assembly source, ready to assemble.
    Asm(String),
    /// An IR kernel, ready to compile for the spec's configuration.
    Ir(Kernel),
}

impl KernelSource {
    /// Compile the source for a configuration (full pipeline for IR).
    pub fn compile(&self, config: &ProcessorConfig) -> Result<Program, KernelError> {
        match self {
            KernelSource::Asm(asm) => Ok(simt_isa::assemble(asm)?),
            KernelSource::Ir(kernel) => Ok(compile_full(kernel, config)?.program),
        }
    }
}

/// A self-contained, runtime-launchable kernel instance.
#[derive(Debug, Clone)]
pub struct LaunchSpec {
    /// Human-readable kernel name (`saxpy`, `fir16`, …).
    pub name: String,
    /// Processor build the kernel needs (threads, shared words, predicates).
    pub config: ProcessorConfig,
    /// Kernel source (assembly text or IR).
    pub source: KernelSource,
    /// Inline inputs: `(offset, words)` blocks placed into shared memory
    /// before the run. May be detached (see [`LaunchSpec::detach_inputs`])
    /// when the host wants to model the copies explicitly.
    pub inputs: Vec<(usize, Vec<u32>)>,
    /// Output window offset in shared-memory words.
    pub out_off: usize,
    /// Output window length in words.
    pub out_len: usize,
    /// Host-reference output for the same inputs — the bit-exact oracle.
    pub expected: Vec<u32>,
}

impl LaunchSpec {
    /// Integer saxpy `z = a*x + y` over `x.len()` threads.
    pub fn saxpy(a: i32, x: &[i32], y: &[i32]) -> Self {
        assert_eq!(x.len(), y.len());
        LaunchSpec {
            name: format!("saxpy{}", x.len()),
            config: ProcessorConfig::default()
                .with_threads(x.len())
                .with_shared_words(4096),
            source: KernelSource::Asm(vector::saxpy_asm(a)),
            inputs: vec![(vector::X_OFF, as_words(x)), (vector::Y_OFF, as_words(y))],
            out_off: vector::Z_OFF,
            out_len: x.len(),
            expected: as_words(&vector::saxpy_ref(a, x, y)),
        }
    }

    /// Saturating elementwise add.
    pub fn sat_add(x: &[i32], y: &[i32]) -> Self {
        assert_eq!(x.len(), y.len());
        LaunchSpec {
            name: format!("satadd{}", x.len()),
            config: ProcessorConfig::default()
                .with_threads(x.len())
                .with_shared_words(4096),
            source: KernelSource::Asm(vector::sat_add_asm()),
            inputs: vec![(vector::X_OFF, as_words(x)), (vector::Y_OFF, as_words(y))],
            out_off: vector::Z_OFF,
            out_len: x.len(),
            expected: as_words(&vector::sat_add_ref(x, y)),
        }
    }

    /// Elementwise fused multiply-add `z = x*y + w` (the DSP column's
    /// `mad.lo`).
    pub fn fma(x: &[i32], y: &[i32], w: &[i32]) -> Self {
        assert_eq!(x.len(), y.len());
        assert_eq!(x.len(), w.len());
        LaunchSpec {
            name: format!("fma{}", x.len()),
            config: ProcessorConfig::default()
                .with_threads(x.len())
                .with_shared_words(4096),
            source: KernelSource::Asm(vector::fma_asm()),
            inputs: vec![
                (vector::X_OFF, as_words(x)),
                (vector::Y_OFF, as_words(y)),
                (vector::W_OFF, as_words(w)),
            ],
            out_off: vector::Z_OFF,
            out_len: x.len(),
            expected: as_words(&vector::fma_ref(x, y, w)),
        }
    }

    /// Scaled-tree dot product (dynamic thread scaling).
    pub fn dot(x: &[i32], y: &[i32]) -> Self {
        assert_eq!(x.len(), y.len());
        let n = x.len();
        LaunchSpec {
            name: format!("dot{n}"),
            config: ProcessorConfig::default()
                .with_threads(n)
                .with_shared_words(4096),
            source: KernelSource::Asm(reduce::dot_asm_scaled(n)),
            inputs: vec![(reduce::X_OFF, as_words(x)), (reduce::Y_OFF, as_words(y))],
            out_off: reduce::SCRATCH,
            out_len: 1,
            expected: vec![reduce::dot_ref(x, y) as u32],
        }
    }

    /// Scaled-tree sum reduction.
    pub fn sum(x: &[i32]) -> Self {
        let n = x.len();
        LaunchSpec {
            name: format!("sum{n}"),
            config: ProcessorConfig::default()
                .with_threads(n)
                .with_shared_words(4096),
            source: KernelSource::Asm(reduce::sum_asm_scaled(n)),
            inputs: vec![(reduce::X_OFF, as_words(x))],
            out_off: reduce::SCRATCH,
            out_len: 1,
            expected: vec![reduce::sum_ref(x) as u32],
        }
    }

    /// Q15 FIR filter: `x` has `n + taps.len() − 1` samples, `n` outputs.
    pub fn fir(x: &[i32], taps: &[i32], n: usize) -> Self {
        assert_eq!(x.len(), n + taps.len() - 1);
        LaunchSpec {
            name: format!("fir{}x{n}", taps.len()),
            config: ProcessorConfig::default()
                .with_threads(n)
                .with_shared_words(8192),
            source: KernelSource::Asm(fir::fir_asm(taps.len())),
            inputs: vec![(fir::X_OFF, as_words(x)), (fir::H_OFF, as_words(taps))],
            out_off: fir::Y_OFF,
            out_len: n,
            expected: as_words(&fir::fir_ref(x, taps, n)),
        }
    }

    /// Q15 matrix multiply `m×k · k×n`.
    pub fn matmul(a: &[i32], b: &[i32], m: usize, k: usize, n: usize) -> Self {
        assert_eq!(a.len(), m * k);
        assert_eq!(b.len(), k * n);
        LaunchSpec {
            name: format!("matmul{m}x{k}x{n}"),
            config: ProcessorConfig::default()
                .with_threads(m * n)
                .with_shared_words(8192),
            source: KernelSource::Asm(matmul::matmul_asm(m, k, n)),
            inputs: vec![(matmul::A_OFF, as_words(a)), (matmul::B_OFF, as_words(b))],
            out_off: matmul::C_OFF,
            out_len: m * n,
            expected: as_words(&matmul::matmul_ref(a, b, m, k, n)),
        }
    }

    /// Q15 biquad bank: `n` channels × `m` samples, channel-interleaved.
    pub fn iir(x: &[i32], n: usize, m: usize, q: iir::Biquad) -> Self {
        assert_eq!(x.len(), n * m);
        LaunchSpec {
            name: format!("iir{n}x{m}"),
            config: ProcessorConfig::default()
                .with_threads(n)
                .with_shared_words(8192),
            source: KernelSource::Asm(iir::iir_asm(n, m, q)),
            inputs: vec![(iir::X_OFF, as_words(x))],
            out_off: iir::Y_OFF,
            out_len: n * m,
            expected: as_words(&iir::iir_ref(x, n, m, q)),
        }
    }

    /// Inclusive Hillis–Steele prefix sum (predicate build).
    pub fn scan(x: &[i32]) -> Self {
        let n = x.len();
        LaunchSpec {
            name: format!("scan{n}"),
            config: ProcessorConfig::default()
                .with_threads(n)
                .with_shared_words(4096)
                .with_predicates(true),
            source: KernelSource::Asm(scan::scan_asm(n)),
            inputs: vec![(scan::X_OFF, as_words(x))],
            out_off: scan::S_OFF,
            out_len: n,
            expected: as_words(&scan::scan_ref(x)),
        }
    }

    /// Sobel edge magnitude over a haloed `(iw+2)×(ih+2)` image.
    pub fn sobel(img: &[i32], iw: usize, ih: usize) -> Self {
        assert_eq!(img.len(), (iw + 2) * (ih + 2));
        LaunchSpec {
            name: format!("sobel{iw}x{ih}"),
            config: ProcessorConfig::default()
                .with_threads(iw * ih)
                .with_shared_words(8192),
            source: KernelSource::Asm(sobel::sobel_asm(iw, ih)),
            inputs: vec![(sobel::IMG_OFF, as_words(img))],
            out_off: sobel::OUT_OFF,
            out_len: iw * ih,
            expected: as_words(&sobel::sobel_ref(img, iw, ih)),
        }
    }

    /// IR-frontend saxpy: same semantics and oracle as
    /// [`LaunchSpec::saxpy`], compiled through the `simt-compiler`
    /// pipeline (and content-address cached by the runtime).
    pub fn saxpy_ir(a: i32, x: &[i32], y: &[i32]) -> Self {
        let mut spec = Self::saxpy(a, x, y);
        spec.name = format!("saxpy{}_ir", x.len());
        spec.source = KernelSource::Ir(vector::saxpy_ir(a));
        spec
    }

    /// IR-frontend scaled-tree dot product.
    pub fn dot_ir(x: &[i32], y: &[i32]) -> Self {
        let mut spec = Self::dot(x, y);
        spec.name = format!("dot{}_ir", x.len());
        spec.source = KernelSource::Ir(reduce::dot_ir(x.len()));
        spec
    }

    /// IR-frontend scaled-tree sum reduction.
    pub fn sum_ir(x: &[i32]) -> Self {
        let mut spec = Self::sum(x);
        spec.name = format!("sum{}_ir", x.len());
        spec.source = KernelSource::Ir(reduce::sum_ir(x.len()));
        spec
    }

    /// IR-frontend Q15 FIR filter.
    pub fn fir_ir(x: &[i32], taps: &[i32], n: usize) -> Self {
        let mut spec = Self::fir(x, taps, n);
        spec.name = format!("fir{}x{n}_ir", taps.len());
        spec.source = KernelSource::Ir(fir::fir_ir(taps.len()));
        spec
    }

    /// IR-frontend fused multiply-add: emitted as separate mul + add,
    /// recovered to a single `mad.lo` by the compiler's mad-fuse pass.
    pub fn fma_ir(x: &[i32], y: &[i32], w: &[i32]) -> Self {
        let mut spec = Self::fma(x, y, w);
        spec.name = format!("fma{}_ir", x.len());
        spec.source = KernelSource::Ir(vector::fma_ir());
        spec
    }

    /// IR-frontend Q15 matrix multiply: the inner product is a
    /// loop-carried hardware loop whose accumulator and walking indices
    /// the allocator coalesces in place (no back-edge copies).
    pub fn matmul_ir(a: &[i32], b: &[i32], m: usize, k: usize, n: usize) -> Self {
        let mut spec = Self::matmul(a, b, m, k, n);
        spec.name = format!("matmul{m}x{k}x{n}_ir");
        spec.source = KernelSource::Ir(matmul::matmul_ir(m, k, n));
        spec
    }

    /// IR-frontend Q15 biquad bank: five loop-carried values (index +
    /// Direct-Form-I state), coefficients hoisted out of the body by
    /// LICM.
    pub fn iir_ir(x: &[i32], n: usize, m: usize, q: iir::Biquad) -> Self {
        let mut spec = Self::iir(x, n, m, q);
        spec.name = format!("iir{n}x{m}_ir");
        spec.source = KernelSource::Ir(iir::iir_ir(n, m, q));
        spec
    }

    /// Total words of inline input the launch carries.
    pub fn input_words(&self) -> usize {
        self.inputs.iter().map(|(_, w)| w.len()).sum()
    }

    /// Split the inline inputs off, so a host can model the copies as
    /// explicit stream commands: the returned spec runs against whatever
    /// the device buffer already holds at the input offsets.
    pub fn detach_inputs(mut self) -> (LaunchSpec, Vec<(usize, Vec<u32>)>) {
        let inputs = std::mem::take(&mut self.inputs);
        (self, inputs)
    }

    /// Run the spec to completion on a freshly built single core — the
    /// reference execution path (identical semantics to
    /// [`crate::run_kernel`]).
    pub fn run_local(&self) -> Result<KernelResult, KernelError> {
        let borrows: Vec<(usize, &[u32])> = self
            .inputs
            .iter()
            .map(|(off, words)| (*off, words.as_slice()))
            .collect();
        let program = self.source.compile(&self.config)?;
        run_program(
            self.config.clone(),
            &program,
            &borrows,
            self.out_off,
            self.out_len,
            RunOptions::default(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{int_vector, lowpass_taps, q15_matrix, q15_signal};

    fn all_specs() -> Vec<LaunchSpec> {
        let x = int_vector(256, 1);
        let y = int_vector(256, 2);
        let sig = q15_signal(128 + 15, 3);
        let taps = lowpass_taps(16);
        let a = q15_matrix(8, 8, 4);
        let b = q15_matrix(8, 8, 5);
        let img = sobel::test_card(16, 12);
        vec![
            LaunchSpec::saxpy(3, &x, &y),
            LaunchSpec::sat_add(&x, &y),
            LaunchSpec::dot(&x, &y),
            LaunchSpec::sum(&x),
            LaunchSpec::fir(&sig, &taps, 128),
            LaunchSpec::matmul(&a, &b, 8, 8, 8),
            LaunchSpec::iir(&q15_signal(16 * 8, 6), 16, 8, iir::Biquad::lowpass()),
            LaunchSpec::scan(&int_vector(64, 7)),
            LaunchSpec::sobel(&img, 16, 12),
            LaunchSpec::saxpy_ir(3, &x, &y),
            LaunchSpec::dot_ir(&x, &y),
            LaunchSpec::sum_ir(&x),
            LaunchSpec::fir_ir(&sig, &taps, 128),
            LaunchSpec::fma(&x, &y, &x),
            LaunchSpec::fma_ir(&x, &y, &x),
            LaunchSpec::matmul_ir(&a, &b, 8, 8, 8),
            LaunchSpec::iir_ir(&q15_signal(16 * 8, 6), 16, 8, iir::Biquad::lowpass()),
        ]
    }

    #[test]
    fn every_spec_matches_its_reference_locally() {
        for spec in all_specs() {
            let r = spec.run_local().unwrap_or_else(|e| {
                panic!("{} failed: {e}", spec.name);
            });
            assert_eq!(r.output, spec.expected, "{} output mismatch", spec.name);
            assert!(r.stats.cycles > 0, "{}", spec.name);
        }
    }

    #[test]
    fn detach_inputs_keeps_geometry() {
        let x = int_vector(64, 1);
        let y = int_vector(64, 2);
        let spec = LaunchSpec::saxpy(2, &x, &y);
        let words = spec.input_words();
        let (bare, inputs) = spec.detach_inputs();
        assert!(bare.inputs.is_empty());
        assert_eq!(inputs.iter().map(|(_, w)| w.len()).sum::<usize>(), words);
        assert_eq!(bare.out_len, 64);
    }
}
