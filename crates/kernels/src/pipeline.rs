//! Multi-stage kernel pipelines — the fused-launch workload family.
//!
//! A [`Pipeline`] is a chain of [`LaunchSpec`] stages over one shared
//! device buffer: stage *k* writes a window stage *k+1* reads, every
//! stage shares one processor configuration, and the chain's inputs are
//! detached so a host can model the copies explicitly. This is exactly
//! the shape `simt-graph`'s fusion pass targets: executed eagerly the
//! intermediates round-trip through shared memory; captured into a
//! graph and fused they collapse into a single launch whose stages hand
//! values through registers.
//!
//! Every constructor also carries the chained host-reference outputs
//! (per stage and final), so eager, replayed and fused executions can
//! all be checked bit-exactly.

use crate::qformat::as_words;
use crate::{fir, reduce, vector, KernelSource, LaunchSpec};
use simt_core::ProcessorConfig;

/// A chain of launches over one device buffer, plus detached inputs and
/// the bit-exact final oracle.
#[derive(Debug, Clone)]
pub struct Pipeline {
    /// Human-readable name (`saxpy+scale+sum`, …).
    pub name: String,
    /// The configuration every stage shares (a fused build must serve
    /// them all).
    pub config: ProcessorConfig,
    /// The stages, in dependency order; inputs detached, each stage's
    /// `out_off`/`out_len`/`expected` describing its own output window.
    pub stages: Vec<LaunchSpec>,
    /// Host→device input blocks to place before stage 1.
    pub inputs: Vec<(usize, Vec<u32>)>,
    /// Final output window offset in words.
    pub out_off: usize,
    /// Final output window length in words.
    pub out_len: usize,
    /// Bit-exact host reference of the final output window.
    pub expected: Vec<u32>,
}

fn check_n(n: usize) {
    assert!(
        n.is_power_of_two() && (2..=1024).contains(&n),
        "pipeline width {n} must be a power of two in 2..=1024"
    );
}

fn stage(
    name: impl Into<String>,
    config: &ProcessorConfig,
    kernel: simt_compiler::Kernel,
    out_off: usize,
    out_len: usize,
    expected: Vec<u32>,
) -> LaunchSpec {
    LaunchSpec {
        name: name.into(),
        config: config.clone(),
        source: KernelSource::Ir(kernel),
        inputs: Vec::new(),
        out_off,
        out_len,
        expected,
    }
}

impl Pipeline {
    /// `saxpy → scale → sum`: `z0 = a*x + y`, `z1 = z0 >> shift`,
    /// `s = Σ z1` — a three-stage chain with two register-forwardable
    /// handoffs. All windows live at `base + k*n`, so two pipelines
    /// with disjoint bases can share one buffer.
    pub fn saxpy_scale_sum(a: i32, shift: u32, x: &[i32], y: &[i32], base: usize) -> Pipeline {
        assert_eq!(x.len(), y.len());
        let n = x.len();
        check_n(n);
        let (xo, yo, z0, z1, sc) = (base, base + n, base + 2 * n, base + 3 * n, base + 4 * n);
        assert!(sc + n <= 8192, "pipeline at base {base} exceeds the buffer");
        let config = ProcessorConfig::default()
            .with_threads(n)
            .with_shared_words(8192);
        let z0v = vector::saxpy_ref(a, x, y);
        let z1v = vector::scale_ref(shift, &z0v);
        let sum = reduce::sum_ref(&z1v);
        Pipeline {
            name: format!("saxpy+scale+sum{n}"),
            stages: vec![
                stage(
                    "saxpy",
                    &config,
                    vector::saxpy_ir_at(a, xo, yo, z0),
                    z0,
                    n,
                    as_words(&z0v),
                ),
                stage(
                    "scale",
                    &config,
                    vector::scale_ir_at(shift, z0, z1),
                    z1,
                    n,
                    as_words(&z1v),
                ),
                stage(
                    "sum",
                    &config,
                    reduce::sum_ir_at(n, z1, sc),
                    sc,
                    1,
                    vec![sum as u32],
                ),
            ],
            config,
            inputs: vec![(xo, as_words(x)), (yo, as_words(y))],
            out_off: sc,
            out_len: 1,
            expected: vec![sum as u32],
        }
    }

    /// `saxpy → dot`: `z = a*x + y`, then `d = z · w` — the elementwise
    /// stage feeds the scaled-tree reduction directly.
    pub fn saxpy_dot(a: i32, x: &[i32], y: &[i32], w: &[i32], base: usize) -> Pipeline {
        assert_eq!(x.len(), y.len());
        assert_eq!(x.len(), w.len());
        let n = x.len();
        check_n(n);
        let (xo, yo, wo, z0, sc) = (base, base + n, base + 2 * n, base + 3 * n, base + 4 * n);
        assert!(sc + n <= 8192, "pipeline at base {base} exceeds the buffer");
        let config = ProcessorConfig::default()
            .with_threads(n)
            .with_shared_words(8192);
        let zv = vector::saxpy_ref(a, x, y);
        let dot = reduce::dot_ref(&zv, w);
        Pipeline {
            name: format!("saxpy+dot{n}"),
            stages: vec![
                stage(
                    "saxpy",
                    &config,
                    vector::saxpy_ir_at(a, xo, yo, z0),
                    z0,
                    n,
                    as_words(&zv),
                ),
                stage(
                    "dot",
                    &config,
                    reduce::dot_ir_at(n, z0, wo, sc),
                    sc,
                    1,
                    vec![dot as u32],
                ),
            ],
            config,
            inputs: vec![(xo, as_words(x)), (yo, as_words(y)), (wo, as_words(w))],
            out_off: sc,
            out_len: 1,
            expected: vec![dot as u32],
        }
    }

    /// `fir → sum`: a Q15 FIR over `n` outputs, then the scaled-tree
    /// sum of the filtered signal.
    pub fn fir_sum(x: &[i32], taps: &[i32], n: usize, base: usize) -> Pipeline {
        assert_eq!(
            x.len(),
            n + taps.len() - 1,
            "x must have n + taps - 1 samples"
        );
        check_n(n);
        let xo = base;
        let ho = base + x.len();
        let yo = ho + taps.len();
        let sc = yo + n;
        assert!(sc + n <= 8192, "pipeline at base {base} exceeds the buffer");
        let config = ProcessorConfig::default()
            .with_threads(n)
            .with_shared_words(8192);
        let yv = fir::fir_ref(x, taps, n);
        let sum = reduce::sum_ref(&yv);
        Pipeline {
            name: format!("fir{}+sum{n}", taps.len()),
            stages: vec![
                stage(
                    "fir",
                    &config,
                    fir::fir_ir_at(taps.len(), xo, ho, yo),
                    yo,
                    n,
                    as_words(&yv),
                ),
                stage(
                    "sum",
                    &config,
                    reduce::sum_ir_at(n, yo, sc),
                    sc,
                    1,
                    vec![sum as u32],
                ),
            ],
            config,
            inputs: vec![(xo, as_words(x)), (ho, as_words(taps))],
            out_off: sc,
            out_len: 1,
            expected: vec![sum as u32],
        }
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// True when the pipeline has no stages (no constructor builds one).
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Run the stages eagerly on a single fresh core, chaining the full
    /// shared-memory image between stages — the reference execution the
    /// runtime's streams, graph replay and fused replay must all match.
    pub fn run_local(&self) -> Result<Vec<u32>, crate::KernelError> {
        use simt_core::RunOptions;
        let mut memory = vec![0u32; self.config.shared_words];
        for (off, words) in &self.inputs {
            memory[*off..off + words.len()].copy_from_slice(words);
        }
        for s in &self.stages {
            let program = s.source.compile(&s.config)?;
            let r = crate::run_program(
                s.config.clone(),
                &program,
                &[(0, &memory)],
                s.out_off,
                s.out_len,
                RunOptions::default(),
            )?;
            assert_eq!(
                r.output, s.expected,
                "{}: stage {} diverged from its oracle",
                self.name, s.name
            );
            memory = r.memory;
        }
        Ok(memory[self.out_off..self.out_off + self.out_len].to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{int_vector, lowpass_taps, q15_signal};

    #[test]
    fn saxpy_scale_sum_stages_chain_bit_exactly() {
        let x = int_vector(128, 1);
        let y = int_vector(128, 2);
        let p = Pipeline::saxpy_scale_sum(3, 2, &x, &y, 0);
        assert_eq!(p.len(), 3);
        let out = p.run_local().unwrap();
        assert_eq!(out, p.expected);
    }

    #[test]
    fn saxpy_dot_stages_chain_bit_exactly() {
        let x = int_vector(64, 3);
        let y = int_vector(64, 4);
        let w = int_vector(64, 5);
        let p = Pipeline::saxpy_dot(-7, &x, &y, &w, 0);
        let out = p.run_local().unwrap();
        assert_eq!(out, p.expected);
    }

    #[test]
    fn fir_sum_stages_chain_bit_exactly() {
        let taps = lowpass_taps(16);
        let x = q15_signal(128 + 15, 9);
        let p = Pipeline::fir_sum(&x, &taps, 128, 0);
        let out = p.run_local().unwrap();
        assert_eq!(out, p.expected);
    }

    #[test]
    fn pipelines_relocate_with_the_base_offset() {
        let x = int_vector(64, 6);
        let y = int_vector(64, 7);
        let lo = Pipeline::saxpy_scale_sum(5, 1, &x, &y, 0);
        let hi = Pipeline::saxpy_scale_sum(5, 1, &x, &y, 4096);
        assert_eq!(lo.expected, hi.expected);
        assert_ne!(lo.out_off, hi.out_off);
        assert_eq!(hi.run_local().unwrap(), hi.expected);
    }

    #[test]
    #[should_panic(expected = "exceeds the buffer")]
    fn oversized_pipelines_are_rejected() {
        let x = int_vector(1024, 1);
        let y = int_vector(1024, 2);
        let _ = Pipeline::saxpy_scale_sum(1, 1, &x, &y, 4096);
    }
}
