//! # simt-kernels — fixed-point kernels for the SIMT soft processor
//!
//! The paper positions the processor for "embedded applications that may
//! be commonly found in FPGA systems" (§1) — integer/fixed-point signal
//! processing, since the design is integer-only (§2.1): "integer versions
//! of these have historically been used on fixed-point DSP processors".
//!
//! This crate provides:
//!
//! * [`qformat`] — Q15/Q31 fixed-point helpers;
//! * [`harness`] — load data → run → collect results;
//! * [`vector`] — saxpy, scaling (arithmetic shifts!), saturating clip;
//! * [`reduce`] — sum / dot-product tree reductions built on **dynamic
//!   thread scaling**, the §2 feature that shrinks store time as the
//!   active set halves;
//! * [`fir`] — Q15 FIR filters (taps broadcast from shared memory);
//! * [`matmul`] — fixed-point matrix multiply using the zero-overhead
//!   loops of §3;
//! * [`iir`] — Q15 biquad banks (sequential per-channel recursion on the
//!   hardware loop);
//! * [`launch`] — [`LaunchSpec`]: self-contained, runtime-launchable
//!   kernel instances with bit-exact host-reference outputs, consumed by
//!   `simt-runtime` streams. A spec's [`KernelSource`] is either text
//!   assembly or a `simt-compiler` SSA IR kernel (the `*_ir`
//!   constructors); the `vector`, `reduce`, `fir`, `matmul` and `iir`
//!   families ship IR frontends compiled through the optimizing
//!   pipeline — the looped pair (`matmul`/`iir`) through loop-carried
//!   SSA block parameters;
//! * [`scan`] — Hillis–Steele prefix sum on the predicate machinery;
//! * [`sobel`] — 2-D edge magnitude using `shadd` address generation;
//! * [`workload`] — deterministic input generators.
//!
//! Every kernel has a host-side reference implementation; tests assert
//! bit-exact agreement.

pub mod fir;
pub mod harness;
pub mod iir;
pub mod launch;
pub mod matmul;
pub mod pipeline;
pub mod qformat;
pub mod reduce;
pub mod scan;
pub mod sobel;
pub mod vector;
pub mod workload;

pub use harness::{run_kernel, run_program, KernelError, KernelResult};
pub use launch::{KernelSource, LaunchSpec};
pub use pipeline::Pipeline;
