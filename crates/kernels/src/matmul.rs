//! Q15 matrix multiply using the zero-overhead loops of §3.
//!
//! One thread per output element: thread `i` computes
//! `C[i / n][i % n] = Σ_kk (A[row][kk]·B[kk][col]) >> 15`, with the inner
//! product as a hardware `loop` (single-cycle loop bookkeeping, no branch
//! flushes). `n` must be a power of two so row/col extraction uses the
//! shifter.

use crate::harness::{run_kernel, KernelError, KernelResult};
use crate::qformat::{as_i32, as_words, q15_mac};
use simt_compiler::{BinOp, IrBuilder, Kernel};
use simt_core::{ProcessorConfig, RunOptions};

/// Matrix A offset (m × k words, row-major).
pub const A_OFF: usize = 0;
/// Matrix B offset (k × n words, row-major).
pub const B_OFF: usize = 2048;
/// Matrix C offset (m × n words, row-major).
pub const C_OFF: usize = 4096;

/// Generate the matmul kernel for `m × k` times `k × n`.
pub fn matmul_asm(m: usize, k: usize, n: usize) -> String {
    assert!(n.is_power_of_two(), "n={n} must be a power of two");
    assert!(m * n <= 1024, "m*n={} exceeds 1024 threads", m * n);
    assert!((1..=1024).contains(&k));
    let log2n = n.trailing_zeros();
    format!(
        "  stid r1
           lsri r2, r1, {log2n}   ; row = tid >> log2(n)
           andi r3, r1, {nm1}     ; col = tid & (n-1)
           muli r4, r2, {k}       ; A row base
           movi r7, 0             ; accumulator
           mov r5, r4             ; A walking index
           mov r6, r3             ; B walking index
           loop {k}, mm_done
           lds r8, [r5+{A_OFF}]
           lds r9, [r6+{B_OFF}]
           mulshr r8, r8, r9, 15
           add r7, r7, r8
           addi r5, r5, 1
           addi r6, r6, {n}
        mm_done:
           sts [r1+{C_OFF}], r7
           exit",
        nm1 = n - 1,
    )
}

/// IR frontend for the matmul, written against the loop-carried SSA
/// form: the inner product is a hardware loop with three block
/// parameters (A index, B index, Q15 accumulator). The allocator
/// coalesces every parameter with its initial and carried values —
/// `muli` seeds the A index directly, `addi`/`add` update the walking
/// state in place — so the lowered loop body equals the hand-written
/// [`matmul_asm`] and the preamble *drops* its two `mov`s.
pub fn matmul_ir(m: usize, k: usize, n: usize) -> Kernel {
    assert!(n.is_power_of_two(), "n={n} must be a power of two");
    assert!(m * n <= 1024, "m*n={} exceeds 1024 threads", m * n);
    assert!((1..=1024).contains(&k));
    let mut b = IrBuilder::new(format!("matmul{m}x{k}x{n}_ir"));
    let tid = b.tid();
    let clog = b.iconst(n.trailing_zeros() as i32);
    let row = b.bin(BinOp::Lsr, tid, clog); // row = tid >> log2(n)
    let cmask = b.iconst((n - 1) as i32);
    let col = b.bin(BinOp::And, tid, cmask); // col = tid & (n-1)
    let ck = b.iconst(k as i32);
    let row_base = b.mul(row, ck); // A row base
    let zero = b.iconst(0);
    // p = [A walking index, B walking index, accumulator].
    let p = b.begin_loop_carried(k as u32, &[row_base, col, zero]);
    let av = b.load(p[0], A_OFF as u32);
    let bv = b.load(p[1], B_OFF as u32);
    let term = b.mulshr(av, bv, 15);
    let acc = b.add(p[2], term);
    let one = b.iconst(1);
    let a_next = b.add(p[0], one);
    let cn = b.iconst(n as i32);
    let b_next = b.add(p[1], cn);
    let r = b.end_loop_carried(&[a_next, b_next, acc]);
    b.store(tid, C_OFF as u32, r[2]);
    b.finish()
}

/// Run the matmul; `a` is m×k, `b` is k×n, both row-major Q15.
pub fn matmul(
    a: &[i32],
    b: &[i32],
    m: usize,
    k: usize,
    n: usize,
) -> Result<(Vec<i32>, KernelResult), KernelError> {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    let cfg = ProcessorConfig::default()
        .with_threads(m * n)
        .with_shared_words(8192);
    let r = run_kernel(
        cfg,
        &matmul_asm(m, k, n),
        &[(A_OFF, &as_words(a)), (B_OFF, &as_words(b))],
        C_OFF,
        m * n,
        RunOptions::default(),
    )?;
    Ok((as_i32(&r.output), r))
}

/// Host reference with identical fixed-point semantics.
pub fn matmul_ref(a: &[i32], b: &[i32], m: usize, k: usize, n: usize) -> Vec<i32> {
    let mut c = vec![0i32; m * n];
    for r in 0..m {
        for col in 0..n {
            let mut acc = 0i32;
            for kk in 0..k {
                acc = q15_mac(acc, a[r * k + kk], b[kk * n + col]);
            }
            c[r * n + col] = acc;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qformat::to_q15;
    use crate::workload::q15_matrix;

    #[test]
    fn matmul_matches_reference() {
        for (m, k, n) in [
            (4usize, 4usize, 4usize),
            (8, 16, 8),
            (16, 16, 16),
            (32, 8, 32),
        ] {
            let a = q15_matrix(m, k, 100 + m as u64);
            let b = q15_matrix(k, n, 200 + n as u64);
            let (got, _) = matmul(&a, &b, m, k, n).unwrap();
            assert_eq!(got, matmul_ref(&a, &b, m, k, n), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn identity_matrix_passthrough() {
        let k = 8;
        let mut eye = vec![0i32; k * k];
        for i in 0..k {
            eye[i * k + i] = to_q15(1.0) - 1; // 0.99997 (Q15 can't hold 1.0)
        }
        let b = q15_matrix(k, k, 3);
        let (got, _) = matmul(&eye, &b, k, k, k).unwrap();
        // (1.0 - eps) * x differs from x by at most 1 LSB per entry.
        for (g, want) in got.iter().zip(&b) {
            assert!((g - want).abs() <= 1, "{g} vs {want}");
        }
    }

    fn mm_config(threads: usize) -> ProcessorConfig {
        ProcessorConfig::default()
            .with_threads(threads)
            .with_shared_words(8192)
    }

    #[test]
    fn matmul_ir_is_bit_exact_against_the_host_reference() {
        use crate::harness::run_program;
        use simt_compiler::{compile, OptLevel};
        for (m, k, n) in [(4usize, 4usize, 4usize), (8, 16, 8), (16, 5, 16)] {
            let a = q15_matrix(m, k, 300 + m as u64);
            let b = q15_matrix(k, n, 400 + n as u64);
            let cfg = mm_config(m * n);
            for opt in [OptLevel::None, OptLevel::Full] {
                let compiled = compile(&matmul_ir(m, k, n), &cfg, opt).unwrap();
                let r = run_program(
                    cfg.clone(),
                    &compiled.program,
                    &[(A_OFF, &as_words(&a)), (B_OFF, &as_words(&b))],
                    C_OFF,
                    m * n,
                    RunOptions::default(),
                )
                .unwrap();
                assert_eq!(
                    as_i32(&r.output),
                    matmul_ref(&a, &b, m, k, n),
                    "{m}x{k}x{n} {opt:?}"
                );
            }
        }
    }

    #[test]
    fn matmul_ir_beats_the_handwritten_kernel() {
        use crate::harness::{run_kernel, run_program};
        use simt_compiler::{compile, OptLevel};
        let (m, k, n) = (8usize, 16usize, 8usize);
        let cfg = mm_config(m * n);
        let compiled = compile(&matmul_ir(m, k, n), &cfg, OptLevel::Full).unwrap();
        let hand = simt_isa::assemble(&matmul_asm(m, k, n)).unwrap();
        // Coalescing elides the hand-written preamble's two index movs.
        assert_eq!(compiled.program.len() + 2, hand.len());
        // And the cycle count is strictly better, measured on the core.
        let a = q15_matrix(m, k, 7);
        let b = q15_matrix(k, n, 8);
        let inputs = [(A_OFF, as_words(&a)), (B_OFF, as_words(&b))];
        let borrows: Vec<(usize, &[u32])> =
            inputs.iter().map(|(o, w)| (*o, w.as_slice())).collect();
        let ir_run = run_program(
            cfg.clone(),
            &compiled.program,
            &borrows,
            C_OFF,
            m * n,
            RunOptions::default(),
        )
        .unwrap();
        let hand_run = run_kernel(
            cfg,
            &matmul_asm(m, k, n),
            &borrows,
            C_OFF,
            m * n,
            RunOptions::default(),
        )
        .unwrap();
        assert_eq!(ir_run.output, hand_run.output, "bit-exact vs hand-written");
        assert!(
            ir_run.stats.cycles < hand_run.stats.cycles,
            "IR {} vs hand {} cycles",
            ir_run.stats.cycles,
            hand_run.stats.cycles
        );
        // The hardware loop stays zero-overhead.
        assert_eq!(ir_run.stats.branches_taken, 0);
        assert_eq!(ir_run.stats.loop_backedges as usize, k - 1);
    }

    #[test]
    fn looped_matmul_fuses_with_a_downstream_scale_stage() {
        // Loop-carried kernels are ordinary SSA now, so the graph-level
        // fusion machinery can stitch them: matmul -> scale chains into
        // ONE kernel, the C-matrix handoff forwarded through the
        // accumulator's result register and its store elided.
        use crate::harness::run_program;
        use simt_compiler::{compile, fuse_kernels, OptLevel};
        let (m, k, n) = (8usize, 8usize, 8usize);
        let threads = m * n;
        let out_off = 5120usize;
        let mm = matmul_ir(m, k, n);
        let sc = crate::vector::scale_ir_at(2, C_OFF, out_off);
        let (fused, report) = fuse_kernels(
            "mm_scale",
            &[&mm, &sc],
            &[(C_OFF, C_OFF + threads)],
            threads,
        )
        .unwrap();
        assert_eq!(report.parts, 2);
        assert_eq!(report.stores_elided, 1, "\n{fused}");
        assert_eq!(report.loads_eliminated, 1, "\n{fused}");
        let a = q15_matrix(m, k, 21);
        let b = q15_matrix(k, n, 22);
        let cfg = mm_config(threads);
        let compiled = compile(&fused, &cfg, OptLevel::Full).unwrap();
        let r = run_program(
            cfg,
            &compiled.program,
            &[(A_OFF, &as_words(&a)), (B_OFF, &as_words(&b))],
            out_off,
            threads,
            RunOptions::default(),
        )
        .unwrap();
        let want: Vec<i32> = matmul_ref(&a, &b, m, k, n)
            .into_iter()
            .map(|v| v >> 2)
            .collect();
        assert_eq!(as_i32(&r.output), want);
    }

    #[test]
    fn loop_bookkeeping_is_zero_overhead() {
        let (m, k, n) = (8, 32, 8);
        let a = q15_matrix(m, k, 1);
        let b = q15_matrix(k, n, 2);
        let (_, r) = matmul(&a, &b, m, k, n).unwrap();
        // k iterations, no branch flushes from the hardware loop.
        assert_eq!(r.stats.branches_taken, 0);
        assert_eq!(r.stats.loop_backedges as usize, k - 1);
    }
}
