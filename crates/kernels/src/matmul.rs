//! Q15 matrix multiply using the zero-overhead loops of §3.
//!
//! One thread per output element: thread `i` computes
//! `C[i / n][i % n] = Σ_kk (A[row][kk]·B[kk][col]) >> 15`, with the inner
//! product as a hardware `loop` (single-cycle loop bookkeeping, no branch
//! flushes). `n` must be a power of two so row/col extraction uses the
//! shifter.

use crate::harness::{run_kernel, KernelError, KernelResult};
use crate::qformat::{as_i32, as_words, q15_mac};
use simt_core::{ProcessorConfig, RunOptions};

/// Matrix A offset (m × k words, row-major).
pub const A_OFF: usize = 0;
/// Matrix B offset (k × n words, row-major).
pub const B_OFF: usize = 2048;
/// Matrix C offset (m × n words, row-major).
pub const C_OFF: usize = 4096;

/// Generate the matmul kernel for `m × k` times `k × n`.
pub fn matmul_asm(m: usize, k: usize, n: usize) -> String {
    assert!(n.is_power_of_two(), "n={n} must be a power of two");
    assert!(m * n <= 1024, "m*n={} exceeds 1024 threads", m * n);
    assert!((1..=1024).contains(&k));
    let log2n = n.trailing_zeros();
    format!(
        "  stid r1
           lsri r2, r1, {log2n}   ; row = tid >> log2(n)
           andi r3, r1, {nm1}     ; col = tid & (n-1)
           muli r4, r2, {k}       ; A row base
           movi r7, 0             ; accumulator
           mov r5, r4             ; A walking index
           mov r6, r3             ; B walking index
           loop {k}, mm_done
           lds r8, [r5+{A_OFF}]
           lds r9, [r6+{B_OFF}]
           mulshr r8, r8, r9, 15
           add r7, r7, r8
           addi r5, r5, 1
           addi r6, r6, {n}
        mm_done:
           sts [r1+{C_OFF}], r7
           exit",
        nm1 = n - 1,
    )
}

/// Run the matmul; `a` is m×k, `b` is k×n, both row-major Q15.
pub fn matmul(
    a: &[i32],
    b: &[i32],
    m: usize,
    k: usize,
    n: usize,
) -> Result<(Vec<i32>, KernelResult), KernelError> {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    let cfg = ProcessorConfig::default()
        .with_threads(m * n)
        .with_shared_words(8192);
    let r = run_kernel(
        cfg,
        &matmul_asm(m, k, n),
        &[(A_OFF, &as_words(a)), (B_OFF, &as_words(b))],
        C_OFF,
        m * n,
        RunOptions::default(),
    )?;
    Ok((as_i32(&r.output), r))
}

/// Host reference with identical fixed-point semantics.
pub fn matmul_ref(a: &[i32], b: &[i32], m: usize, k: usize, n: usize) -> Vec<i32> {
    let mut c = vec![0i32; m * n];
    for r in 0..m {
        for col in 0..n {
            let mut acc = 0i32;
            for kk in 0..k {
                acc = q15_mac(acc, a[r * k + kk], b[kk * n + col]);
            }
            c[r * n + col] = acc;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qformat::to_q15;
    use crate::workload::q15_matrix;

    #[test]
    fn matmul_matches_reference() {
        for (m, k, n) in [
            (4usize, 4usize, 4usize),
            (8, 16, 8),
            (16, 16, 16),
            (32, 8, 32),
        ] {
            let a = q15_matrix(m, k, 100 + m as u64);
            let b = q15_matrix(k, n, 200 + n as u64);
            let (got, _) = matmul(&a, &b, m, k, n).unwrap();
            assert_eq!(got, matmul_ref(&a, &b, m, k, n), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn identity_matrix_passthrough() {
        let k = 8;
        let mut eye = vec![0i32; k * k];
        for i in 0..k {
            eye[i * k + i] = to_q15(1.0) - 1; // 0.99997 (Q15 can't hold 1.0)
        }
        let b = q15_matrix(k, k, 3);
        let (got, _) = matmul(&eye, &b, k, k, k).unwrap();
        // (1.0 - eps) * x differs from x by at most 1 LSB per entry.
        for (g, want) in got.iter().zip(&b) {
            assert!((g - want).abs() <= 1, "{g} vs {want}");
        }
    }

    #[test]
    fn loop_bookkeeping_is_zero_overhead() {
        let (m, k, n) = (8, 32, 8);
        let a = q15_matrix(m, k, 1);
        let b = q15_matrix(k, n, 2);
        let (_, r) = matmul(&a, &b, m, k, n).unwrap();
        // k iterations, no branch flushes from the hardware loop.
        assert_eq!(r.stats.branches_taken, 0);
        assert_eq!(r.stats.loop_backedges as usize, k - 1);
    }
}
