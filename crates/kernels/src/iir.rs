//! Q15 IIR biquad bank — one thread filters one channel sequentially
//! with a zero-overhead loop (§3's "single-cycle DSP processor-like loop
//! instructions"). The classic embedded-DSP workload the eGPU lineage
//! targets.
//!
//! Samples are channel-interleaved: sample `j` of channel `i` lives at
//! `X_OFF + j·n + i` (stride `n` per loop iteration keeps the address
//! arithmetic to one `addi`).

use crate::harness::{run_kernel, KernelError, KernelResult};
use crate::qformat::{as_i32, as_words, q15_mul};
use simt_compiler::{IrBuilder, Kernel};
use simt_core::{ProcessorConfig, RunOptions};

/// Input offset.
pub const X_OFF: usize = 0;
/// Output offset.
pub const Y_OFF: usize = 4096;

/// Direct-Form-I biquad coefficients in Q15.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Biquad {
    /// Feed-forward b0, b1, b2.
    pub b: [i32; 3],
    /// Feedback a1, a2 (y\[k\] = Σb·x − a1·y1 − a2·y2).
    pub a: [i32; 2],
}

impl Biquad {
    /// A gentle Q15 low-pass biquad (stable: poles well inside the unit
    /// circle).
    pub fn lowpass() -> Self {
        Biquad {
            b: [
                crate::qformat::to_q15(0.2), // b0
                crate::qformat::to_q15(0.4), // b1
                crate::qformat::to_q15(0.2), // b2
            ],
            a: [
                crate::qformat::to_q15(-0.3), // a1
                crate::qformat::to_q15(0.1),  // a2
            ],
        }
    }
}

/// Generate the biquad kernel for `n` channels × `m` samples.
pub fn iir_asm(n: usize, m: usize, q: Biquad) -> String {
    assert!((1..=1024).contains(&n));
    assert!((1..=4096).contains(&m));
    // y = b0·x0 + b1·x1 + b2·x2 − a1·y1 − a2·y2, all Q15.
    let (b0, b1, b2) = (q.b[0], q.b[1], q.b[2]);
    let (na1, na2) = (-q.a[0], -q.a[1]);
    format!(
        "  stid r1
           mov r5, r1           ; input index
           mov r6, r1           ; output index
           movi r9, 0           ; x1
           movi r10, 0          ; x2
           movi r11, 0          ; y1
           movi r12, 0          ; y2
           loop {m}, iir_done
           lds r8, [r5+{X_OFF}]
           movi r13, {b0}
           mulshr r7, r8, r13, 15
           movi r13, {b1}
           mulshr r14, r9, r13, 15
           add r7, r7, r14
           movi r13, {b2}
           mulshr r14, r10, r13, 15
           add r7, r7, r14
           movi r13, {na1}
           mulshr r14, r11, r13, 15
           add r7, r7, r14
           movi r13, {na2}
           mulshr r14, r12, r13, 15
           add r7, r7, r14
           sts [r6+{Y_OFF}], r7
           mov r10, r9          ; x2 = x1
           mov r9, r8           ; x1 = x0
           mov r12, r11         ; y2 = y1
           mov r11, r7          ; y1 = y
           addi r5, r5, {n}
           addi r6, r6, {n}
        iir_done:
           exit"
    )
}

/// IR frontend for the biquad bank, written against the loop-carried
/// SSA form: one hardware loop with five block parameters — the
/// walking sample index and the Direct-Form-I state (x1, x2, y1, y2).
/// The frontend emits the coefficient constants *inside* the body, the
/// way a mechanical code generator would; LICM hoists all five out
/// (the hand-written [`iir_asm`] instead re-`movi`s a shared register
/// per tap, five times per sample). The index coalesces onto an
/// in-place `addi` (one walking index feeds both the load and the
/// store through their offset fields, where the hand kernel walks
/// two), and the state rotation lowers to the same four ordered `mov`s
/// the hand kernel schedules.
pub fn iir_ir(n: usize, m: usize, q: Biquad) -> Kernel {
    assert!((1..=1024).contains(&n));
    assert!((1..=4096).contains(&m));
    let (b0, b1, b2) = (q.b[0], q.b[1], q.b[2]);
    let (na1, na2) = (-q.a[0], -q.a[1]);
    let mut b = IrBuilder::new(format!("iir{n}x{m}_ir"));
    let tid = b.tid();
    let zero = b.iconst(0);
    // p = [sample index, x1, x2, y1, y2].
    let p = b.begin_loop_carried(m as u32, &[tid, zero, zero, zero, zero]);
    let x0 = b.load(p[0], X_OFF as u32);
    let cb0 = b.iconst(b0);
    let t0 = b.mulshr(x0, cb0, 15);
    let cb1 = b.iconst(b1);
    let t1 = b.mulshr(p[1], cb1, 15);
    let s1 = b.add(t0, t1);
    let cb2 = b.iconst(b2);
    let t2 = b.mulshr(p[2], cb2, 15);
    let s2 = b.add(s1, t2);
    let ca1 = b.iconst(na1);
    let t3 = b.mulshr(p[3], ca1, 15);
    let s3 = b.add(s2, t3);
    let ca2 = b.iconst(na2);
    let t4 = b.mulshr(p[4], ca2, 15);
    let y = b.add(s3, t4);
    b.store(p[0], Y_OFF as u32, y);
    let cn = b.iconst(n as i32);
    let idx_next = b.add(p[0], cn);
    b.end_loop_carried(&[idx_next, x0, p[1], y, p[3]]);
    b.finish()
}

/// Run the biquad bank: `x` is channel-interleaved, length `n·m`.
pub fn iir(
    x: &[i32],
    n: usize,
    m: usize,
    q: Biquad,
) -> Result<(Vec<i32>, KernelResult), KernelError> {
    assert_eq!(x.len(), n * m);
    let cfg = ProcessorConfig::default()
        .with_threads(n)
        .with_shared_words(8192);
    let r = run_kernel(
        cfg,
        &iir_asm(n, m, q),
        &[(X_OFF, &as_words(x))],
        Y_OFF,
        n * m,
        RunOptions::default(),
    )?;
    Ok((as_i32(&r.output), r))
}

/// Host reference with identical fixed-point arithmetic and state order.
pub fn iir_ref(x: &[i32], n: usize, m: usize, q: Biquad) -> Vec<i32> {
    let mut y = vec![0i32; n * m];
    for ch in 0..n {
        let (mut x1, mut x2, mut y1, mut y2) = (0i32, 0i32, 0i32, 0i32);
        for j in 0..m {
            let x0 = x[j * n + ch];
            let mut acc = q15_mul(x0, q.b[0]);
            acc = acc.wrapping_add(q15_mul(x1, q.b[1]));
            acc = acc.wrapping_add(q15_mul(x2, q.b[2]));
            acc = acc.wrapping_add(q15_mul(y1, -q.a[0]));
            acc = acc.wrapping_add(q15_mul(y2, -q.a[1]));
            y[j * n + ch] = acc;
            x2 = x1;
            x1 = x0;
            y2 = y1;
            y1 = acc;
        }
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qformat::{from_q15, to_q15};
    use crate::workload::q15_signal;

    #[test]
    fn biquad_matches_reference() {
        let (n, m) = (64usize, 32usize);
        // Interleave n copies of shifted signals.
        let mut x = vec![0i32; n * m];
        for ch in 0..n {
            let sig = q15_signal(m, ch as u64);
            for j in 0..m {
                x[j * n + ch] = sig[j];
            }
        }
        let q = Biquad::lowpass();
        let (got, _) = iir(&x, n, m, q).unwrap();
        assert_eq!(got, iir_ref(&x, n, m, q));
    }

    #[test]
    fn impulse_response_first_samples() {
        // Channel 0 gets a unit impulse; the first outputs are b0, then
        // b1 - a1*b0 (Q15-rounded at each step, matching the hardware).
        let (n, m) = (16usize, 8usize);
        let mut x = vec![0i32; n * m];
        x[0] = to_q15(0.999);
        let q = Biquad::lowpass();
        let (got, _) = iir(&x, n, m, q).unwrap();
        let want = iir_ref(&x, n, m, q);
        assert_eq!(got, want);
        assert!((from_q15(got[0]) - 0.2).abs() < 0.01, "y0 ~ b0·x0");
        // Other channels stay silent.
        assert!(got.iter().skip(1).take(n - 1).all(|&v| v == 0));
    }

    #[test]
    fn dc_gain_settles() {
        // Constant input: steady state ≈ sum(b)/(1+sum(a)) = 0.8/0.8 = 1.
        let (n, m) = (16usize, 64usize);
        let dc = to_q15(0.25);
        let x = vec![dc; n * m];
        let q = Biquad::lowpass();
        let (got, _) = iir(&x, n, m, q).unwrap();
        let last = from_q15(got[(m - 1) * n]);
        assert!((last - 0.25).abs() < 0.02, "settled at {last}");
    }

    fn iir_config(n: usize) -> ProcessorConfig {
        ProcessorConfig::default()
            .with_threads(n)
            .with_shared_words(8192)
    }

    fn interleaved(n: usize, m: usize, seed: u64) -> Vec<i32> {
        let mut x = vec![0i32; n * m];
        for ch in 0..n {
            let sig = q15_signal(m, seed + ch as u64);
            for j in 0..m {
                x[j * n + ch] = sig[j];
            }
        }
        x
    }

    #[test]
    fn iir_ir_is_bit_exact_against_the_host_reference() {
        use crate::harness::run_program;
        use simt_compiler::{compile, OptLevel};
        let q = Biquad::lowpass();
        for (n, m) in [(16usize, 8usize), (64, 32), (8, 1)] {
            let x = interleaved(n, m, 1000);
            let cfg = iir_config(n);
            for opt in [OptLevel::None, OptLevel::Full] {
                let compiled = compile(&iir_ir(n, m, q), &cfg, opt).unwrap();
                let r = run_program(
                    cfg.clone(),
                    &compiled.program,
                    &[(X_OFF, &as_words(&x))],
                    Y_OFF,
                    n * m,
                    RunOptions::default(),
                )
                .unwrap();
                assert_eq!(as_i32(&r.output), iir_ref(&x, n, m, q), "{n}x{m} {opt:?}");
            }
        }
    }

    #[test]
    fn iir_ir_beats_the_handwritten_kernel() {
        use crate::harness::run_program;
        use simt_compiler::{compile, OptLevel};
        let (n, m) = (16usize, 32usize);
        let q = Biquad::lowpass();
        let cfg = iir_config(n);
        let compiled = compile(&iir_ir(n, m, q), &cfg, OptLevel::Full).unwrap();
        let x = interleaved(n, m, 7);
        let ir_run = run_program(
            cfg.clone(),
            &compiled.program,
            &[(X_OFF, &as_words(&x))],
            Y_OFF,
            n * m,
            RunOptions::default(),
        )
        .unwrap();
        let (hand_out, hand_run) = iir(&x, n, m, q).unwrap();
        assert_eq!(
            as_i32(&ir_run.output),
            hand_out,
            "bit-exact vs hand-written"
        );
        // LICM hoisted the five coefficient movis out of the body and
        // the walking index collapsed to one in-place addi: strictly
        // fewer cycles than the hand schedule.
        assert!(
            ir_run.stats.cycles < hand_run.stats.cycles,
            "IR {} vs hand {} cycles",
            ir_run.stats.cycles,
            hand_run.stats.cycles
        );
        assert_eq!(ir_run.stats.branches_taken, 0);
        assert_eq!(ir_run.stats.loop_backedges as usize, m - 1);
    }

    #[test]
    fn loop_is_zero_overhead() {
        let (n, m) = (16usize, 32usize);
        let x = vec![0i32; n * m];
        let (_, r) = iir(&x, n, m, Biquad::lowpass()).unwrap();
        assert_eq!(r.stats.branches_taken, 0);
        assert_eq!(r.stats.loop_backedges as usize, m - 1);
    }
}
