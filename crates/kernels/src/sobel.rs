//! Sobel edge magnitude — a 2-D embedded-vision kernel using the
//! address-generation helpers (`shadd`) and the adder's `abs`.
//!
//! The image is stored with a one-pixel halo: interior width `IW` is a
//! power of two (so row/column extraction is a shift and a mask), stride
//! `IW + 2`. One thread per interior pixel; all eight neighbourhood
//! loads use non-negative offsets from the window's top-left corner.

use crate::harness::{run_kernel, KernelError, KernelResult};
use crate::qformat::{as_i32, as_words};
use simt_core::{ProcessorConfig, RunOptions};

/// Image offset (with halo).
pub const IMG_OFF: usize = 0;
/// Output offset (interior only, row-major IW × IH).
pub const OUT_OFF: usize = 4096;

/// Generate the Sobel kernel for an interior of `iw × ih` (iw a power of
/// two, `iw·ih ≤ 1024`).
pub fn sobel_asm(iw: usize, ih: usize) -> String {
    assert!(iw.is_power_of_two() && iw >= 2, "iw={iw}");
    assert!(iw * ih <= 1024, "too many pixels");
    let stride = iw + 2;
    let log2w = iw.trailing_zeros();
    // Window top-left = iy·stride + ix ; neighbour offsets:
    // p00 0, p01 1, p02 2, p10 s, p12 s+2, p20 2s, p21 2s+1, p22 2s+2.
    format!(
        "  stid r1
           lsri r2, r1, {log2w}   ; iy
           andi r3, r1, {mask}    ; ix
           muli r4, r2, {stride}  ; window top-left
           add r4, r4, r3
           ; Gx = (p02 + 2 p12 + p22) - (p00 + 2 p10 + p20)
           lds r8, [r4+{p02}]
           lds r9, [r4+{p12}]
           shadd r5, r9, r8, 1    ; p02 + 2 p12
           lds r8, [r4+{p22}]
           add r5, r5, r8
           lds r8, [r4+{p00}]
           lds r9, [r4+{p10}]
           shadd r6, r9, r8, 1
           lds r8, [r4+{p20}]
           add r6, r6, r8
           sub r5, r5, r6
           abs r5, r5             ; |Gx|
           ; Gy = (p20 + 2 p21 + p22) - (p00 + 2 p01 + p02)
           lds r8, [r4+{p20}]
           lds r9, [r4+{p21}]
           shadd r6, r9, r8, 1
           lds r8, [r4+{p22}]
           add r6, r6, r8
           lds r8, [r4+{p00}]
           lds r9, [r4+{p01}]
           shadd r7, r9, r8, 1
           lds r8, [r4+{p02}]
           add r7, r7, r8
           sub r6, r6, r7
           abs r6, r6             ; |Gy|
           satadd r5, r5, r6      ; magnitude, saturating
           sts [r1+{OUT_OFF}], r5
           exit",
        mask = iw - 1,
        p00 = IMG_OFF,
        p01 = IMG_OFF + 1,
        p02 = IMG_OFF + 2,
        p10 = IMG_OFF + stride,
        p12 = IMG_OFF + stride + 2,
        p20 = IMG_OFF + 2 * stride,
        p21 = IMG_OFF + 2 * stride + 1,
        p22 = IMG_OFF + 2 * stride + 2,
    )
}

/// Run Sobel over a haloed image of `(iw+2) × (ih+2)` pixels.
pub fn sobel(img: &[i32], iw: usize, ih: usize) -> Result<(Vec<i32>, KernelResult), KernelError> {
    assert_eq!(
        img.len(),
        (iw + 2) * (ih + 2),
        "image must include the halo"
    );
    let cfg = ProcessorConfig::default()
        .with_threads(iw * ih)
        .with_shared_words(8192);
    let r = run_kernel(
        cfg,
        &sobel_asm(iw, ih),
        &[(IMG_OFF, &as_words(img))],
        OUT_OFF,
        iw * ih,
        RunOptions::default(),
    )?;
    Ok((as_i32(&r.output), r))
}

/// Host reference with identical (wrapping + saturating-add) semantics.
pub fn sobel_ref(img: &[i32], iw: usize, ih: usize) -> Vec<i32> {
    let s = iw + 2;
    let px = |r: usize, c: usize| img[r * s + c];
    let mut out = Vec::with_capacity(iw * ih);
    for iy in 0..ih {
        for ix in 0..iw {
            let (r, c) = (iy, ix); // window top-left
            let gx = px(r, c + 2)
                .wrapping_add(px(r + 1, c + 2).wrapping_mul(2))
                .wrapping_add(px(r + 2, c + 2))
                .wrapping_sub(px(r, c))
                .wrapping_sub(px(r + 1, c).wrapping_mul(2))
                .wrapping_sub(px(r + 2, c));
            let gy = px(r + 2, c)
                .wrapping_add(px(r + 2, c + 1).wrapping_mul(2))
                .wrapping_add(px(r + 2, c + 2))
                .wrapping_sub(px(r, c))
                .wrapping_sub(px(r, c + 1).wrapping_mul(2))
                .wrapping_sub(px(r, c + 2));
            out.push(gx.wrapping_abs().saturating_add(gy.wrapping_abs()));
        }
    }
    out
}

/// A synthetic test card: a bright square on a dark background (haloed).
pub fn test_card(iw: usize, ih: usize) -> Vec<i32> {
    let s = iw + 2;
    let mut img = vec![0i32; s * (ih + 2)];
    for y in 0..ih + 2 {
        for x in 0..s {
            let inside = x > s / 4 && x < 3 * s / 4 && y > (ih + 2) / 4 && y < 3 * (ih + 2) / 4;
            img[y * s + x] = if inside { 1000 } else { 100 };
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sobel_matches_reference() {
        for (iw, ih) in [(8usize, 8usize), (16, 16), (32, 32), (16, 8)] {
            let img = test_card(iw, ih);
            let (got, _) = sobel(&img, iw, ih).unwrap();
            assert_eq!(got, sobel_ref(&img, iw, ih), "{iw}x{ih}");
        }
    }

    #[test]
    fn flat_image_has_zero_gradient() {
        let iw = 16;
        let ih = 16;
        let img = vec![777i32; (iw + 2) * (ih + 2)];
        let (got, _) = sobel(&img, iw, ih).unwrap();
        assert!(got.iter().all(|&v| v == 0));
    }

    #[test]
    fn edges_light_up() {
        let (iw, ih) = (16usize, 16usize);
        let img = test_card(iw, ih);
        let got = sobel_ref(&img, iw, ih);
        let max = got.iter().max().unwrap();
        assert!(*max > 2000, "edge magnitude {max}");
        // Centre of the bright square is flat.
        assert_eq!(got[(ih / 2) * iw + iw / 2], 0);
    }

    #[test]
    fn random_images_agree() {
        use crate::workload::int_vector;
        let (iw, ih) = (16usize, 16usize);
        let img: Vec<i32> = int_vector((iw + 2) * (ih + 2), 77)
            .iter()
            .map(|v| v % 10_000)
            .collect();
        let (got, _) = sobel(&img, iw, ih).unwrap();
        assert_eq!(got, sobel_ref(&img, iw, ih));
    }
}
