//! Placement: assigning the processor's modules to device cells.
//!
//! The placer is geometric and deterministic (the per-seed variation is
//! applied by the STA's quality jitter, not by re-placing): SPs stack in
//! pairs of rows along the DSP spine ("the 16 SPs straddling the spine of
//! DSP Blocks down the center", §5), the shared memory forms a cluster at
//! the M20K columns on the left, and the instruction block sits beyond it
//! (its delay chain lets it place independently, §3).

use crate::area::AreaReport;
use crate::calib;
use fpga_fabric::{ColumnKind, Device};
use serde::{Deserialize, Serialize};
use simt_isa::SP_COUNT;

/// Placement constraint (§5's experiments, plus the §6 future-work
/// exploration).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Constraint {
    /// Quartus default placement.
    Unconstrained,
    /// Rectangular bounding box sized for a target logic utilization
    /// (0 < utilization < 1).
    BoundingBox {
        /// Target logic utilization inside the box (0.86 and 0.93 in §5).
        utilization: f64,
    },
    /// §6 future work #1: component-level constraints — "aligning
    /// individual SPs to individual rows or regions (encompassing the
    /// minimum required number of M20Ks and DSP Blocks for that
    /// instance)". Each SP is pinned to its two DSP rows with its logic
    /// pre-partitioned, which removes most congestion-induced detours:
    /// the model recovers [`COMPONENT_ALIGN_RECOVERY`] of the congestion
    /// penalty at the same utilization.
    ComponentAligned {
        /// Target logic utilization inside the box.
        utilization: f64,
    },
}

/// Fraction of the congestion quality penalty that SP-level row
/// alignment removes (§6's hypothesis, explored with this model: the
/// router no longer trades SP-internal locality against global slack).
pub const COMPONENT_ALIGN_RECOVERY: f64 = 0.6;

/// A rectangle of device cells, half-open on both axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rect {
    /// Left column.
    pub col0: usize,
    /// Bottom row.
    pub row0: usize,
    /// One past the right column.
    pub col1: usize,
    /// One past the top row.
    pub row1: usize,
}

impl Rect {
    /// Width in columns.
    pub fn width(&self) -> usize {
        self.col1 - self.col0
    }

    /// Height in rows.
    pub fn height(&self) -> usize {
        self.row1 - self.row0
    }

    /// Centre point.
    pub fn centre(&self) -> (f64, f64) {
        (
            (self.col0 + self.col1) as f64 / 2.0,
            (self.row0 + self.row1) as f64 / 2.0,
        )
    }

    /// Whether a cell is inside.
    pub fn contains(&self, col: usize, row: usize) -> bool {
        col >= self.col0 && col < self.col1 && row >= self.row0 && row < self.row1
    }
}

/// A placed module.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacedModule {
    /// Module name ("sp0".."sp15", "shared", "inst").
    pub name: String,
    /// Footprint.
    pub rect: Rect,
}

/// One core's placement (a stamp).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorePlacement {
    /// Stamp index.
    pub stamp: usize,
    /// Overall region of this core.
    pub region: Rect,
    /// Module footprints.
    pub modules: Vec<PlacedModule>,
}

/// The full placement result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// Constraint used.
    pub constraint: Constraint,
    /// Per-stamp core placements.
    pub cores: Vec<CorePlacement>,
    /// Achieved logic utilization inside the (per-core) region.
    pub utilization: f64,
    /// Routing-quality multiplier from congestion (≥ 1.0; applied to
    /// every soft route by the STA).
    pub quality: f64,
}

/// Rows one core occupies: 16 SPs × 2 DSP blocks, one DSP per row in the
/// AGFD019's single DSP column — "placement of the cores is always
/// forced into a 32 row height" (§5).
pub const CORE_ROWS: usize = 2 * SP_COUNT;

/// Congestion quality factor for a logic utilization (≥ 1.0).
pub fn quality_for_utilization(u: f64) -> f64 {
    1.0 + calib::CONGESTION_CUBIC * (u - calib::CONGESTION_KNEE).max(0.0).powi(3)
}

/// Place `stamps` cores of the given area on a device.
///
/// # Panics
/// If the device cannot host the requested stamps (not enough sectors /
/// DSP rows) or the utilization is not in (0, 1).
pub fn place(
    device: &Device,
    area: &AreaReport,
    constraint: Constraint,
    stamps: usize,
) -> Placement {
    assert!(stamps >= 1, "at least one stamp");
    let sector_cols = device.geometry.cols();
    let dsp_col_local = device.geometry.columns_of(ColumnKind::Dsp)[0];
    assert!(
        stamps <= device.sectors_x * device.sectors_y,
        "device has {} sectors, cannot separate {} stamps",
        device.sectors_x * device.sectors_y,
        stamps
    );

    // LAB columns the core's logic needs at the target utilization.
    let alm_cols_needed = |u: f64| -> usize {
        ((area.gpgpu.alms as f64) / (CORE_ROWS as f64 * 10.0 * u)).ceil() as usize
    };
    let (utilization, lab_cols, align_recovery) = match constraint {
        Constraint::Unconstrained => {
            let cols = alm_cols_needed(calib::UNCONSTRAINED_UTILIZATION);
            (calib::UNCONSTRAINED_UTILIZATION, cols, 0.0)
        }
        Constraint::BoundingBox { utilization } => {
            assert!(
                utilization > 0.0 && utilization < 1.0,
                "utilization {utilization} out of (0,1)"
            );
            (utilization, alm_cols_needed(utilization), 0.0)
        }
        Constraint::ComponentAligned { utilization } => {
            assert!(
                utilization > 0.0 && utilization < 1.0,
                "utilization {utilization} out of (0,1)"
            );
            (
                utilization,
                alm_cols_needed(utilization),
                COMPONENT_ALIGN_RECOVERY,
            )
        }
    };

    let raw_quality = quality_for_utilization(utilization);
    let quality = 1.0 + (raw_quality - 1.0) * (1.0 - align_recovery);
    let mut cores = Vec::with_capacity(stamps);
    for stamp in 0..stamps {
        // One sector per stamp, walking the sector grid row-major —
        // "3 cores in a group, separated by a sector boundary" (§5.1).
        let sx = stamp % device.sectors_x;
        let sy = stamp / device.sectors_x;
        let col_base = sx * sector_cols;
        let row_base = sy * device.geometry.rows;
        let spine = col_base + dsp_col_local;

        // Split the LAB columns around the spine.
        let left_cols = lab_cols / 2;
        let right_cols = lab_cols - left_cols;
        let region = Rect {
            col0: spine.saturating_sub(left_cols + 2), // +2: M20K cols for shared
            row0: row_base,
            col1: (spine + right_cols + 1).min(col_base + sector_cols),
            row1: row_base + CORE_ROWS,
        };

        let mut modules = Vec::with_capacity(SP_COUNT + 2);
        // SPs: two DSP rows each, ALMs straddling the spine.
        for i in 0..SP_COUNT {
            modules.push(PlacedModule {
                name: format!("sp{i}"),
                rect: Rect {
                    col0: spine - left_cols,
                    row0: row_base + 2 * i,
                    col1: spine + right_cols + 1,
                    row1: row_base + 2 * i + 2,
                },
            });
        }
        // Shared memory: a cluster on the left ("The shared memory ...
        // forms a cluster to the left side of the placement", §5).
        modules.push(PlacedModule {
            name: "shared".to_string(),
            rect: Rect {
                col0: region.col0,
                row0: row_base,
                col1: spine - left_cols,
                row1: row_base + CORE_ROWS,
            },
        });
        // Instruction block: bottom-left corner; the control delay chain
        // lets it place "elsewhere on the device where convenient" (§3).
        modules.push(PlacedModule {
            name: "inst".to_string(),
            rect: Rect {
                col0: region.col0,
                row0: row_base,
                col1: region.col0 + 3,
                row1: row_base + 6,
            },
        });
        cores.push(CorePlacement {
            stamp,
            region,
            modules,
        });
    }

    Placement {
        constraint,
        cores,
        utilization,
        quality,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::area::area_model;
    use simt_core::ProcessorConfig;

    fn setup(constraint: Constraint, stamps: usize) -> Placement {
        let device = Device::agfd019();
        let area = area_model(&ProcessorConfig::default());
        place(&device, &area, constraint, stamps)
    }

    #[test]
    fn single_core_is_32_rows() {
        let p = setup(Constraint::Unconstrained, 1);
        assert_eq!(p.cores.len(), 1);
        assert_eq!(p.cores[0].region.height(), 32);
        for i in 0..16 {
            let sp = &p.cores[0].modules[i];
            assert_eq!(sp.rect.height(), 2, "{}", sp.name);
        }
    }

    #[test]
    fn unconstrained_quality_is_nominal() {
        let p = setup(Constraint::Unconstrained, 1);
        assert_eq!(p.quality, 1.0);
        assert!(p.utilization < 0.6);
    }

    #[test]
    fn tighter_box_is_narrower_and_worse_quality() {
        let loose = setup(Constraint::BoundingBox { utilization: 0.86 }, 1);
        let tight = setup(Constraint::BoundingBox { utilization: 0.93 }, 1);
        assert!(tight.cores[0].region.width() <= loose.cores[0].region.width());
        assert!(tight.quality > loose.quality);
        assert!(loose.quality > 1.0);
    }

    #[test]
    fn stamps_land_in_distinct_sectors() {
        let p = setup(Constraint::BoundingBox { utilization: 0.93 }, 3);
        assert_eq!(p.cores.len(), 3);
        let device = Device::agfd019();
        for pair in p.cores.windows(2) {
            let a = pair[0].region;
            let b = pair[1].region;
            assert!(device.crosses_sector((a.col0, a.row0), (b.col0, b.row0)));
        }
    }

    #[test]
    fn shared_cluster_is_left_of_sps() {
        let p = setup(Constraint::Unconstrained, 1);
        let shared = p.cores[0]
            .modules
            .iter()
            .find(|m| m.name == "shared")
            .unwrap();
        let sp0 = &p.cores[0].modules[0];
        assert!(shared.rect.col1 <= sp0.rect.col0 + 1);
    }

    #[test]
    fn component_alignment_recovers_quality() {
        // §6 future work: SP-level row alignment should pack denser at
        // the same clock — here, the same 93% box with most of the
        // congestion penalty removed.
        let boxed = setup(Constraint::BoundingBox { utilization: 0.93 }, 1);
        let aligned = setup(Constraint::ComponentAligned { utilization: 0.93 }, 1);
        assert!(aligned.quality < boxed.quality);
        assert!(aligned.quality > 1.0);
        assert_eq!(aligned.utilization, boxed.utilization);
    }

    #[test]
    #[should_panic(expected = "cannot separate")]
    fn too_many_stamps_panics() {
        setup(Constraint::Unconstrained, 99);
    }

    #[test]
    #[should_panic(expected = "out of (0,1)")]
    fn bad_utilization_panics() {
        setup(Constraint::BoundingBox { utilization: 1.5 }, 1);
    }
}
