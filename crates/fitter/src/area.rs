//! The area model: module-level ALM / register / M20K / DSP counts as a
//! function of the processor configuration, reproducing Table 1 for the
//! reference instance (16 SPs, 16 K registers, 16 KB shared memory).
//!
//! Every formula is a structural decomposition of the datapath it sizes;
//! the constants are LUT-packing estimates calibrated at the 32-bit
//! reference width. A unit test pins each Table 1 cell.

use crate::calib;
use fpga_fabric::m20k::M20kMode;
use serde::{Deserialize, Serialize};
use simt_core::ProcessorConfig;
use simt_isa::SP_COUNT;

/// Resource vector of one module (one row of Table 1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModuleArea {
    /// Adaptive logic modules.
    pub alms: usize,
    /// Registers (all classes).
    pub regs: usize,
    /// M20K memory blocks.
    pub m20k: usize,
    /// DSP blocks.
    pub dsp: usize,
}

impl ModuleArea {
    /// Element-wise sum.
    pub fn plus(self, o: ModuleArea) -> ModuleArea {
        ModuleArea {
            alms: self.alms + o.alms,
            regs: self.regs + o.regs,
            m20k: self.m20k + o.m20k,
            dsp: self.dsp + o.dsp,
        }
    }

    /// Scale by an instance count.
    pub fn times(self, n: usize) -> ModuleArea {
        ModuleArea {
            alms: self.alms * n,
            regs: self.regs * n,
            m20k: self.m20k * n,
            dsp: self.dsp * n,
        }
    }
}

/// Register-class decomposition of the SP (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegisterBudget {
    /// Primary (LUT-paired) ALM registers.
    pub primary: usize,
    /// Secondary (balancing/delay) ALM registers.
    pub secondary: usize,
    /// Hyper-registers in the routing fabric (reset-less only).
    pub hyper: usize,
}

impl RegisterBudget {
    /// Split a register total by the calibrated fractions.
    pub fn split(total: usize) -> Self {
        let hyper = (total as f64 * calib::HYPER_REG_FRACTION).round() as usize;
        let secondary = (total as f64 * calib::SECONDARY_REG_FRACTION).round() as usize;
        RegisterBudget {
            primary: total - hyper - secondary,
            secondary,
            hyper,
        }
    }

    /// Total registers.
    pub fn total(&self) -> usize {
        self.primary + self.secondary + self.hyper
    }
}

/// The full area report (Table 1 plus derived figures).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AreaReport {
    /// Top-level totals (the GPGPU row).
    pub gpgpu: ModuleArea,
    /// One SP.
    pub sp: ModuleArea,
    /// The multiplier+shifter datapath inside one SP.
    pub mul_sft: ModuleArea,
    /// The soft-logic ALU inside one SP.
    pub logic: ModuleArea,
    /// The instruction fetch/decode block.
    pub inst: ModuleArea,
    /// The shared-memory wrapper.
    pub shared: ModuleArea,
    /// SP register-class split (§5).
    pub sp_reg_budget: RegisterBudget,
}

/// Datapath width (the processor is 32-bit fixed point).
const W: usize = 32;

/// Compute the area model for a configuration.
pub fn area_model(cfg: &ProcessorConfig) -> AreaReport {
    let mul_sft = mul_sft_area();
    let logic = logic_area();
    let sp = sp_area(cfg, mul_sft, logic);
    let inst = inst_area(cfg);
    let shared = shared_area(cfg);

    let module_sum = sp.times(SP_COUNT).plus(inst).plus(shared);
    let gpgpu = ModuleArea {
        alms: module_sum.alms + (module_sum.alms as f64 * calib::TOP_ALM_OVERHEAD).round() as usize,
        regs: module_sum.regs + (module_sum.regs as f64 * calib::TOP_REG_OVERHEAD).round() as usize,
        m20k: module_sum.m20k,
        dsp: module_sum.dsp,
    };

    AreaReport {
        gpgpu,
        sp,
        mul_sft,
        logic,
        inst,
        shared,
        sp_reg_budget: RegisterBudget::split(sp.regs),
    }
}

/// The multiplier + integrated shifter datapath (§4.1–§4.2), per SP.
///
/// ALM decomposition at W = 32:
/// * operand preparation (sign/zero-extend selects for the four 16-bit
///   halves): `W` = 32
/// * one-hot shift decode (single logic level): `W/2` = 16
/// * unary decode + reversed-ones OR mask: `W/2` = 16
/// * 66-bit segment adder above the free low 16 bits: `W − 7` = 25
/// * {generate, propagate} prefix circuit: 8
/// * high/low result select and shift output muxing: `W/2` = 16
/// * pipeline balancing & write-enable fan-in: `W` = 32
///
/// Total 145 — the Table 1 `Mul+Sft` row. Registers are the
/// depth-matched pipeline busses: `13·W + 8` = 424.
fn mul_sft_area() -> ModuleArea {
    ModuleArea {
        alms: W + W / 2 + W / 2 + (W - 7) + 8 + W / 2 + W,
        regs: 13 * W + 8,
        m20k: 0,
        dsp: fpga_fabric::dsp::DspBlock::blocks_per_int32_multiplier(),
    }
}

/// The soft-logic ALU (§4), per SP: bitwise functions with op select
/// (`W`), the two-stage pipelined adder (`W/2` + carry glue 3), the
/// cnot/popc/clz reduction trees (`W/2`), min/max/abs select (`W/2`).
/// Total 83 = Table 1 `Logic`. Depth-matched registers mirror the
/// multiplier datapath: `13·W + 8` = 424.
fn logic_area() -> ModuleArea {
    ModuleArea {
        alms: W + W / 2 + 3 + W / 2 + W / 2,
        regs: 13 * W + 8,
        m20k: 0,
        dsp: 0,
    }
}

/// One complete SP: the two datapaths plus register-file addressing,
/// writeback muxing and lane control: `103 + 4·log2(regs_per_sp)` ALMs
/// (143 at the reference 1024 regs/SP), `15·W + 9` = 489 registers, and
/// the register-file M20K bank (two read replicas in the fast 512 × 40
/// mode).
///
/// A predicate-enabled build (§2's optional parameter) multiplies the
/// SP's soft logic and registers by 1.5: "Predicates ... typically
/// increase the logic resources of the processor by 50%". The reference
/// Table 1 instance is predicate-free.
fn sp_area(cfg: &ProcessorConfig, mul_sft: ModuleArea, logic: ModuleArea) -> ModuleArea {
    let regs_per_sp = cfg.regs_per_sp().max(1);
    let addr_bits = (regs_per_sp as f64).log2().ceil() as usize;
    let overhead = ModuleArea {
        alms: 103 + 4 * addr_bits,
        regs: 15 * W + 9,
        m20k: 2 * M20kMode::D512W40.blocks_for(regs_per_sp, W),
        dsp: 0,
    };
    let base = mul_sft.plus(logic).plus(overhead);
    if cfg.predicates {
        ModuleArea {
            alms: base.alms * 3 / 2,
            regs: base.regs * 3 / 2,
            ..base
        }
    } else {
        base
    }
}

/// The instruction fetch/decode block (§3, Figs. 2–3): PC + stack +
/// branch history + pipeline-advance counters (`203 + 6·log2(max
/// threads)` ALMs = 275), a 10-deep 64-bit instruction pipeline plus PC
/// bits (651 registers), and three M20Ks — two for the 64-bit I-Mem word
/// in 512 × 40 mode, one for the call/loop stack and branch history.
fn inst_area(cfg: &ProcessorConfig) -> ModuleArea {
    // The counters and block-size circuits are sized for the hardware's
    // full 4096-thread space ("the number of threads is set on a program
    // by program basis", §3 — a runtime value, not a build parameter).
    let thread_bits = (simt_isa::MAX_THREADS as f64).log2().ceil() as usize;
    let imem_blocks = M20kMode::D512W40.blocks_for(cfg.imem_capacity.max(1), 64);
    ModuleArea {
        alms: 203 + 6 * thread_bits,
        regs: 10 * 64 + 11,
        m20k: imem_blocks + 1,
        dsp: 0,
    }
}

/// The shared-memory wrapper (§2): the 16:4 read-address mux, 16:1 write
/// muxes and bounds pipeline (`41 + 5·addr_bits + W` ALMs = 133 at 4096
/// words), port registers (`101 + 3·(W + addr_bits)` = 233), and four
/// read-port replicas of the array in 512 × 40 M20K mode (32 blocks at
/// 16 KB).
///
/// Note: the paper's Shared row lists 64 M20K, which is inconsistent
/// with its own GPGPU total (16·4 + 3 + 64 = 131 ≠ 99); the replica
/// model below reproduces the total exactly (64 + 3 + 32 = 99). See
/// EXPERIMENTS.md.
fn shared_area(cfg: &ProcessorConfig) -> ModuleArea {
    let addr_bits = (cfg.shared_words.max(2) as f64).log2().ceil() as usize;
    let replicas = simt_isa::SHARED_READ_PORTS;
    ModuleArea {
        alms: 41 + 5 * addr_bits + W,
        regs: 101 + 3 * (W + addr_bits),
        m20k: replicas * M20kMode::D512W40.blocks_for(cfg.shared_words, W),
        dsp: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference() -> AreaReport {
        area_model(&ProcessorConfig::default())
    }

    #[test]
    fn table1_sp_row() {
        let a = reference();
        assert_eq!(a.sp.alms, 371);
        assert_eq!(a.sp.regs, 1337);
        assert_eq!(a.sp.m20k, 4);
        assert_eq!(a.sp.dsp, 2);
    }

    #[test]
    fn table1_mul_sft_row() {
        let a = reference();
        assert_eq!(a.mul_sft.alms, 145);
        assert_eq!(a.mul_sft.regs, 424);
        assert_eq!(a.mul_sft.m20k, 0);
        assert_eq!(a.mul_sft.dsp, 2);
    }

    #[test]
    fn table1_logic_row() {
        let a = reference();
        assert_eq!(a.logic.alms, 83);
        assert_eq!(a.logic.regs, 424);
        assert_eq!(a.logic.m20k, 0);
        assert_eq!(a.logic.dsp, 0);
    }

    #[test]
    fn table1_inst_row() {
        let a = reference();
        assert_eq!(a.inst.alms, 275);
        assert_eq!(a.inst.regs, 651);
        assert_eq!(a.inst.m20k, 3);
    }

    #[test]
    fn table1_shared_row() {
        let a = reference();
        assert_eq!(a.shared.alms, 133);
        assert_eq!(a.shared.regs, 233);
        // Derived replica count (see module docs: the paper's own rows
        // do not sum; ours match the device total).
        assert_eq!(a.shared.m20k, 32);
    }

    #[test]
    fn table1_gpgpu_totals() {
        let a = reference();
        assert_eq!(a.gpgpu.dsp, 32, "16 SPs x 2 DSP");
        assert_eq!(a.gpgpu.m20k, 99, "abstract: 99 M20K memories");
        // ALMs/regs within 1% of 7038 / 24534 (top-level overhead is a
        // calibrated fraction).
        assert!(
            (a.gpgpu.alms as f64 - 7038.0).abs() / 7038.0 < 0.01,
            "gpgpu alms = {}",
            a.gpgpu.alms
        );
        assert!(
            (a.gpgpu.regs as f64 - 24534.0).abs() / 24534.0 < 0.01,
            "gpgpu regs = {}",
            a.gpgpu.regs
        );
    }

    #[test]
    fn sp_register_budget_matches_paper() {
        let a = reference();
        assert_eq!(a.sp_reg_budget.primary, 763);
        assert_eq!(a.sp_reg_budget.secondary, 154);
        assert_eq!(a.sp_reg_budget.hyper, 420);
        assert_eq!(a.sp_reg_budget.total(), a.sp.regs);
    }

    #[test]
    fn shifters_are_quarter_of_soft_logic() {
        // §4: "A 32-bit shifter requires approximately 50 ALMs, or 100
        // ALMs for a left and right shift pair. ... the shift pairs in
        // the 16 SPs make up almost 1/4 the total soft logic (c.7000
        // ALMs)" — check the barrel alternative's fraction against the
        // model's GPGPU total.
        let a = reference();
        let barrel_pair_per_sp = simt_datapath::BarrelShifter::alms_pair();
        assert_eq!(barrel_pair_per_sp, 100);
        let frac = (16 * barrel_pair_per_sp) as f64 / a.gpgpu.alms as f64;
        assert!(frac > 0.20 && frac < 0.26, "barrel pair fraction {frac:.3}");
    }

    #[test]
    fn area_scales_with_config() {
        let small = area_model(&ProcessorConfig::default().with_shared_words(1024));
        let big = area_model(&ProcessorConfig::default().with_shared_words(16384));
        assert!(small.shared.m20k < big.shared.m20k);
        let few_regs = area_model(
            &ProcessorConfig::default()
                .with_threads(256)
                .with_regs_per_thread(8),
        );
        assert!(few_regs.sp.m20k <= reference().sp.m20k);
        assert!(few_regs.sp.alms < reference().sp.alms);
    }

    #[test]
    fn predicates_cost_fifty_percent() {
        // §2: "they typically increase the logic resources of the
        // processor by 50%".
        let base = reference();
        let pred = area_model(&ProcessorConfig::default().with_predicates(true));
        let ratio = pred.sp.alms as f64 / base.sp.alms as f64;
        assert!((ratio - 1.5).abs() < 0.01, "SP ALM ratio {ratio:.3}");
        assert_eq!(pred.sp.dsp, base.sp.dsp, "DSP count unchanged");
        assert_eq!(pred.sp.m20k, base.sp.m20k, "register bank unchanged");
        assert!(pred.gpgpu.alms > base.gpgpu.alms * 14 / 10);
    }

    #[test]
    fn register_budget_split_sums() {
        for total in [1usize, 10, 137, 1337, 24534] {
            let b = RegisterBudget::split(total);
            assert_eq!(b.total(), total, "total {total}");
        }
    }
}
