//! The structural netlist: the timing arcs of the assembled processor.
//!
//! An *arc* is a register→register leg the STA must close: either a soft
//! path (LUT levels + a route of some nominal distance) or a hard-block
//! ceiling. The arc set changes with the design variant — the whole §4
//! shifter story is the swap of two barrel-shifter arcs for the
//! multiplier-datapath arcs.

use crate::calib;
use fpga_fabric::dsp::DspMode;
use fpga_fabric::m20k::M20kMode;
use serde::{Deserialize, Serialize};

/// Which shifter implementation the SP datapath uses (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ShifterImpl {
    /// The paper's integrated multiplicative shifter — shifts ride the
    /// DSP multiplier datapath; no long soft routes.
    Multiplicative,
    /// The classic 5-level binary barrel shifter — the rejected design
    /// whose 8/16-bit levels route long horizontally.
    Barrel,
}

/// Compilation context for the shifter experiment (§4): a single SP
/// compiles with full placement freedom; the assembled 16-SP SM crowds
/// long routes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DesignContext {
    /// One SP compiled standalone.
    SingleSp,
    /// The full 16-SP streaming multiprocessor.
    FullSm,
}

/// One timing arc.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingArc {
    /// Human-readable path name (appears in critical-path reports).
    pub name: String,
    /// Arc flavour.
    pub kind: ArcKind,
}

/// Arc flavour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArcKind {
    /// Soft-logic path: LUT levels plus a route.
    Soft {
        /// LUT levels between registers.
        levels: usize,
        /// Nominal route distance in LAB columns (before placement
        /// quality scaling).
        distance: f64,
        /// Hyper-registers Quartus can retime onto the route.
        hyper_regs: usize,
        /// Long horizontal route — crowds in a full-SM context (§4).
        long_route: bool,
    },
    /// DSP-block internal ceiling.
    HardDsp {
        /// Operating mode (integer 958 MHz / fp32 771 MHz).
        mode: DspMode,
    },
    /// M20K ceiling.
    HardM20k {
        /// Aspect ratio in use.
        mode: M20kMode,
    },
    /// ALM-in-memory-mode ceiling (auto-shift-register-replacement trap).
    HardMlab,
}

/// Design variant knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignVariant {
    /// Shifter implementation.
    pub shifter: ShifterImpl,
    /// DSP mode: integer (this work) or fp32 (eGPU baseline).
    pub dsp_mode: DspMode,
    /// Compilation context.
    pub context: DesignContext,
    /// Leave Quartus' auto shift-register replacement ON — the §5 trap
    /// that caps the clock at the 850 MHz MLAB ceiling. The paper turns
    /// it OFF; default false.
    pub auto_shift_register_replacement: bool,
}

impl Default for DesignVariant {
    fn default() -> Self {
        DesignVariant {
            shifter: ShifterImpl::Multiplicative,
            dsp_mode: DspMode::SumOfTwo18x19,
            context: DesignContext::FullSm,
            auto_shift_register_replacement: false,
        }
    }
}

impl DesignVariant {
    /// The published 950 MHz design.
    pub fn this_work() -> Self {
        Self::default()
    }

    /// The eGPU baseline: fp32 DSP mode (771 MHz ceiling), original
    /// multiplicative-shifter-free datapath is immaterial — the DSP
    /// ceiling dominates.
    pub fn egpu_baseline() -> Self {
        DesignVariant {
            dsp_mode: DspMode::Fp32,
            ..Self::default()
        }
    }

    /// The barrel-shifter design of the §4 post-mortem.
    pub fn with_barrel_shifter() -> Self {
        DesignVariant {
            shifter: ShifterImpl::Barrel,
            ..Self::default()
        }
    }

    /// Single-SP compile of this variant.
    pub fn standalone_sp(mut self) -> Self {
        self.context = DesignContext::SingleSp;
        self
    }
}

/// Build the arc list for a design variant.
pub fn timing_arcs(variant: &DesignVariant) -> Vec<TimingArc> {
    let soft = |name: &str, levels: usize, distance: f64, hyper: usize, long: bool| TimingArc {
        name: name.to_string(),
        kind: ArcKind::Soft {
            levels,
            distance,
            hyper_regs: hyper,
            long_route: long,
        },
    };
    let mut arcs = vec![
        // Hard blocks.
        TimingArc {
            name: "dsp: multiplier internal".to_string(),
            kind: ArcKind::HardDsp {
                mode: variant.dsp_mode,
            },
        },
        TimingArc {
            name: "m20k: register file / shared / i-mem".to_string(),
            kind: ArcKind::HardM20k {
                mode: M20kMode::D512W40,
            },
        },
        // The fetch/decode block (§3): the registered pipeline-advance
        // enable fans out to every SP's lane-control — "likely the
        // single most critical path in the entire processor".
        soft(
            "seq: pipeline control enable fan-out",
            1,
            calib::CONTROL_ENABLE_DISTANCE,
            0,
            false,
        ),
        soft("seq: branch zero / PC mux", 2, 0.35, 0, false),
        soft("seq: single-cycle trap decode", 1, 0.45, 0, false),
        // SP datapath soft paths (§4.1).
        soft("mul: 66-bit segment adder", 1, 0.60, 0, false),
        soft("mul: {g,p} carry insertion", 1, 0.50, 0, false),
        soft("mul: one-hot shift decode", 1, 0.50, 0, false),
        soft("alu: bitwise single level", 1, 0.40, 0, false),
        soft("alu: cnot reduction", 2, 0.40, 0, false),
        soft("alu: two-stage adder half", 1, 0.30, 0, false),
        // Register file and memory plumbing.
        soft("regfile: bank address generation", 2, 0.40, 0, false),
        soft("shared: 16:4 read-address mux", 2, 0.40, 0, false),
        // The shared-to-SP bus crosses the placement; its route is long
        // but reset-less registers retime into hyper-registers (§5).
        soft("shared: cross-placement data bus", 0, 2.50, 3, false),
    ];
    if variant.shifter == ShifterImpl::Barrel {
        // §4: "a 32-bit, 5-level shifter is comprised of 1-bit, 2-bit,
        // 4-bit, 8-bit, and 16-bit shifts. The 16-bit shifts in
        // particular introduce connections which travel a long way
        // horizontally" — and the previous 8-bit level is also long.
        arcs.push(soft("shifter: barrel 8-bit level", 1, 0.80, 0, true));
        arcs.push(soft("shifter: barrel 16-bit level", 1, 1.20, 0, true));
    }
    if variant.auto_shift_register_replacement {
        arcs.push(TimingArc {
            name: "mlab: auto shift-register replacement".to_string(),
            kind: ArcKind::HardMlab,
        });
    }
    if variant.context == DesignContext::SingleSp {
        // A standalone-SP compile contains only the SP datapath — no
        // sequencer fan-out, no shared-memory plumbing (§4 compiles the
        // shifter "as part of a complete SP" before assembling the SM).
        arcs.retain(|a| {
            [
                "mul:", "alu:", "shifter:", "dsp:", "m20k:", "regfile:", "mlab:",
            ]
            .iter()
            .any(|p| a.name.starts_with(p))
        });
    }
    arcs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_design_has_no_barrel_or_mlab_arcs() {
        let arcs = timing_arcs(&DesignVariant::this_work());
        assert!(!arcs.iter().any(|a| a.name.contains("barrel")));
        assert!(!arcs.iter().any(|a| a.name.contains("mlab")));
        assert!(arcs.iter().any(|a| a.name.contains("control enable")));
    }

    #[test]
    fn barrel_variant_adds_long_route_arcs() {
        let arcs = timing_arcs(&DesignVariant::with_barrel_shifter());
        let longs: Vec<_> = arcs
            .iter()
            .filter(|a| {
                matches!(
                    a.kind,
                    ArcKind::Soft {
                        long_route: true,
                        ..
                    }
                )
            })
            .collect();
        assert_eq!(longs.len(), 2);
    }

    #[test]
    fn shift_register_trap_adds_mlab_ceiling() {
        let mut v = DesignVariant::this_work();
        v.auto_shift_register_replacement = true;
        let arcs = timing_arcs(&v);
        assert!(arcs.iter().any(|a| matches!(a.kind, ArcKind::HardMlab)));
    }

    #[test]
    fn baseline_uses_fp_mode() {
        let arcs = timing_arcs(&DesignVariant::egpu_baseline());
        let dsp = arcs
            .iter()
            .find_map(|a| match a.kind {
                ArcKind::HardDsp { mode } => Some(mode),
                _ => None,
            })
            .unwrap();
        assert_eq!(dsp, DspMode::Fp32);
    }
}
