//! # fpga-fitter — a "virtual Quartus" for the 950 MHz SIMT processor
//!
//! The paper's evaluation is a set of *compiles*: synthesis, placement
//! and static timing of the processor on an Agilex-7 AGFD019 device,
//! under different constraints, seeds and instance counts. This crate
//! reproduces that pipeline on the `fpga-fabric` device model:
//!
//! * [`area`] — the module-level resource model that regenerates
//!   **Table 1** (ALMs / registers / M20K / DSP per module) and the §5
//!   register-class split (primary / secondary / hyper);
//! * [`netlist`] — the timing-arc set of the assembled design, including
//!   the design variants the paper discusses (multiplicative vs barrel
//!   shifter, integer vs fp32 DSP mode, the MLAB shift-register trap);
//! * [`mod@place`] — geometric placement on the device grid: spine-straddling
//!   SPs in a 32-row core, the shared-memory cluster, bounding-box
//!   constraints at a target utilization, sector-separated stamping;
//! * [`sta`] — static timing: soft-path delays from logic depth ×
//!   routing distance × congestion × seed jitter, hard-block ceilings
//!   (DSP 958/771 MHz, M20K, MLAB 850 MHz), worst-slack stamp coupling;
//! * [`mod@compile`] — the full flow plus parallel seed sweeps (**Table 2**,
//!   §5's Fmax results);
//! * [`floorplan`] — textual floorplans (Figures 6 and 7);
//! * [`calib`] — every calibrated constant, each citing the sentence of
//!   the paper it is anchored to.
//!
//! ```
//! use fpga_fitter::{compile, CompileOptions};
//! use fpga_fabric::Device;
//! use simt_core::ProcessorConfig;
//!
//! let report = compile(
//!     &ProcessorConfig::default(),
//!     &Device::agfd019(),
//!     &CompileOptions::unconstrained(),
//! );
//! assert!(report.fmax_restricted() > 950.0); // the paper's headline
//! ```

pub mod area;
pub mod calib;
pub mod compile;
pub mod floorplan;
pub mod netlist;
pub mod place;
pub mod sta;

pub use area::{area_model, AreaReport, ModuleArea, RegisterBudget};
pub use compile::{best_of, compile, seed_sweep, CompileOptions, CompileReport};
pub use floorplan::render;
pub use netlist::{timing_arcs, DesignContext, DesignVariant, ShifterImpl, TimingArc};
pub use place::{
    place, quality_for_utilization, Constraint, CorePlacement, PlacedModule, Placement, Rect,
    COMPONENT_ALIGN_RECOVERY, CORE_ROWS,
};
pub use sta::{analyze, routing_analysis, PathReport, SlackEntry, StaReport};
