//! Static timing analysis: compose arc delays into Fmax.
//!
//! Matches the paper's reporting convention: the **logic Fmax** is the
//! soft-path STA alone (the unconstrained compile "achieved 984 MHz"),
//! while the **restricted Fmax** additionally honours hard-block ceilings
//! ("with a restricted Fmax of 956 MHz, which was limited by the DSP
//! Blocks", §5).

use crate::calib;
use crate::netlist::{ArcKind, DesignContext, DesignVariant, TimingArc};
use fpga_fabric::m20k::MLAB_FMAX_MHZ;
use fpga_fabric::{mhz_to_ps, ps_to_mhz, TimingModel};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// One analysed path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathReport {
    /// Arc name.
    pub name: String,
    /// Total delay, ps.
    pub delay_ps: f64,
    /// Fmax of this path alone, MHz.
    pub fmax_mhz: f64,
    /// LUT levels (0 for hard blocks).
    pub levels: usize,
    /// Effective routed distance after quality scaling (0 for hard
    /// blocks).
    pub distance: f64,
    /// Whether this is a hard-block ceiling.
    pub hard: bool,
}

/// STA result for one compile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StaReport {
    /// Soft-logic Fmax (MHz).
    pub fmax_logic_mhz: f64,
    /// Restricted Fmax including hard-block ceilings (MHz).
    pub fmax_restricted_mhz: f64,
    /// The critical soft path.
    pub critical: PathReport,
    /// What restricts the clock ("dsp: ..." when the DSP ceiling binds).
    pub restricted_by: String,
    /// Every analysed path, slowest first.
    pub paths: Vec<PathReport>,
}

/// Per-seed lognormal jitter factor for one arc.
fn seed_jitter(seed: u64, arc_index: usize, sigma: f64) -> f64 {
    let mut rng =
        ChaCha8Rng::seed_from_u64(seed ^ (arc_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    // Box-Muller from two uniforms.
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    (sigma * z).exp()
}

/// Analyse the arc set under a placement quality factor and seed.
///
/// `stamps` models the worst-slack attention division of §5.1: the
/// router optimizes the union of all stamps' paths, so route quality
/// degrades by `1 + STAMP_COUPLING·ln(N)`.
pub fn analyze(
    arcs: &[TimingArc],
    variant: &DesignVariant,
    quality: f64,
    stamps: usize,
    seed: u64,
    timing: &TimingModel,
) -> StaReport {
    assert!(stamps >= 1);
    let stamp_factor = 1.0 + calib::STAMP_COUPLING * (stamps as f64).ln();
    let crowding = match variant.context {
        DesignContext::SingleSp => 1.0,
        DesignContext::FullSm => calib::SM_CROWDING,
    };

    let mut paths: Vec<PathReport> = Vec::with_capacity(arcs.len());
    for (idx, arc) in arcs.iter().enumerate() {
        let p = match arc.kind {
            ArcKind::Soft {
                levels,
                distance,
                hyper_regs,
                long_route,
            } => {
                let mut d = distance * quality * stamp_factor;
                if long_route {
                    d *= crowding;
                }
                d *= seed_jitter(seed, idx, calib::SEED_SIGMA);
                let delay = timing.path_ps(levels, d, hyper_regs);
                PathReport {
                    name: arc.name.clone(),
                    delay_ps: delay,
                    fmax_mhz: ps_to_mhz(delay),
                    levels,
                    distance: d,
                    hard: false,
                }
            }
            ArcKind::HardDsp { mode } => {
                // Interface margin derates the ceiling slightly
                // (958 -> ~956, "limited by the DSP Blocks").
                let f = mode.fmax_mhz() * (1.0 - calib::DSP_INTERFACE_DERATE);
                PathReport {
                    name: arc.name.clone(),
                    delay_ps: mhz_to_ps(f),
                    fmax_mhz: f,
                    levels: 0,
                    distance: 0.0,
                    hard: true,
                }
            }
            ArcKind::HardM20k { mode } => {
                let f = mode.fmax_mhz();
                PathReport {
                    name: arc.name.clone(),
                    delay_ps: mhz_to_ps(f),
                    fmax_mhz: f,
                    levels: 0,
                    distance: 0.0,
                    hard: true,
                }
            }
            ArcKind::HardMlab => PathReport {
                name: arc.name.clone(),
                delay_ps: mhz_to_ps(MLAB_FMAX_MHZ),
                fmax_mhz: MLAB_FMAX_MHZ,
                levels: 0,
                distance: 0.0,
                hard: true,
            },
        };
        paths.push(p);
    }
    paths.sort_by(|a, b| b.delay_ps.total_cmp(&a.delay_ps));

    let critical = paths
        .iter()
        .filter(|p| !p.hard)
        .max_by(|a, b| a.delay_ps.total_cmp(&b.delay_ps))
        .expect("netlist has no soft paths")
        .clone();
    let fmax_logic = critical.fmax_mhz;
    let worst_any = &paths[0];
    let fmax_restricted = worst_any.fmax_mhz;
    StaReport {
        fmax_logic_mhz: fmax_logic,
        fmax_restricted_mhz: fmax_restricted,
        restricted_by: worst_any.name.clone(),
        critical,
        paths,
    }
}

/// One arc's slack against a clock target — the raw material of §6's
/// "routing driven placement method (or at least analysis)".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlackEntry {
    /// Arc name.
    pub name: String,
    /// Slack in ps against the target period (negative = failing).
    pub slack_ps: f64,
    /// Fraction of the path delay spent in routing (0 for hard blocks).
    pub route_fraction: f64,
}

/// Routing-driven analysis of an STA report (§6 future work #3:
/// "the relationship between the many 32-bit busses required by the
/// processor and the hierarchical routing architecture ... needs to be
/// evaluated"). Returns per-arc slack against `target_mhz`, sorted worst
/// first, with each path's routing share — the paths that fail *because
/// of distance* (high `route_fraction`) are the ones placement changes
/// can fix; the ones failing on logic depth need pipeline restructuring.
pub fn routing_analysis(
    report: &StaReport,
    target_mhz: f64,
    timing: &TimingModel,
) -> Vec<SlackEntry> {
    let period = mhz_to_ps(target_mhz);
    let mut entries: Vec<SlackEntry> = report
        .paths
        .iter()
        .map(|p| {
            let logic_ps =
                timing.t_clk_q + timing.t_su + p.levels as f64 * (timing.t_lut + timing.t_local);
            let route_fraction = if p.hard {
                0.0
            } else {
                ((p.delay_ps - logic_ps) / p.delay_ps).max(0.0)
            };
            SlackEntry {
                name: p.name.clone(),
                slack_ps: period - p.delay_ps,
                route_fraction,
            }
        })
        .collect();
    entries.sort_by(|a, b| a.slack_ps.total_cmp(&b.slack_ps));
    entries
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{timing_arcs, DesignVariant};

    fn run(variant: DesignVariant, quality: f64, stamps: usize, seed: u64) -> StaReport {
        let arcs = timing_arcs(&variant);
        analyze(
            &arcs,
            &variant,
            quality,
            stamps,
            seed,
            &TimingModel::default(),
        )
    }

    #[test]
    fn jitter_is_deterministic_and_small() {
        let a = seed_jitter(1, 0, 0.015);
        let b = seed_jitter(1, 0, 0.015);
        assert_eq!(a, b);
        assert!(a > 0.9 && a < 1.1);
        assert_ne!(seed_jitter(1, 0, 0.015), seed_jitter(2, 0, 0.015));
    }

    #[test]
    fn control_enable_is_the_critical_soft_path() {
        // §3: "the pipeline control enable paths ... will likely be the
        // single most critical path in the entire processor".
        let r = run(DesignVariant::this_work(), 1.0, 1, 0);
        assert!(
            r.critical.name.contains("control enable"),
            "critical = {}",
            r.critical.name
        );
    }

    #[test]
    fn restricted_by_dsp_in_the_integer_design() {
        let r = run(DesignVariant::this_work(), 1.0, 1, 0);
        assert!(r.restricted_by.contains("dsp"), "{}", r.restricted_by);
        assert!(r.fmax_restricted_mhz < 958.0 && r.fmax_restricted_mhz > 950.0);
        assert!(r.fmax_logic_mhz > r.fmax_restricted_mhz);
    }

    #[test]
    fn fp_baseline_capped_at_771() {
        let r = run(DesignVariant::egpu_baseline(), 1.0, 1, 0);
        assert!((r.fmax_restricted_mhz - 771.0).abs() / 771.0 < 0.01);
        assert!(r.restricted_by.contains("dsp"));
    }

    #[test]
    fn barrel_shifter_breaks_the_assembled_sm() {
        // §4: closes standalone, fails below 850 MHz in the full SM.
        let standalone = run(
            DesignVariant::with_barrel_shifter().standalone_sp(),
            1.0,
            1,
            0,
        );
        assert!(
            standalone.fmax_logic_mhz > 1000.0,
            "{}",
            standalone.fmax_logic_mhz
        );
        let sm = run(DesignVariant::with_barrel_shifter(), 1.0, 1, 0);
        assert!(sm.fmax_logic_mhz < 850.0, "{}", sm.fmax_logic_mhz);
        assert!(sm.critical.name.contains("16-bit"), "{}", sm.critical.name);
    }

    #[test]
    fn mlab_trap_caps_at_850() {
        let mut v = DesignVariant::this_work();
        v.auto_shift_register_replacement = true;
        let r = run(v, 1.0, 1, 0);
        assert_eq!(r.fmax_restricted_mhz, 850.0);
        assert!(r.restricted_by.contains("mlab"));
    }

    #[test]
    fn stamping_degrades_quality() {
        let one = run(DesignVariant::this_work(), 1.144, 1, 7);
        let three = run(DesignVariant::this_work(), 1.144, 3, 7);
        assert!(three.fmax_logic_mhz < one.fmax_logic_mhz);
    }

    #[test]
    fn routing_analysis_explains_the_barrel_failure() {
        // §6: "the logic based shifters could not maintain 1 GHz in a
        // larger system setting, largely because of routing distance" —
        // the analysis must show the failing barrel arc is
        // routing-dominated, not logic-dominated.
        let r = run(DesignVariant::with_barrel_shifter(), 1.0, 1, 0);
        let entries = routing_analysis(&r, 1000.0, &TimingModel::default());
        let worst_soft = entries
            .iter()
            .find(|e| e.name.contains("16-bit"))
            .expect("barrel arc present");
        assert!(worst_soft.slack_ps < 0.0, "fails 1 GHz");
        assert!(
            worst_soft.route_fraction > 0.5,
            "routing share {:.2}",
            worst_soft.route_fraction
        );
        // The cnot reduction fails (if at all) on logic, not routing.
        let cnot = entries.iter().find(|e| e.name.contains("cnot")).unwrap();
        assert!(cnot.route_fraction < 0.5);
        // Sorted worst-first.
        for w in entries.windows(2) {
            assert!(w[0].slack_ps <= w[1].slack_ps);
        }
    }

    #[test]
    fn paths_sorted_slowest_first() {
        let r = run(DesignVariant::this_work(), 1.0, 1, 0);
        for w in r.paths.windows(2) {
            assert!(w[0].delay_ps >= w[1].delay_ps);
        }
    }
}
