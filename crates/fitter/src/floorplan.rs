//! Floorplan rendering — the textual equivalent of the paper's Figures
//! 6 (unconstrained placement) and 7 (tightly constrained placement).
//!
//! One character per device cell, bottom row printed last:
//! `0-9a-f` = SP 0..15, `s` = shared-memory cluster, `i` = instruction
//! block, `|` = DSP spine column, `:` = M20K column (unused), `.` = empty
//! logic, `#` = region border.

use crate::place::{CorePlacement, Placement};
use fpga_fabric::{ColumnKind, Device};
use std::fmt::Write;

/// Render the placement onto a window of the device grid.
pub fn render(device: &Device, placement: &Placement) -> String {
    // Window: union of core regions plus a margin.
    let margin = 2usize;
    let col0 = placement
        .cores
        .iter()
        .map(|c| c.region.col0)
        .min()
        .unwrap_or(0)
        .saturating_sub(margin);
    let col1 = (placement
        .cores
        .iter()
        .map(|c| c.region.col1)
        .max()
        .unwrap_or(1)
        + margin)
        .min(device.cols());
    let row0 = placement
        .cores
        .iter()
        .map(|c| c.region.row0)
        .min()
        .unwrap_or(0)
        .saturating_sub(margin);
    let row1 = (placement
        .cores
        .iter()
        .map(|c| c.region.row1)
        .max()
        .unwrap_or(1)
        + margin)
        .min(device.rows());

    let width = col1 - col0;
    let height = row1 - row0;
    let mut grid = vec![vec!['.'; width]; height];

    // Column backgrounds.
    for (x, col) in (col0..col1).enumerate() {
        let ch = match device.column_kind(col) {
            ColumnKind::Dsp => '|',
            ColumnKind::M20k => ':',
            ColumnKind::Lab => '.',
        };
        for row in grid.iter_mut() {
            row[x] = ch;
        }
    }

    for core in &placement.cores {
        paint_core(&mut grid, core, col0, row0, col1, row1);
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "cols {col0}..{col1}, rows {row0}..{row1} (util {:.0}%, quality {:.3})",
        placement.utilization * 100.0,
        placement.quality
    );
    // Top row first for a conventional floorplan orientation.
    for row in grid.iter().rev() {
        out.push_str(&row.iter().collect::<String>());
        out.push('\n');
    }
    out
}

fn paint_core(
    grid: &mut [Vec<char>],
    core: &CorePlacement,
    col0: usize,
    row0: usize,
    col1: usize,
    row1: usize,
) {
    let mut set = |col: usize, row: usize, ch: char, keep_bg: bool| {
        if col >= col0 && col < col1 && row >= row0 && row < row1 {
            let cell = &mut grid[row - row0][col - col0];
            if !(keep_bg && (*cell == '|' || *cell == ':')) {
                *cell = ch;
            }
        }
    };

    // Modules.
    for m in &core.modules {
        let ch = if let Some(idx) = m.name.strip_prefix("sp") {
            let i: usize = idx.parse().unwrap_or(0);
            char::from_digit(i as u32, 16).unwrap_or('?')
        } else if m.name == "shared" {
            's'
        } else {
            'i'
        };
        for row in m.rect.row0..m.rect.row1 {
            for col in m.rect.col0..m.rect.col1 {
                // SPs straddle the DSP spine: keep the spine glyph.
                set(col, row, ch, true);
            }
        }
    }
    // Region border.
    let r = core.region;
    for col in r.col0.saturating_sub(1)..=r.col1 {
        set(col, r.row0.wrapping_sub(1), '#', false);
        set(col, r.row1, '#', false);
    }
    for row in r.row0.saturating_sub(1)..=r.row1 {
        set(r.col0.wrapping_sub(1), row, '#', false);
        set(r.col1, row, '#', false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::area::area_model;
    use crate::place::{place, Constraint};
    use simt_core::ProcessorConfig;

    fn render_for(constraint: Constraint, stamps: usize) -> String {
        let device = Device::agfd019();
        let area = area_model(&ProcessorConfig::default());
        let p = place(&device, &area, constraint, stamps);
        render(&device, &p)
    }

    #[test]
    fn unconstrained_floorplan_shows_spine_and_cluster() {
        let s = render_for(Constraint::Unconstrained, 1);
        assert!(s.contains('s'), "shared cluster painted:\n{s}");
        assert!(s.contains('0') && s.contains('f'), "all SPs painted:\n{s}");
        assert!(s.contains('|'), "DSP spine visible:\n{s}");
        assert!(s.contains('i'), "inst block painted:\n{s}");
    }

    #[test]
    fn constrained_floorplan_is_narrower() {
        let loose = render_for(Constraint::Unconstrained, 1);
        let tight = render_for(Constraint::BoundingBox { utilization: 0.93 }, 1);
        let w = |s: &str| s.lines().nth(1).map(|l| l.len()).unwrap_or(0);
        assert!(
            w(&tight) < w(&loose),
            "tight {} loose {}",
            w(&tight),
            w(&loose)
        );
    }

    #[test]
    fn three_stamps_render_three_regions() {
        let s = render_for(Constraint::BoundingBox { utilization: 0.93 }, 3);
        // Each stamp paints its own sp0; count '0' clusters by rows
        // containing '0'.
        let zero_rows = s.lines().filter(|l| l.contains('0')).count();
        assert!(zero_rows >= 3, "{s}");
    }
}
