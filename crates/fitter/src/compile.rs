//! The compile pipeline: area model → placement → STA, with seed sweeps.
//!
//! Mirrors the paper's methodology: "We ran several compiles —
//! unconstrained and constrained — to validate the performance of the
//! soft processor over a wide range of possible system uses" (§5), and
//! "We ran 5-seeds of both the tightly constrained single instance and
//! the three stamp system" (§5.1).

use crate::area::{area_model, AreaReport};
use crate::netlist::{timing_arcs, DesignVariant};
use crate::place::{place, Constraint, Placement};
use crate::sta::{analyze, StaReport};
use fpga_fabric::{Device, TimingModel};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use simt_core::ProcessorConfig;

/// Options for one compile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompileOptions {
    /// Fitter seed.
    pub seed: u64,
    /// Placement constraint.
    pub constraint: Constraint,
    /// Number of identical cores stamped onto the device (§5.1).
    pub stamps: usize,
    /// Design variant (shifter, DSP mode, context, MLAB trap).
    pub variant: DesignVariant,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            seed: 0,
            constraint: Constraint::Unconstrained,
            stamps: 1,
            variant: DesignVariant::this_work(),
        }
    }
}

impl CompileOptions {
    /// Unconstrained compile of the published design.
    pub fn unconstrained() -> Self {
        Self::default()
    }

    /// Bounding-box constrained compile at a logic utilization.
    pub fn constrained(utilization: f64) -> Self {
        CompileOptions {
            constraint: Constraint::BoundingBox { utilization },
            ..Self::default()
        }
    }

    /// Multi-stamp compile (tight boxes, sector-separated).
    pub fn stamped(stamps: usize, utilization: f64) -> Self {
        CompileOptions {
            constraint: Constraint::BoundingBox { utilization },
            stamps,
            ..Self::default()
        }
    }

    /// Set the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the design variant.
    pub fn with_variant(mut self, v: DesignVariant) -> Self {
        self.variant = v;
        self
    }
}

/// One compile's full report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompileReport {
    /// Options used.
    pub options: CompileOptions,
    /// Area model (Table 1).
    pub area: AreaReport,
    /// Placement.
    pub placement: Placement,
    /// Timing.
    pub sta: StaReport,
}

impl CompileReport {
    /// Soft-logic Fmax, MHz.
    pub fn fmax_logic(&self) -> f64 {
        self.sta.fmax_logic_mhz
    }

    /// Restricted Fmax (hard blocks included), MHz.
    pub fn fmax_restricted(&self) -> f64 {
        self.sta.fmax_restricted_mhz
    }

    /// A human-readable compile summary in the style of a fitter report:
    /// constraint, resources, clocks, and the slowest paths.
    pub fn summary(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "=== compile summary (seed {}) ===", self.options.seed);
        let c = match self.options.constraint {
            crate::place::Constraint::Unconstrained => "unconstrained".to_string(),
            crate::place::Constraint::BoundingBox { utilization } => {
                format!(
                    "bounding box @ {:.0}% logic utilization",
                    utilization * 100.0
                )
            }
            crate::place::Constraint::ComponentAligned { utilization } => {
                format!("component-aligned @ {:.0}%", utilization * 100.0)
            }
        };
        let _ = writeln!(s, "constraint : {c}, {} stamp(s)", self.options.stamps);
        let a = &self.area.gpgpu;
        let _ = writeln!(
            s,
            "resources  : {} ALMs, {} registers, {} M20K, {} DSP (per core)",
            a.alms, a.regs, a.m20k, a.dsp
        );
        let b = &self.area.sp_reg_budget;
        let _ = writeln!(
            s,
            "SP regs    : {} primary + {} secondary + {} hyper",
            b.primary, b.secondary, b.hyper
        );
        let _ = writeln!(
            s,
            "fmax       : {:.0} MHz logic / {:.0} MHz restricted (by {})",
            self.fmax_logic(),
            self.fmax_restricted(),
            self.sta.restricted_by
        );
        let _ = writeln!(s, "worst paths:");
        for p in self.sta.paths.iter().take(5) {
            let _ = writeln!(
                s,
                "  {:<44} {:>7.0} ps  {:>6.0} MHz{}",
                p.name,
                p.delay_ps,
                p.fmax_mhz,
                if p.hard { "  [hard]" } else { "" }
            );
        }
        s
    }
}

/// Run one compile.
pub fn compile(cfg: &ProcessorConfig, device: &Device, opts: &CompileOptions) -> CompileReport {
    let area = area_model(cfg);
    let placement = place(device, &area, opts.constraint, opts.stamps);
    let arcs = timing_arcs(&opts.variant);
    let sta = analyze(
        &arcs,
        &opts.variant,
        placement.quality,
        opts.stamps,
        opts.seed,
        &TimingModel::default(),
    );
    CompileReport {
        options: opts.clone(),
        area,
        placement,
        sta,
    }
}

/// Run a seed sweep in parallel and return all reports, seed order.
pub fn seed_sweep(
    cfg: &ProcessorConfig,
    device: &Device,
    opts: &CompileOptions,
    seeds: &[u64],
) -> Vec<CompileReport> {
    seeds
        .par_iter()
        .map(|&seed| compile(cfg, device, &opts.clone().with_seed(seed)))
        .collect()
}

/// Best compile of a sweep by restricted Fmax ("Best Compile" in
/// Table 2).
pub fn best_of(reports: &[CompileReport]) -> &CompileReport {
    reports
        .iter()
        .max_by(|a, b| a.fmax_restricted().total_cmp(&b.fmax_restricted()))
        .expect("empty sweep")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (ProcessorConfig, Device) {
        (ProcessorConfig::default(), Device::agfd019())
    }

    #[test]
    fn unconstrained_compile_bands() {
        // §5: unconstrained 984 MHz logic, 956 MHz restricted.
        let (cfg, dev) = setup();
        let r = compile(&cfg, &dev, &CompileOptions::unconstrained());
        assert!(
            (r.fmax_logic() - 984.0).abs() / 984.0 < 0.03,
            "logic fmax {:.1}",
            r.fmax_logic()
        );
        assert!(
            (r.fmax_restricted() - 956.0).abs() / 956.0 < 0.01,
            "restricted fmax {:.1}",
            r.fmax_restricted()
        );
    }

    #[test]
    fn constrained_86_exceeds_950() {
        let (cfg, dev) = setup();
        let sweep = seed_sweep(&cfg, &dev, &CompileOptions::constrained(0.86), &[0, 1, 2]);
        let best = best_of(&sweep);
        assert!(
            best.fmax_restricted() > 950.0,
            "{:.1}",
            best.fmax_restricted()
        );
    }

    #[test]
    fn table2_stamping_trend() {
        // Best of 5 seeds: 1-stamp ~927, 3-stamp ~854 (within 2 %).
        let (cfg, dev) = setup();
        let seeds = [0u64, 1, 2, 3, 4];
        let one = seed_sweep(&cfg, &dev, &CompileOptions::stamped(1, 0.93), &seeds);
        let three = seed_sweep(&cfg, &dev, &CompileOptions::stamped(3, 0.93), &seeds);
        let f1 = best_of(&one).fmax_restricted();
        let f3 = best_of(&three).fmax_restricted();
        assert!((f1 - 927.0).abs() / 927.0 < 0.02, "1-stamp {f1:.1}");
        assert!((f3 - 854.0).abs() / 854.0 < 0.02, "3-stamp {f3:.1}");
        // ~3% below the unconstrained restricted clock, a further ~8%
        // for the stamps.
        assert!(f1 < 956.0 && f3 < f1);
        let drop = (f1 - f3) / f1;
        assert!(drop > 0.05 && drop < 0.12, "stamp drop {drop:.3}");
    }

    #[test]
    fn seed_sweep_is_deterministic() {
        let (cfg, dev) = setup();
        let a = seed_sweep(&cfg, &dev, &CompileOptions::constrained(0.93), &[3, 4]);
        let b = seed_sweep(&cfg, &dev, &CompileOptions::constrained(0.93), &[3, 4]);
        assert_eq!(a, b);
    }

    #[test]
    fn summary_renders() {
        let (cfg, dev) = setup();
        let r = compile(&cfg, &dev, &CompileOptions::constrained(0.93));
        let s = r.summary();
        assert!(s.contains("93%"));
        assert!(s.contains("7038 ALMs"));
        assert!(s.contains("763 primary"));
        assert!(s.contains("worst paths"));
        assert!(s.contains("[hard]"));
    }

    #[test]
    fn egpu_baseline_lands_at_771() {
        let (cfg, dev) = setup();
        let opts = CompileOptions::unconstrained().with_variant(DesignVariant::egpu_baseline());
        let r = compile(&cfg, &dev, &opts);
        assert!((r.fmax_restricted() - 771.0).abs() / 771.0 < 0.01);
    }
}
