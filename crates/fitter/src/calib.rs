//! Calibration constants, each traceable to a sentence of the paper.
//!
//! The *mechanisms* of the fitting model (logic depth, routing distance,
//! congestion, seed noise, worst-slack coupling, hard-block ceilings) are
//! structural; these constants pin the mechanism strengths to the paper's
//! anchor measurements. The reported megahertz then *emerge* from running
//! the compile pipeline — they are asserted within tolerance bands in
//! EXPERIMENTS.md, never copied into results.

/// Natural logic utilization of an unconstrained compile — plenty of
/// placement freedom, so routing quality is nominal (§5: the
/// unconstrained compile "showed good regularity").
pub const UNCONSTRAINED_UTILIZATION: f64 = 0.55;

/// Utilization at and below which congestion is negligible.
pub const CONGESTION_KNEE: f64 = 0.60;

/// Cubic congestion strength: route distances scale by
/// `1 + CONGESTION_CUBIC * (u - knee)^3` above the knee. Calibrated so an
/// 86 %-utilization box still exceeds 950 MHz while a 93 % box lands ~3 %
/// below the unconstrained clock (§5 / Table 2).
pub const CONGESTION_CUBIC: f64 = 4.0;

/// Std-dev of the per-seed lognormal placement-quality jitter ("compile
/// seed values" are listed among the factors soft-logic performance
/// depends on, §4).
pub const SEED_SIGMA: f64 = 0.015;

/// Worst-slack attention division for N identical stamps on one clock:
/// route quality degrades by `1 + STAMP_COUPLING * ln(N)` — "the compiler
/// will be simultaneously optimizing all stamps. The worst-case slack at
/// any point in the compile may be limited, and contained within a single
/// stamp" (§5.1). Calibrated to the 8 % drop of Table 2.
pub const STAMP_COUPLING: f64 = 0.1666;

/// Crowding multiplier applied to *long* soft routes (> 1 LAB column)
/// when the design context is a full 16-SP SM rather than a single SP:
/// "two consecutive logic levels with long routing distances can close
/// timing when compiled as part of a smaller circuit, but placement in a
/// larger system design context is difficult" (§4). Calibrated so the
/// 5-level barrel shifter closes standalone but drops the SM below
/// 850 MHz.
pub const SM_CROWDING: f64 = 2.1;

/// Placement-dependent derate on the DSP hard ceiling (register-to-DSP
/// interface margin): 958 MHz becomes the paper's 956 MHz restricted
/// Fmax.
pub const DSP_INTERFACE_DERATE: f64 = 0.002;

/// Nominal routing distance (LAB columns) of the pipeline-control enable
/// fan-out — "the pipeline control enable paths, which will likely be
/// the single most critical path in the entire processor" (§3).
/// Calibrated so the unconstrained soft-logic Fmax lands at the paper's
/// 984 MHz.
pub const CONTROL_ENABLE_DISTANCE: f64 = 1.832;

/// Fraction of SP registers that retime into hyper-registers (§5: 420 of
/// 1337 for the reference SP).
pub const HYPER_REG_FRACTION: f64 = 0.314;

/// Fraction of SP registers implemented as secondary (balancing/delay)
/// ALM registers (§5: 154 of 1337).
pub const SECONDARY_REG_FRACTION: f64 = 0.115;

/// Top-level ALM overhead relative to the module sum: bounding-box
/// unreachable ALMs plus top-level glue ("The reported logic includes
/// unreachable ALMs inside the bounding box", §5). 6344 → 7038 in the
/// reference compile.
pub const TOP_ALM_OVERHEAD: f64 = 0.1094;

/// Top-level register overhead: the decoded-control register delay chain
/// into the main core (§3) plus clock/reset distribution. 22 276 →
/// 24 534 in the reference compile.
pub const TOP_REG_OVERHEAD: f64 = 0.1014;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_reproduce_sp_register_split() {
        // §5: 763 primary + 154 secondary + 420 hyper = 1337.
        let total = 1337u32;
        let hyper = (total as f64 * HYPER_REG_FRACTION).round() as u32;
        let secondary = (total as f64 * SECONDARY_REG_FRACTION).round() as u32;
        assert_eq!(hyper, 420);
        assert_eq!(secondary, 154);
        assert_eq!(total - hyper - secondary, 763);
    }

    #[test]
    fn congestion_is_zero_below_knee() {
        let q = |u: f64| 1.0 + CONGESTION_CUBIC * (u - CONGESTION_KNEE).max(0.0).powi(3);
        assert_eq!(q(0.40), 1.0);
        assert_eq!(q(CONGESTION_KNEE), 1.0);
        assert!(q(0.86) > 1.05 && q(0.86) < 1.09);
        assert!(q(0.93) > 1.12 && q(0.93) < 1.17);
    }
}
