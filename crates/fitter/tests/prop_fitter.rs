//! Property tests on the virtual-Quartus pipeline: physical invariants
//! that must hold for *every* seed, utilization and stamp count — not
//! just the paper's anchor points.

use fpga_fabric::Device;
use fpga_fitter::{
    area_model, compile, place, quality_for_utilization, CompileOptions, Constraint, DesignVariant,
};
use proptest::prelude::*;
use simt_core::ProcessorConfig;

fn device() -> Device {
    Device::agfd019()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn restricted_never_exceeds_logic_or_ceilings(
        seed in 0u64..1000,
        u in 0.61f64..0.97,
        stamps in 1usize..=6,
    ) {
        let opts = CompileOptions::stamped(stamps, u).with_seed(seed);
        let r = compile(&ProcessorConfig::default(), &device(), &opts);
        prop_assert!(r.fmax_restricted() <= r.fmax_logic() + 1e-9);
        // Integer DSP ceiling with interface derate.
        prop_assert!(r.fmax_restricted() <= 958.0);
        prop_assert!(r.fmax_restricted() > 0.0);
    }

    #[test]
    fn fp_mode_never_exceeds_771(seed in 0u64..500) {
        let opts = CompileOptions::unconstrained()
            .with_seed(seed)
            .with_variant(DesignVariant::egpu_baseline());
        let r = compile(&ProcessorConfig::default(), &device(), &opts);
        prop_assert!(r.fmax_restricted() <= 771.0);
    }

    #[test]
    fn quality_monotone_in_utilization(a in 0.0f64..1.0, b in 0.0f64..1.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(quality_for_utilization(lo) <= quality_for_utilization(hi));
        prop_assert!(quality_for_utilization(lo) >= 1.0);
    }

    #[test]
    fn more_stamps_never_faster(seed in 0u64..200, u in 0.7f64..0.95) {
        let dev = device();
        let cfg = ProcessorConfig::default();
        let mut last = f64::INFINITY;
        for stamps in [1usize, 2, 3, 4] {
            let r = compile(&cfg, &dev, &CompileOptions::stamped(stamps, u).with_seed(seed));
            // Soft-logic fmax degrades monotonically with stamp count
            // (the worst-slack coupling); the restricted value can
            // plateau at the DSP ceiling.
            prop_assert!(r.fmax_logic() <= last + 1e-9, "stamps={stamps}");
            last = r.fmax_logic();
        }
    }

    #[test]
    fn compiles_are_deterministic(seed in 0u64..500, u in 0.65f64..0.95) {
        let dev = device();
        let cfg = ProcessorConfig::default();
        let opts = CompileOptions::constrained(u).with_seed(seed);
        let a = compile(&cfg, &dev, &opts);
        let b = compile(&cfg, &dev, &opts);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn placement_geometry_invariants(u in 0.62f64..0.97, stamps in 1usize..=6) {
        let dev = device();
        let area = area_model(&ProcessorConfig::default());
        let p = place(&dev, &area, Constraint::BoundingBox { utilization: u }, stamps);
        prop_assert_eq!(p.cores.len(), stamps);
        for core in &p.cores {
            prop_assert_eq!(core.region.height(), 32, "32-row core");
            // All modules inside the device.
            for m in &core.modules {
                prop_assert!(m.rect.col1 <= dev.cols(), "{} col {}", m.name, m.rect.col1);
                prop_assert!(m.rect.row1 <= dev.rows(), "{} row {}", m.name, m.rect.row1);
                prop_assert!(m.rect.width() > 0 && m.rect.height() > 0);
            }
            // SPs occupy disjoint row pairs.
            for i in 0..16 {
                for j in (i + 1)..16 {
                    let a = core.modules[i].rect;
                    let b = core.modules[j].rect;
                    prop_assert!(a.row1 <= b.row0 || b.row1 <= a.row0, "sp{i} vs sp{j}");
                }
            }
        }
        // Distinct stamps occupy distinct sectors.
        for i in 0..stamps {
            for j in (i + 1)..stamps {
                let a = p.cores[i].region;
                let b = p.cores[j].region;
                prop_assert!(dev.crosses_sector((a.col0, a.row0), (b.col0, b.row0)));
            }
        }
    }

    #[test]
    fn area_model_monotone(threads_kb in 1usize..=4, shared_kb in 1usize..=8) {
        let small = area_model(
            &ProcessorConfig::default()
                .with_threads(256 * threads_kb)
                .with_shared_words(512 * shared_kb),
        );
        let bigger = area_model(
            &ProcessorConfig::default()
                .with_threads(256 * threads_kb)
                .with_shared_words(512 * shared_kb * 2),
        );
        prop_assert!(bigger.shared.m20k >= small.shared.m20k);
        prop_assert!(bigger.gpgpu.alms >= small.gpgpu.alms);
    }

    #[test]
    fn reports_serialize_roundtrip(seed in 0u64..100) {
        let r = compile(
            &ProcessorConfig::default(),
            &device(),
            &CompileOptions::constrained(0.9).with_seed(seed),
        );
        let json = serde_json::to_string(&r).unwrap();
        let back: fpga_fitter::CompileReport = serde_json::from_str(&json).unwrap();
        // Discrete structure is exact; floats round-trip within an ULP
        // of the decimal encoding.
        prop_assert_eq!(&r.options, &back.options);
        prop_assert_eq!(&r.area, &back.area);
        prop_assert_eq!(&r.placement.cores, &back.placement.cores);
        prop_assert!((r.fmax_logic() - back.fmax_logic()).abs() < 1e-9);
        prop_assert!((r.fmax_restricted() - back.fmax_restricted()).abs() < 1e-9);
        prop_assert_eq!(&r.sta.critical.name, &back.sta.critical.name);
        prop_assert_eq!(r.sta.paths.len(), back.sta.paths.len());
    }

    #[test]
    fn component_alignment_always_helps(u in 0.7f64..0.97, seed in 0u64..100) {
        let dev = device();
        let cfg = ProcessorConfig::default();
        let boxed = compile(
            &cfg, &dev,
            &CompileOptions { constraint: Constraint::BoundingBox { utilization: u }, ..CompileOptions::default() }.with_seed(seed),
        );
        let aligned = compile(
            &cfg, &dev,
            &CompileOptions { constraint: Constraint::ComponentAligned { utilization: u }, ..CompileOptions::default() }.with_seed(seed),
        );
        prop_assert!(aligned.fmax_logic() >= boxed.fmax_logic() - 1e-9);
    }
}
