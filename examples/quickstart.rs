//! Quickstart: assemble a tiny program, run it on the simulated 950 MHz
//! SIMT processor, and read the results back.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use simt_core::{Processor, ProcessorConfig, RunOptions};
use simt_isa::{assemble, disassemble};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 64-thread processor with predicates enabled (the optional §2
    // configuration parameter).
    let config = ProcessorConfig::small();
    let mut cpu = Processor::new(config)?;

    // Each thread squares its thread id, then threads below 32 add 100.
    let program = assemble(
        "  stid r1              ; r1 = thread id
           mul.lo r2, r1, r1    ; r2 = tid^2 (through the DSP-vector multiplier)
           movi r3, 32
           setp.lt p0, r1, r3   ; p0 = tid < 32
           @p0 addi r2, r2, 100 ; guarded lanes only
           sts [r1+0], r2       ; shared[tid] = result
           exit",
    )?;

    println!("program:\n{}", disassemble(&program));
    cpu.load_program(&program)?;
    let stats = cpu.run(RunOptions::default())?;

    let mem = cpu.shared().as_slice();
    println!("thread  5 -> {}", mem[5]); // 5*5 + 100 = 125
    println!("thread 40 -> {}", mem[40]); // 40*40 = 1600
    assert_eq!(mem[5], 125);
    assert_eq!(mem[40], 1600);

    println!(
        "\n{} instructions in {} clocks ({:.2} CPI)",
        stats.instructions,
        stats.cycles,
        stats.cpi()
    );
    println!(
        "at the paper's 956 MHz restricted Fmax: {:.2} us",
        stats.seconds_at(956.0) * 1e6
    );
    Ok(())
}
