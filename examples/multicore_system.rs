//! The paper's §6 future-work system: three SIMT cores (the Table 2
//! 3-stamp configuration) plus an interconnect, running a partitioned
//! dot product. The system clock is derived from the stamped compile —
//! "a system performance ... of 850 MHz is a reasonable target" (§5.1).
//!
//! ```sh
//! cargo run --example multicore_system
//! ```

use fpga_fabric::Device;
use simt_core::RunOptions;
use simt_isa::assemble;
use simt_kernels::reduce::{dot_asm_scaled, dot_ref, SCRATCH, X_OFF, Y_OFF};
use simt_kernels::workload::int_vector;
use simt_system::{System, SystemConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cores = 3;
    let per_core = 1024;
    let n = cores * per_core;

    // One long dot product, split across the cores.
    let x = int_vector(n, 1);
    let y = int_vector(n, 2);

    let mut sys = System::new(SystemConfig {
        cores,
        core: simt_core::ProcessorConfig::default()
            .with_threads(per_core)
            .with_shared_words(4096),
        link_width_words: 1,
        link_latency: 12,
    })?;

    // Phase 1: each core reduces its slice locally.
    for c in 0..cores {
        let xs: Vec<u32> = x[c * per_core..(c + 1) * per_core]
            .iter()
            .map(|&v| v as u32)
            .collect();
        let ys: Vec<u32> = y[c * per_core..(c + 1) * per_core]
            .iter()
            .map(|&v| v as u32)
            .collect();
        sys.core_mut(c).shared_mut().load_words(X_OFF, &xs)?;
        sys.core_mut(c).shared_mut().load_words(Y_OFF, &ys)?;
    }
    let program = assemble(&dot_asm_scaled(per_core))?;
    sys.load_all(&program)?;
    sys.run_phase(RunOptions::default())?;

    // Phase 2: gather partials to core 0 over the interconnect.
    for c in 1..cores {
        sys.transfer(c, SCRATCH, 0, SCRATCH + c, 1)?;
    }

    // Phase 3: core 0 folds the partials (3 words -> tiny final program).
    let finale = assemble(&format!(
        "  movi r1, 0
           lds.t7 r2, [r1+{SCRATCH}]
           lds.t7 r3, [r1+{s1}]
           add.t7 r2, r2, r3
           lds.t7 r3, [r1+{s2}]
           add.t7 r2, r2, r3
           sts.t7 [r1+{SCRATCH}], r2
           exit",
        s1 = SCRATCH + 1,
        s2 = SCRATCH + 2,
    ))?;
    sys.core_mut(0).load_program(&finale)?;
    let stats = sys.core_mut(0).run(RunOptions::default())?;
    let total_cycles = sys.stats().cycles + stats.cycles;

    let result = sys.core(0).shared().as_slice()[SCRATCH] as i32;
    let want = dot_ref(&x, &y);
    assert_eq!(result, want);
    println!("3-core dot product of {n} elements = {result} (host reference {want})");

    let fmax = sys.derive_system_fmax(&Device::agfd019());
    println!(
        "\nsystem clocks: {total_cycles} (compute {} + interconnect {})",
        sys.stats().compute_cycles + stats.cycles,
        sys.stats().transfer_cycles
    );
    println!("stamped system Fmax (Table 2, 3 cores): {fmax:.0} MHz");
    println!(
        "wall clock: {:.2} us",
        total_cycles as f64 / (fmax * 1e6) * 1e6
    );
    Ok(())
}
