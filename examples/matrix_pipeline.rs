//! A small fixed-point DSP pipeline: matrix multiply, then arithmetic
//! rescaling, then a dot-product reduction — exercising the multiplier
//! datapath, the multiplicative shifter's arithmetic right shift, the
//! zero-overhead loops, and dynamic thread scaling in one flow.
//!
//! ```sh
//! cargo run --example matrix_pipeline
//! ```

use simt_kernels::matmul::{matmul, matmul_ref};
use simt_kernels::qformat::from_q15;
use simt_kernels::reduce::{dot_ref, dot_scaled};
use simt_kernels::vector::{scale, scale_ref};
use simt_kernels::workload::q15_matrix;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (m, k, n) = (16usize, 16usize, 16usize);
    let a = q15_matrix(m, k, 7);
    let b = q15_matrix(k, n, 8);

    // Stage 1: C = A x B in Q15 (one thread per output element).
    let (c, r1) = matmul(&a, &b, m, k, n)?;
    assert_eq!(c, matmul_ref(&a, &b, m, k, n));
    println!(
        "matmul {m}x{k}x{n}: {} clocks, c[0][0] = {:.4}",
        r1.stats.cycles,
        from_q15(c[0])
    );

    // Stage 2: scale C down by 2^2 (arithmetic shift keeps the sign —
    // the §4.2 shifter requirement).
    let (scaled, r2) = scale(2, &c)?;
    assert_eq!(scaled, scale_ref(2, &c));
    println!("scale >>2: {} clocks", r2.stats.cycles);

    // Stage 3: energy of the scaled matrix = dot(scaled, scaled).
    let (energy, r3) = dot_scaled(&scaled, &scaled)?;
    assert_eq!(energy, dot_ref(&scaled, &scaled));
    println!(
        "dot reduction: {} clocks, energy = {energy}",
        r3.stats.cycles
    );

    let total = r1.stats.cycles + r2.stats.cycles + r3.stats.cycles;
    println!(
        "\npipeline total {total} clocks = {:.2} us at 956 MHz",
        total as f64 / 956e6 * 1e6
    );
    Ok(())
}
