//! Execution graphs: capture a 3-stage kernel pipeline, fuse it at the
//! IR level, replay with dynamic placement — and beat the eager stream.
//!
//! The pipeline is `saxpy → scale → sum` (`z0 = a*x + y`,
//! `z1 = z0 >> s`, `out = Σ z1`). Run eagerly, each stage is its own
//! launch and every handoff round-trips through shared memory: a
//! full-width store, then a load, per edge. Captured into a graph and
//! fused, the chain becomes ONE launch whose stages hand values through
//! registers; replayed, its nodes are placed on the least-loaded
//! device of the pool. Two independent pipelines in one graph also
//! demonstrate the placement spreading work over both devices.
//!
//! ```sh
//! cargo run --release --example graph_pipeline
//! ```

use simt_kernels::pipeline::Pipeline;
use simt_kernels::workload::int_vector;
use simt_runtime::{fuse, GraphBuilder, NodeId, Runtime, RuntimeConfig};

/// Append a pipeline to the builder as copy-ins → launch chain →
/// copy-out; returns the copy-out node.
fn record(b: &mut GraphBuilder, p: &Pipeline) -> NodeId {
    let copies: Vec<NodeId> = p
        .inputs
        .iter()
        .map(|(dst, words)| b.copy_in(*dst, words.clone(), &[]))
        .collect();
    let mut prev = copies;
    for stage in &p.stages {
        prev = vec![b.launch(stage.clone(), &prev)];
    }
    b.copy_out(p.out_off, p.out_len, &prev)
}

fn main() {
    let n = 256;
    let x = int_vector(n, 7);
    let y = int_vector(n, 11);
    let pipe_a = Pipeline::saxpy_scale_sum(3, 2, &x, &y, 0);
    let pipe_b = Pipeline::saxpy_scale_sum(-5, 1, &y, &x, 4096);

    println!("== execution graphs: fused pipeline replay vs eager streams ==\n");

    // ---- eager baseline: the same two pipelines on two streams -------
    let eager = Runtime::new(RuntimeConfig::default());
    let mut outs = Vec::new();
    for p in [&pipe_a, &pipe_b] {
        let s = eager.stream();
        for (dst, words) in &p.inputs {
            s.copy_in(*dst, words);
        }
        for stage in &p.stages {
            s.launch(stage.clone());
        }
        outs.push((p, s.copy_out(p.out_off, p.out_len)));
    }
    eager.synchronize().expect("eager pipelines run clean");
    for (p, out) in outs {
        assert_eq!(out.wait().unwrap(), p.expected, "{}: eager", p.name);
    }
    let eager_stats = eager.stats();
    println!(
        "eager streams:   {:>7} clk makespan, {} launches, {} store/load handoffs paid",
        eager_stats.makespan_cycles,
        eager_stats.launches(),
        2 * (pipe_a.len() - 1),
    );

    // ---- capture one pipeline through the stream API ------------------
    let rt = Runtime::new(RuntimeConfig::default());
    let s = rt.stream();
    s.begin_capture().expect("begin capture");
    for (dst, words) in &pipe_a.inputs {
        s.copy_in(*dst, words);
    }
    for stage in &pipe_a.stages {
        s.launch(stage.clone());
    }
    s.copy_out(pipe_a.out_off, pipe_a.out_len);
    let captured = s.end_capture().expect("end capture");
    assert_eq!(captured.launches(), pipe_a.len());

    // ---- fuse: 3 launches -> 1, handoffs -> registers -----------------
    let mut b = GraphBuilder::new();
    record(&mut b, &pipe_a);
    record(&mut b, &pipe_b);
    let graph = b.finish().expect("valid DAG");
    let (fused, report) = fuse(&graph);
    println!(
        "fusion:          {} chains, {} launches fused away, {} handoff stores elided, \
         {} handoff loads forwarded, IR {} -> {} insts",
        report.groups.len(),
        report.launches_fused,
        report.stores_elided,
        report.loads_eliminated,
        report.insts_before,
        report.insts_after,
    );
    assert_eq!(report.launches_fused, 2 * (pipe_a.len() - 1));
    // Every fused edge eliminated (at least) its intermediate
    // shared-memory store/load pair.
    assert!(report.stores_elided >= 2 * (pipe_a.len() - 1));
    assert!(report.loads_eliminated >= 2 * (pipe_a.len() - 1));

    // ---- instantiate once, replay with dynamic placement --------------
    let exec = rt.instantiate(fused).expect("instantiate");
    let replay = rt.replay(&exec).expect("replay");
    assert_eq!(replay.outputs.len(), 2);
    assert_eq!(replay.outputs[0].1, pipe_a.expected, "fused replay A");
    assert_eq!(replay.outputs[1].1, pipe_b.expected, "fused replay B");

    let spread = replay.device_spread(rt.config().devices);
    println!(
        "fused replay:    {:>7} clk span, {} nodes placed as {:?} across the pool",
        replay.span_cycles,
        replay.placements.len(),
        spread,
    );
    assert!(
        spread.iter().all(|&c| c > 0),
        "least-loaded placement keeps every device busy: {spread:?}"
    );

    // Replays are pure compile-cache hits.
    let again = rt.replay(&exec).expect("second replay");
    assert_eq!(again.outputs[0].1, pipe_a.expected);
    assert_eq!(
        again.compile_hits,
        again
            .placements
            .iter()
            .filter(|p| matches!(p.kind, simt_runtime::CommandKind::Launch))
            .count() as u64,
        "replays never recompile"
    );

    let speedup = eager_stats.makespan_cycles as f64 / replay.span_cycles as f64;
    println!(
        "\nfused graph replay beats the eager stream schedule by {speedup:.2}x \
         (bit-exact outputs)"
    );
    assert!(
        replay.span_cycles < eager_stats.makespan_cycles,
        "fused replay ({} clk) must beat the eager schedule ({} clk)",
        replay.span_cycles,
        eager_stats.makespan_cycles
    );
    assert!(speedup >= 1.2, "expected >= 1.2x, measured {speedup:.2}x");
}
