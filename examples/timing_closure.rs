//! The paper's §5 evaluation in one run: unconstrained and constrained
//! compiles, the seed-swept stamping experiment, and the floorplans of
//! Figures 6 and 7 — on the virtual Quartus pipeline.
//!
//! ```sh
//! cargo run --example timing_closure
//! ```

use fpga_fabric::Device;
use fpga_fitter::{best_of, compile, floorplan, seed_sweep, CompileOptions, DesignVariant};
use simt_core::ProcessorConfig;

fn main() {
    let cfg = ProcessorConfig::default(); // Table 1 instance
    let dev = Device::agfd019();

    // ---- unconstrained (Fig. 6, §5 text) ----
    let un = compile(&cfg, &dev, &CompileOptions::unconstrained());
    println!("== unconstrained compile ==");
    println!(
        "  logic Fmax {:.0} MHz, restricted {:.0} MHz (limited by {})",
        un.fmax_logic(),
        un.fmax_restricted(),
        un.sta.restricted_by
    );
    println!("  critical soft path: {}", un.sta.critical.name);
    println!("\nFigure 6 (unconstrained placement):");
    println!("{}", floorplan::render(&dev, &un.placement));

    // ---- constrained boxes ----
    for u in [0.86, 0.93] {
        let r = compile(&cfg, &dev, &CompileOptions::constrained(u));
        println!(
            "== {:.0}% bounding box: restricted Fmax {:.0} MHz ==",
            u * 100.0,
            r.fmax_restricted()
        );
        if (u - 0.93).abs() < 1e-9 {
            println!("\nFigure 7 (tightly constrained placement):");
            println!("{}", floorplan::render(&dev, &r.placement));
        }
    }

    // ---- Table 2: stamping, 5 seeds ----
    let seeds = [0u64, 1, 2, 3, 4];
    println!("== Table 2: stamping (best of 5 seeds) ==");
    for stamps in [1usize, 3] {
        let sweep = seed_sweep(&cfg, &dev, &CompileOptions::stamped(stamps, 0.93), &seeds);
        let best = best_of(&sweep);
        println!(
            "  {stamps}-stamp: best {:.0} MHz (seeds: {})",
            best.fmax_restricted(),
            sweep
                .iter()
                .map(|r| format!("{:.0}", r.fmax_restricted()))
                .collect::<Vec<_>>()
                .join(", ")
        );
    }

    // ---- the eGPU fp baseline ----
    let base = compile(
        &cfg,
        &dev,
        &CompileOptions::unconstrained().with_variant(DesignVariant::egpu_baseline()),
    );
    println!(
        "\neGPU fp32 baseline: restricted Fmax {:.0} MHz (the 771 MHz ceiling of §2.1)",
        base.fmax_restricted()
    );
}
