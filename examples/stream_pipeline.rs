//! Overlapping copies with compute across four streams.
//!
//! A job list of kernels (with their host→device and device→host copies
//! modeled at interconnect cost) runs twice on the same 2-device pool:
//! once on a single stream — everything serialized — and once spread
//! over four streams, where the scheduler overlaps one stream's copies
//! with another's compute and keeps both devices busy.
//!
//! ```sh
//! cargo run --release --example stream_pipeline
//! ```

use simt_kernels::workload::{int_vector, lowpass_taps, q15_signal};
use simt_kernels::LaunchSpec;
use simt_runtime::{Runtime, RuntimeConfig, RuntimeStats};
use std::time::Instant;

/// A kernel plus its detached input blocks (moved by explicit copies).
type Job = (LaunchSpec, Vec<(usize, Vec<u32>)>);

/// The job list: saxpy and FIR rounds, inputs moved by explicit copies.
fn jobs() -> Vec<Job> {
    let mut out = Vec::new();
    let taps = lowpass_taps(16);
    for i in 0..12u64 {
        let x = int_vector(1024, i);
        let y = int_vector(1024, 100 + i);
        out.push(LaunchSpec::saxpy(5, &x, &y).detach_inputs());
        let sig = q15_signal(512 + 15, 200 + i);
        out.push(LaunchSpec::fir(&sig, &taps, 512).detach_inputs());
    }
    out
}

/// Run the list over `streams` streams; verify outputs; return stats and
/// host wall time.
fn run(streams: usize) -> (RuntimeStats, f64) {
    let rt = Runtime::new(RuntimeConfig::default());
    let handles: Vec<_> = (0..streams).map(|_| rt.stream()).collect();
    let t0 = Instant::now();
    let mut outs = Vec::new();
    for (i, (spec, inputs)) in jobs().into_iter().enumerate() {
        // Deal jobs in saxpy+fir pairs so every stream (and so every
        // device) carries the same mix of cheap and expensive kernels.
        let s = &handles[(i / 2) % streams];
        for (off, words) in &inputs {
            s.copy_in(*off, words);
        }
        let expected = spec.expected.clone();
        let name = spec.name.clone();
        let (off, len) = (spec.out_off, spec.out_len);
        s.launch(spec);
        outs.push((name, expected, s.copy_out(off, len)));
    }
    rt.synchronize().expect("pipeline runs clean");
    let host = t0.elapsed().as_secs_f64();
    for (name, expected, out) in outs {
        assert_eq!(out.wait().unwrap(), expected, "{name}");
    }
    (rt.stats(), host)
}

fn main() {
    println!("== stream pipeline: 4-stream overlap vs serial on a 2-device pool ==\n");
    let (serial, serial_host) = run(1);
    let (overlapped, overlapped_host) = run(4);

    let report = |label: &str, s: &RuntimeStats, host: f64| {
        println!(
            "{label:<22} {:>9} clk = {:>8.2} us modeled   occupancy {:>4.0}%   host {:>6.1} ms",
            s.makespan_cycles,
            s.modeled_seconds() * 1e6,
            s.modeled_occupancy() * 100.0,
            host * 1e3,
        );
        for (d, ds) in s.devices.iter().enumerate() {
            println!(
                "  device {d}: {:>3} launches, {:>3} copies, {:>7} busy clk, {} batch(es), {} cached build reuse(s)",
                ds.launches, ds.copies, ds.busy_cycles, ds.batches, ds.cache_hits
            );
        }
    };
    report("serial (1 stream):", &serial, serial_host);
    report("overlapped (4 streams):", &overlapped, overlapped_host);

    let speedup = serial.modeled_seconds() / overlapped.modeled_seconds();
    println!(
        "\nmodeled wall-clock speedup: {speedup:.2}x \
         (copies hidden behind compute + both devices busy)"
    );
    assert!(
        speedup >= 1.5,
        "expected >= 1.5x overlap speedup, measured {speedup:.2}x"
    );
    println!(
        "launch throughput: {:.0} launches/s (host-side)",
        overlapped.launches_per_second()
    );
}
