//! Dynamic thread scaling vs predicate masking on a 1024-element dot
//! product — the §2 feature ablation.
//!
//! The 4R-1W shared memory makes stores expensive (one thread per clock
//! through the 16:1 write mux). Dynamic thread scaling lets each tree
//! step run only the surviving threads; predicate masking runs the full
//! thread space every step and pays full store time.
//!
//! ```sh
//! cargo run --example reduction_scaling
//! ```

use simt_kernels::reduce::{dot_predicated, dot_ref, dot_scaled};
use simt_kernels::workload::int_vector;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 1024;
    let x = int_vector(n, 11);
    let y = int_vector(n, 22);

    let (a, scaled) = dot_scaled(&x, &y)?;
    let (b, masked) = dot_predicated(&x, &y)?;
    assert_eq!(a, b);
    assert_eq!(a, dot_ref(&x, &y));

    println!("dot product of {n} elements = {a}");
    println!("\n                       scaled (.tk)   predicated (@p0)");
    println!(
        "total clocks        {:>12} {:>16}",
        scaled.stats.cycles, masked.stats.cycles
    );
    println!(
        "store clocks        {:>12} {:>16}",
        scaled.stats.store_cycles, masked.stats.store_cycles
    );
    println!(
        "load clocks         {:>12} {:>16}",
        scaled.stats.load_cycles, masked.stats.load_cycles
    );
    let speedup = masked.stats.cycles as f64 / scaled.stats.cycles as f64;
    println!("\ndynamic thread scaling speedup: {speedup:.2}x");
    println!("(and the predicated build needs the +50% predicate logic, §2)");
    Ok(())
}
