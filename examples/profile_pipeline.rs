//! Tracing & profiling: replay a fused two-pipeline graph across both
//! devices with the profiler on, export the timeline as Chrome
//! trace-event JSON, and attribute the IIR biquad bank's cycles to its
//! loop-body PCs.
//!
//! Everything here is opt-in via [`RuntimeConfig::with_profile`]: the
//! same runtime built without it records nothing and pays one branch
//! per instrumented site. The exported trace uses modeled device
//! cycles as timestamps (1 cycle = 1 µs), so it is deterministic —
//! load `target/profile_pipeline_trace.json` in Perfetto or
//! `chrome://tracing` to see per-device compute/dma/sync tracks, the
//! per-stream view, and the compiler's cache/pass activity.
//!
//! ```sh
//! cargo run --release --example profile_pipeline
//! ```

use simt_compiler::{compile, OptLevel};
use simt_kernels::pipeline::Pipeline;
use simt_kernels::workload::{int_vector, q15_signal};
use simt_kernels::{iir, KernelSource, LaunchSpec};
use simt_profile::chrome::chrome_trace;
use simt_profile::summary::summarize;
use simt_profile::ProfileConfig;
use simt_runtime::{fuse, GraphBuilder, NodeId, Runtime, RuntimeConfig};

/// Append a pipeline to the builder as copy-ins → launch chain →
/// copy-out; returns the copy-out node.
fn record(b: &mut GraphBuilder, p: &Pipeline) -> NodeId {
    let copies: Vec<NodeId> = p
        .inputs
        .iter()
        .map(|(dst, words)| b.copy_in(*dst, words.clone(), &[]))
        .collect();
    let mut prev = copies;
    for stage in &p.stages {
        prev = vec![b.launch(stage.clone(), &prev)];
    }
    b.copy_out(p.out_off, p.out_len, &prev)
}

fn main() {
    println!("== simt-profile: trace a fused graph replay, profile a hot loop ==\n");

    // One pool, profiler on (event ring + per-PC histograms).
    let rt = Runtime::new(RuntimeConfig::default().with_profile(ProfileConfig::full()));

    // ---- stream phase: the kernel we want to profile per-PC ----------
    let (n, m) = (16, 8);
    let iir_spec = LaunchSpec::iir_ir(&q15_signal(n * m, 7), n, m, iir::Biquad::lowpass());
    let s = rt.stream();
    let run = s.launch(iir_spec.clone());
    let stats = run.wait().expect("iir_ir runs clean");
    println!(
        "{}: {} clk, {} instructions retired",
        iir_spec.name, stats.cycles, stats.instructions
    );

    // ---- graph phase: two fused pipelines spread over both devices ---
    let x = int_vector(256, 7);
    let y = int_vector(256, 11);
    let pipe_a = Pipeline::saxpy_scale_sum(3, 2, &x, &y, 0);
    let pipe_b = Pipeline::saxpy_scale_sum(-5, 1, &y, &x, 4096);
    let mut b = GraphBuilder::new();
    record(&mut b, &pipe_a);
    record(&mut b, &pipe_b);
    let (fused, report) = fuse(&b.finish().expect("acyclic graph"));
    let exec = rt.instantiate(fused).expect("instantiate");
    let replay = rt.replay(&exec).expect("replay");
    // Fusion renumbers nodes; find each pipeline's output by value.
    for p in [&pipe_a, &pipe_b] {
        assert!(
            replay.outputs.iter().any(|(_, words)| *words == p.expected),
            "{}: replay output missing",
            p.name
        );
    }
    let spread = replay.device_spread(rt.config().devices);
    println!(
        "graph replay: {} nodes ({} launches fused away), span {} clk, spread {:?}",
        replay.placements.len(),
        report.launches_fused,
        replay.span_cycles,
        spread
    );

    // ---- export: Chrome trace-event JSON + flat summary --------------
    rt.synchronize().expect("drain");
    let tracer = rt.tracer().expect("profiled runtime has a tracer");
    let events = tracer.events();
    let sum = summarize(&events, tracer.dropped());
    println!(
        "\ntrace: {} events ({} dropped) — {} retires / {} copies / {} graph nodes / {} pass runs",
        sum.events, sum.dropped, sum.kernel_retires, sum.copies, sum.graph_nodes, sum.pass_runs
    );
    let path = std::path::Path::new("target").join("profile_pipeline_trace.json");
    std::fs::create_dir_all("target").expect("target dir");
    std::fs::write(&path, chrome_trace(&events, tracer.dropped())).expect("write trace");
    println!(
        "wrote {} — load it in Perfetto / chrome://tracing",
        path.display()
    );

    // ---- per-PC hotspots: name the biquad loop body ------------------
    let profiles = rt.pc_profiles();
    let prof = &profiles[&iir_spec.name];
    let kernel = match &iir_spec.source {
        KernelSource::Ir(k) => k,
        _ => unreachable!("iir_ir is an IR kernel"),
    };
    let compiled = compile(kernel, &iir_spec.config, OptLevel::Full).expect("compile");
    let prog = compiled.program.instructions();
    println!(
        "\n{}: {:.1}% of {} clk attributed to PCs (rest is pipeline fill)",
        iir_spec.name,
        100.0 * prof.attribution_fraction(),
        prof.total_cycles()
    );
    println!("top 5 hottest PCs:");
    for (pc, c) in prof.hottest(5) {
        let ir = match compiled.source_map[pc] {
            Some(v) => format!("%{v}"),
            None => "-".to_string(),
        };
        println!(
            "  pc {pc:>3}  {:>8} clk  {:>6} issues  {:>5} IR  {}",
            c.cycles,
            c.issues,
            ir,
            simt_isa::disasm::format_instruction(&prog[pc])
        );
    }
}
