//! Q15 FIR low-pass filter — the fixed-point signal-processing workload
//! class the integer-only design targets (§2.1).
//!
//! ```sh
//! cargo run --example fir_filter
//! ```

use simt_kernels::fir::{fir, fir_ref};
use simt_kernels::qformat::from_q15;
use simt_kernels::workload::{lowpass_taps, q15_signal};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 512; // output samples = threads
    let taps = lowpass_taps(16);
    let x = q15_signal(n + taps.len() - 1, 2024);

    let (y, run) = fir(&x, &taps, n)?;
    let want = fir_ref(&x, &taps, n);
    assert_eq!(y, want, "simulator must be bit-exact vs host reference");

    println!("16-tap Q15 FIR over {n} samples, {} threads", n);
    println!("first outputs: {:?}", &y[..6]);
    println!(
        "as floats:     {:?}",
        y[..6]
            .iter()
            .map(|&v| (from_q15(v) * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );

    let s = &run.stats;
    println!(
        "\nclocks: {} (ops {}, loads {}, stores {})",
        s.cycles, s.op_cycles, s.load_cycles, s.store_cycles
    );
    for fmax in [771.0, 956.0] {
        println!(
            "  at {fmax:.0} MHz: {:.2} us, {:.2} Gops/s",
            s.seconds_at(fmax) * 1e6,
            s.ops_per_second_at(fmax) / 1e9,
        );
    }
    println!("\n(771 MHz = the eGPU fp baseline ceiling; 956 MHz = this work's restricted Fmax)");
    Ok(())
}
