//! Sobel edge detection on the SIMT processor, with an ASCII rendering
//! of input and output — an embedded-vision workload built from the
//! ISA's address-generation (`shadd`) and `abs`/`satadd` paths.
//!
//! ```sh
//! cargo run --example sobel_edges
//! ```

use simt_kernels::sobel::{sobel, sobel_ref, test_card};

fn shade(v: i32, max: i32) -> char {
    const RAMP: &[u8] = b" .:-=+*#%@";
    if max == 0 {
        return ' ';
    }
    let idx = ((v as i64 * (RAMP.len() as i64 - 1)) / max as i64) as usize;
    RAMP[idx.min(RAMP.len() - 1)] as char
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (iw, ih) = (32usize, 32usize);
    let img = test_card(iw, ih);

    let (edges, run) = sobel(&img, iw, ih)?;
    assert_eq!(edges, sobel_ref(&img, iw, ih), "bit-exact vs host");

    println!("input ({}x{} with halo):", iw + 2, ih + 2);
    let in_max = *img.iter().max().unwrap();
    for y in 0..ih + 2 {
        let row: String = (0..iw + 2)
            .map(|x| shade(img[y * (iw + 2) + x], in_max))
            .collect();
        println!("  {row}");
    }

    println!("\nedge magnitude ({}x{} interior):", iw, ih);
    let out_max = *edges.iter().max().unwrap();
    for y in 0..ih {
        let row: String = (0..iw).map(|x| shade(edges[y * iw + x], out_max)).collect();
        println!("  {row}");
    }

    println!(
        "\n{} threads, {} clocks = {:.2} us at 956 MHz",
        iw * ih,
        run.stats.cycles,
        run.stats.seconds_at(956.0) * 1e6
    );
    Ok(())
}
