//! The simt-compiler pipeline end to end: SSA IR in, optimized
//! machine code out, content-addressed caching on repeat launches.
//!
//! Builds the FIR kernel family from its IR frontend, shows what each
//! optimization pass did, compares the naive and optimized lowerings
//! against the hand-scheduled assembly, then pushes repeated IR
//! launches through a stream runtime and reads the compile-cache
//! counters back.
//!
//! ```sh
//! cargo run --release --example compiler_pipeline
//! ```

use simt_compiler::{compile, IrBuilder, OptLevel};
use simt_core::{ProcessorConfig, RunOptions};
use simt_kernels::workload::{int_vector, lowpass_taps, q15_signal};
use simt_kernels::{fir, matmul, run_program, LaunchSpec};
use simt_runtime::{Runtime, RuntimeConfig};

fn main() {
    println!("== simt-compiler: IR -> passes -> regalloc -> ISA ==\n");

    // -- 1. A kernel family from its IR frontend --------------------------
    let taps = 16;
    let cfg = ProcessorConfig::default()
        .with_threads(128)
        .with_shared_words(8192);
    let kernel = fir::fir_ir(taps);
    let naive = compile(&kernel, &cfg, OptLevel::None).expect("naive lowering");
    let full = compile(&kernel, &cfg, OptLevel::Full).expect("optimized lowering");
    let hand = simt_isa::assemble(&fir::fir_asm(taps)).expect("handwritten");

    println!("fir{taps}: IR as the frontend wrote it (address arithmetic explicit):");
    println!(
        "  naive lowering:     {:>3} instructions",
        naive.program.len()
    );
    println!(
        "  optimized lowering: {:>3} instructions  ({:.0}% fewer IR ops)",
        full.program.len(),
        full.report.reduction() * 100.0
    );
    println!("  hand-written asm:   {:>3} instructions", hand.len());
    println!("\npass pipeline (IR instruction counts; * = rewrote in place):");
    for p in &full.report.passes {
        if p.changed {
            println!(
                "  {:<16} {:>3} -> {:<3}{}",
                p.pass,
                p.insts_before,
                p.insts_after,
                if p.insts_before == p.insts_after {
                    " *"
                } else {
                    ""
                }
            );
        }
    }
    assert!(full.program.len() < naive.program.len());
    assert!(full.program.len() <= hand.len());

    // -- 2. Strength reduction in one line --------------------------------
    let mut b = IrBuilder::new("times8");
    let tid = b.tid();
    let x = b.load(tid, 0);
    let c8 = b.iconst(8);
    let y = b.mul(x, c8);
    b.store(tid, 64, y);
    let times8 = compile(&b.finish(), &ProcessorConfig::small(), OptLevel::Full).unwrap();
    let shifted = times8
        .program
        .instructions()
        .iter()
        .any(|i| i.opcode == simt_isa::Opcode::Shli);
    println!("\nmul-by-8 strength-reduced to the barrel-replacement shifter: {shifted}");
    assert!(shifted);

    // -- 3. Loop-carried SSA: matmul off hand-written assembly ------------
    // The inner product is a hardware loop with three block parameters
    // (A index, B index, accumulator); the allocator coalesces each
    // with its initial and carried values, so the loop body carries no
    // copies and the preamble drops the hand-written kernel's movs.
    let (mm, kk, nn) = (8usize, 16usize, 8usize);
    let mm_cfg = ProcessorConfig::default()
        .with_threads(mm * nn)
        .with_shared_words(8192);
    let mm_ir = compile(&matmul::matmul_ir(mm, kk, nn), &mm_cfg, OptLevel::Full)
        .expect("matmul_ir compiles");
    let mm_hand = simt_isa::assemble(&matmul::matmul_asm(mm, kk, nn)).expect("handwritten");
    let ir_cycles = run_program(
        mm_cfg.clone(),
        &mm_ir.program,
        &[],
        matmul::C_OFF,
        mm * nn,
        RunOptions::default(),
    )
    .expect("matmul_ir runs")
    .stats
    .cycles;
    let hand_cycles = run_program(
        mm_cfg,
        &mm_hand,
        &[],
        matmul::C_OFF,
        mm * nn,
        RunOptions::default(),
    )
    .expect("handwritten matmul runs")
    .stats
    .cycles;
    println!(
        "\nmatmul{mm}x{kk}x{nn} via loop-carried SSA: {} instrs / {} clk  \
         (hand-written: {} instrs / {} clk)",
        mm_ir.program.len(),
        ir_cycles,
        mm_hand.len(),
        hand_cycles
    );
    assert!(mm_ir.program.len() < mm_hand.len());
    assert!(ir_cycles < hand_cycles);

    // -- 4. Repeated IR launches through the runtime ----------------------
    let rt = Runtime::new(RuntimeConfig::with_devices(1));
    let s = rt.stream();
    let sig = q15_signal(128 + taps - 1, 42);
    let coeffs = lowpass_taps(taps);
    let x1 = int_vector(256, 1);
    let y1 = int_vector(256, 2);
    const ROUNDS: usize = 8;
    let mut outs = Vec::new();
    for _ in 0..ROUNDS {
        for spec in [
            LaunchSpec::fir_ir(&sig, &coeffs, 128),
            LaunchSpec::saxpy_ir(5, &x1, &y1),
            LaunchSpec::sum_ir(&x1),
        ] {
            let expected = spec.expected.clone();
            let name = spec.name.clone();
            let (off, len) = (spec.out_off, spec.out_len);
            s.launch(spec);
            outs.push((name, expected, s.copy_out(off, len)));
        }
    }
    rt.synchronize().expect("pipeline runs clean");
    for (name, expected, out) in outs {
        assert_eq!(out.wait().unwrap(), expected, "{name}");
    }

    let stats = rt.stats();
    println!(
        "\nruntime: {} launches, compile cache {} miss(es) / {} hit(s)  (hit rate {:.0}%)",
        stats.launches(),
        stats.compile_misses(),
        stats.compile_hits(),
        stats.compile_hit_rate() * 100.0
    );
    println!(
        "cached artifacts: {} (content-addressed: IR x config x opt level)",
        rt.compile_cache().len()
    );
    assert_eq!(stats.compile_misses(), 3, "three kernels, three compiles");
    assert_eq!(stats.compile_hits(), (ROUNDS as u64 - 1) * 3);
    println!("\nall outputs bit-exact against the host references");
}
