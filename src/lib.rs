//! Umbrella crate for the 950 MHz SIMT soft-processor reproduction.
//!
//! This crate exists to host the workspace-level integration tests
//! (`tests/`) and runnable examples (`examples/`). All functionality lives
//! in the member crates, re-exported here for convenience:
//!
//! * [`simt_isa`] — the PTX-inspired 61-instruction ISA, assembler and
//!   disassembler.
//! * [`simt_datapath`] — bit-exact models of the paper's ALU datapaths
//!   (DSP-decomposed 32×32 multiplier, multiplicative shifter, segmented
//!   prefix adder).
//! * [`simt_core`] — the cycle-accurate SIMT processor simulator.
//! * [`fpga_fabric`] — the Agilex-7 device model.
//! * [`fpga_fitter`] — the "virtual Quartus" synthesis / placement / STA
//!   pipeline that regenerates the paper's timing-closure results.
//! * [`simt_kernels`] — fixed-point kernels and host references.

pub use fpga_fabric;
pub use fpga_fitter;
pub use simt_core;
pub use simt_datapath;
pub use simt_isa;
pub use simt_kernels;
