//! Umbrella crate for the 950 MHz SIMT soft-processor reproduction.
//!
//! This crate hosts the workspace-level integration tests (`tests/`)
//! and runnable examples (`examples/`). All functionality lives in the
//! member crates, re-exported here for convenience.
//!
//! ## The crate graph, silicon to host
//!
//! ```text
//!   simt-isa ──────► simt-core ──────► simt-kernels ──► simt-graph
//!      │                 │  │  │           │    ▲            │
//!      │                 │  │  └► simt-compiler ┘            │
//!      │                 │  └──────► simt-system ─┐          │
//!      │                 ▼                        ▼          ▼
//!      │   fpga-fabric ► fpga-fitter      simt-runtime ◄─────┘
//!      │                     ▲            (streams, events, capture,
//!      └─────────────────────┘             least-loaded scheduler,
//!                                          graph replay, compile cache)
//! ```
//!
//! * [`simt_isa`] — the PTX-inspired 61-instruction ISA, assembler and
//!   disassembler, binary I-Mem images.
//! * [`simt_datapath`] — bit-exact models of the paper's ALU datapaths
//!   (DSP-decomposed 32×32 multiplier, multiplicative shifter, segmented
//!   prefix adder).
//! * [`simt_core`] — the cycle-accurate SIMT processor simulator.
//! * [`simt_compiler`] — the optimizing compiler: SSA kernel IR, pass
//!   pipeline (constant folding, strength reduction, CSE, DCE),
//!   linear-scan register allocation, lowering to the ISA, and the
//!   content-addressed [`simt_compiler::CompileCache`].
//! * [`fpga_fabric`] — the Agilex-7 device model.
//! * [`fpga_fitter`] — the "virtual Quartus" synthesis / placement / STA
//!   pipeline that regenerates the paper's timing-closure results.
//! * [`simt_kernels`] — fixed-point kernels, host references, and the
//!   [`simt_kernels::LaunchSpec`] descriptions the runtime launches
//!   (from text assembly or compiled IR frontends).
//! * [`simt_system`] — stamped multi-core systems with a word-serial
//!   interconnect and bulk-synchronous phases.
//! * [`simt_graph`] — execution graphs: launch/copy DAGs (built or
//!   captured from streams), IR-level fusion of back-to-back kernel
//!   chains with escape analysis.
//! * [`simt_runtime`] — the stream-oriented host runtime: CUDA-style
//!   streams, events, async launches and modeled copies over a pool of
//!   simulated devices, with least-loaded placement at dispatch, a
//!   discrete-event virtual timeline, graph capture/instantiate/replay,
//!   and a pool-wide LRU-bounded compile cache on the launch path.
//! * [`simt_fuzzgen`] — random-IR differential fuzzing: seeded
//!   generation of valid kernel IR, an every-path differential executor
//!   (O0/O2 × reference/predecoded × serial/parallel × eager/replayed),
//!   a greedy failure minimizer, and the pinned regression corpus.
//!
//! ## Stream-API quickstart
//!
//! ```
//! use simt_repro::simt_kernels::{workload::int_vector, LaunchSpec};
//! use simt_repro::simt_runtime::{Runtime, RuntimeConfig};
//!
//! let rt = Runtime::new(RuntimeConfig::default()); // 2-device pool
//! let stream = rt.stream();
//! let x = int_vector(256, 1);
//! let y = int_vector(256, 2);
//! let (spec, inputs) = LaunchSpec::saxpy(3, &x, &y).detach_inputs();
//! for (off, words) in &inputs {
//!     stream.copy_in(*off, words); // host→device at modeled link cost
//! }
//! let (off, len) = (spec.out_off, spec.out_len);
//! let expected = spec.expected.clone();
//! let launch = stream.launch(spec); // asynchronous
//! let out = stream.copy_out(off, len);
//! rt.synchronize().unwrap();
//! assert_eq!(out.wait().unwrap(), expected);
//! assert!(launch.wait().unwrap().cycles > 0);
//! ```

pub use fpga_fabric;
pub use fpga_fitter;
pub use simt_compiler;
pub use simt_core;
pub use simt_datapath;
pub use simt_fuzzgen;
pub use simt_graph;
pub use simt_isa;
pub use simt_kernels;
pub use simt_runtime;
pub use simt_system;
