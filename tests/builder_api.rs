//! The typed KernelBuilder used end-to-end: build programs without text
//! assembly, run them, verify against the text-assembled equivalents.

use simt_core::{Processor, ProcessorConfig, RunOptions};
use simt_isa::{assemble, disassemble, KernelBuilder};

#[test]
fn builder_program_equals_text_program() {
    let mut k = KernelBuilder::new();
    let tid = k.stid();
    let x = k.lds(tid, 0);
    let x3 = k.muli(x, 3);
    let y = k.addi(x3, 7);
    k.sts(tid, 64, y);
    k.exit();
    let built = k.build().unwrap();

    let texted = assemble(
        "  stid r1
           lds r2, [r1+0]
           muli r3, r2, 3
           addi r4, r3, 7
           sts [r1+64], r4
           exit",
    )
    .unwrap();
    assert_eq!(built.instructions(), texted.instructions());
    // And the built program disassembles to re-assemblable text.
    let p2 = assemble(&disassemble(&built)).unwrap();
    assert_eq!(built.instructions(), p2.instructions());
}

#[test]
fn builder_loop_runs_correctly() {
    let mut k = KernelBuilder::new();
    let acc = k.movi(0);
    let step = k.movi(3);
    let l = k.begin_loop(7);
    let s = k.add(acc, step);
    // accumulate in place: copy back (the builder is SSA-ish; mov lands
    // in a fresh register, so store the running value each iteration).
    k.sts(acc, 0, s);
    k.end_loop(l);
    k.exit();
    let p = k.build().unwrap();

    let mut cpu = Processor::new(ProcessorConfig::small()).unwrap();
    cpu.load_program(&p).unwrap();
    let stats = cpu.run(RunOptions::default()).unwrap();
    // Each iteration stores acc+step = 3 to shared[0] (acc register is
    // immutable); the point is the loop ran 7 times with no flushes.
    assert_eq!(cpu.shared().as_slice()[0], 3);
    assert_eq!(stats.loop_backedges, 6);
    assert_eq!(stats.branches_taken, 0);
}

#[test]
fn builder_guarded_kernel() {
    let mut k = KernelBuilder::new();
    let tid = k.stid();
    let threshold = k.movi(32);
    let p = k.setp_lt(0, tid, threshold);
    let a = k.movi(222);
    let b = k.movi(111);
    let v = k.selp(a, b, p);
    k.sts(tid, 0, v);
    k.exit();
    let program = k.build().unwrap();

    let mut cpu = Processor::new(ProcessorConfig::small().with_predicates(true)).unwrap();
    cpu.load_program(&program).unwrap();
    cpu.run(RunOptions::default()).unwrap();
    let mem = cpu.shared().as_slice();
    for (t, &v) in mem.iter().enumerate().take(64) {
        assert_eq!(v, if t < 32 { 222 } else { 111 });
    }
}

#[test]
fn builder_scaled_reduction_step() {
    // One halving step of a reduction, built programmatically with a
    // dynamic thread scale.
    let n = 64usize;
    let mut k = KernelBuilder::new();
    let tid = k.stid();
    k.sts(tid, 0, tid); // scratch[tid] = tid
    k.scale_next(1);
    let a = k.lds(tid, 0);
    k.scale_next(1);
    let b = k.lds(tid, n as u32 / 2);
    k.scale_next(1);
    let s = k.add(a, b);
    k.scale_next(1);
    k.sts(tid, 0, s);
    k.exit();
    let program = k.build().unwrap();

    let mut cpu = Processor::new(ProcessorConfig::small().with_threads(n)).unwrap();
    cpu.load_program(&program).unwrap();
    let stats = cpu.run(RunOptions::default()).unwrap();
    for t in 0..n / 2 {
        assert_eq!(cpu.shared().as_slice()[t] as usize, t + (t + n / 2));
    }
    // The scaled store streamed 32 threads, the full store 64.
    assert_eq!(stats.store_cycles, 64 + 32);
}
