//! The experiment suite: every table/figure anchor from EXPERIMENTS.md,
//! asserted end-to-end through the public APIs.

use fpga_fabric::Device;
use fpga_fitter::{best_of, compile, seed_sweep, CompileOptions, DesignVariant};
use simt_core::{InstructionTiming, ProcessorConfig};
use simt_datapath::{MultiplicativeShifter, ShiftKind};
use simt_isa::CycleClass;

const SEEDS: [u64; 5] = [0, 1, 2, 3, 4];

fn reference() -> (ProcessorConfig, Device) {
    (ProcessorConfig::default(), Device::agfd019())
}

// ---- T1: Table 1 -------------------------------------------------------

#[test]
fn t1_resource_rows() {
    let (cfg, dev) = reference();
    let a = compile(&cfg, &dev, &CompileOptions::constrained(0.93)).area;
    assert_eq!(
        (a.sp.alms, a.sp.regs, a.sp.m20k, a.sp.dsp),
        (371, 1337, 4, 2)
    );
    assert_eq!(
        (a.mul_sft.alms, a.mul_sft.regs, a.mul_sft.dsp),
        (145, 424, 2)
    );
    assert_eq!((a.logic.alms, a.logic.regs), (83, 424));
    assert_eq!((a.inst.alms, a.inst.regs, a.inst.m20k), (275, 651, 3));
    assert_eq!((a.shared.alms, a.shared.regs), (133, 233));
    assert_eq!(a.gpgpu.dsp, 32);
    assert_eq!(a.gpgpu.m20k, 99);
    assert!((a.gpgpu.alms as f64 - 7038.0).abs() / 7038.0 < 0.01);
    assert!((a.gpgpu.regs as f64 - 24534.0).abs() / 24534.0 < 0.01);
}

// ---- T2: Table 2 -------------------------------------------------------

#[test]
fn t2_stamping_best_of_five() {
    let (cfg, dev) = reference();
    let one = seed_sweep(&cfg, &dev, &CompileOptions::stamped(1, 0.93), &SEEDS);
    let three = seed_sweep(&cfg, &dev, &CompileOptions::stamped(3, 0.93), &SEEDS);
    let f1 = best_of(&one).fmax_restricted();
    let f3 = best_of(&three).fmax_restricted();
    assert!((f1 - 927.0).abs() / 927.0 < 0.02, "1-stamp {f1:.1} vs 927");
    assert!((f3 - 854.0).abs() / 854.0 < 0.02, "3-stamp {f3:.1} vs 854");
    // The ordering holds for every seed, not just the best.
    for (a, b) in one.iter().zip(&three) {
        assert!(a.fmax_restricted() > b.fmax_restricted());
    }
}

// ---- R1/R2: §5 compile results ------------------------------------------

#[test]
fn r1_unconstrained_fmax() {
    let (cfg, dev) = reference();
    let r = compile(&cfg, &dev, &CompileOptions::unconstrained());
    assert!(
        (r.fmax_logic() - 984.0).abs() / 984.0 < 0.03,
        "logic {:.1}",
        r.fmax_logic()
    );
    assert!(
        (r.fmax_restricted() - 956.0).abs() / 956.0 < 0.005,
        "restricted {:.1}",
        r.fmax_restricted()
    );
    assert!(
        r.sta.restricted_by.starts_with("dsp"),
        "{}",
        r.sta.restricted_by
    );
}

#[test]
fn r2_constrained_boxes_exceed_950() {
    let (cfg, dev) = reference();
    let sweep = seed_sweep(&cfg, &dev, &CompileOptions::constrained(0.86), &SEEDS);
    assert!(best_of(&sweep).fmax_restricted() > 950.0);
}

// ---- R3: register composition ------------------------------------------

#[test]
fn r3_sp_register_budget() {
    let (cfg, dev) = reference();
    let b = compile(&cfg, &dev, &CompileOptions::unconstrained())
        .area
        .sp_reg_budget;
    assert_eq!((b.primary, b.secondary, b.hyper), (763, 154, 420));
}

// ---- R4: eGPU baseline ----------------------------------------------------

#[test]
fn r4_egpu_baseline_771() {
    let (cfg, dev) = reference();
    let r = compile(
        &cfg,
        &dev,
        &CompileOptions::unconstrained().with_variant(DesignVariant::egpu_baseline()),
    );
    assert!(
        (r.fmax_restricted() - 771.0).abs() / 771.0 < 0.01,
        "{:.1}",
        r.fmax_restricted()
    );
}

// ---- R5: shifter closure ----------------------------------------------------

#[test]
fn r5_barrel_vs_multiplicative() {
    let (cfg, dev) = reference();
    let standalone = compile(
        &cfg,
        &dev,
        &CompileOptions::unconstrained()
            .with_variant(DesignVariant::with_barrel_shifter().standalone_sp()),
    );
    assert!(
        standalone.fmax_logic() >= 1000.0,
        "{:.1}",
        standalone.fmax_logic()
    );

    let sm = compile(
        &cfg,
        &dev,
        &CompileOptions::unconstrained().with_variant(DesignVariant::with_barrel_shifter()),
    );
    assert!(sm.fmax_logic() < 850.0, "{:.1}", sm.fmax_logic());
    assert!(sm.sta.critical.name.contains("16-bit"));

    let fixed = compile(&cfg, &dev, &CompileOptions::unconstrained());
    assert!(fixed.fmax_logic() > 950.0);
}

#[test]
fn r5b_mlab_trap() {
    // §5: auto-shift-register-replacement must be OFF, else the 850 MHz
    // memory-mode ALM caps the clock.
    let (cfg, dev) = reference();
    let mut v = DesignVariant::this_work();
    v.auto_shift_register_replacement = true;
    let r = compile(&cfg, &dev, &CompileOptions::unconstrained().with_variant(v));
    assert_eq!(r.fmax_restricted(), 850.0);
}

// ---- F5: Figure 5 -----------------------------------------------------------

#[test]
fn f5_arithmetic_shift_walkthrough() {
    let sh = MultiplicativeShifter::new(12);
    let t = sh.shift_traced(ShiftKind::Asr, 0b1100_0110_1111, 5);
    assert_eq!(t.reversed_input, Some(0b1111_0110_0011));
    assert_eq!(t.one_hot, 0b0000_0010_0000);
    assert_eq!(t.or_mask, 0b1111_1000_0000);
    assert_eq!(t.result as i32 - 4096, -29);
}

// ---- F6/F7: floorplans ------------------------------------------------------

#[test]
fn f6_f7_floorplans_render() {
    let (cfg, dev) = reference();
    let un = compile(&cfg, &dev, &CompileOptions::unconstrained());
    let fig6 = fpga_fitter::render(&dev, &un.placement);
    assert!(fig6.contains('|') && fig6.contains('s') && fig6.contains('f'));

    let tight = compile(&cfg, &dev, &CompileOptions::constrained(0.93));
    let fig7 = fpga_fitter::render(&dev, &tight.placement);
    let width = |s: &str| s.lines().nth(1).map(|l| l.len()).unwrap_or(0);
    assert!(width(&fig7) < width(&fig6), "tight box is narrower");
}

// ---- C1: §3.1 cycle anchors -------------------------------------------------

#[test]
fn c1_cycle_formulas() {
    assert_eq!(InstructionTiming::cycles(CycleClass::Operation, 512), 32);
    assert_eq!(InstructionTiming::cycles(CycleClass::Load, 512), 128);
    assert_eq!(InstructionTiming::cycles(CycleClass::Store, 512), 512);
    assert_eq!(InstructionTiming::cycles(CycleClass::SingleCycle, 512), 1);
}

// ---- headline ------------------------------------------------------------

#[test]
fn headline_exceeds_950() {
    // "we implement a soft GPGPU which exceeds 950 MHz" — for the
    // unconstrained compile on any seed, and for the 86 % box over a
    // short seed sweep (seed noise can dip an individual constrained
    // compile a few MHz).
    let (cfg, dev) = reference();
    let r = compile(&cfg, &dev, &CompileOptions::unconstrained());
    assert!(r.fmax_restricted() > 950.0);
    let sweep = seed_sweep(&cfg, &dev, &CompileOptions::constrained(0.86), &[0, 1, 2]);
    assert!(best_of(&sweep).fmax_restricted() > 950.0);
}
