//! Cross-crate end-to-end tests: kernels assembled from `simt-kernels`
//! sources, run on `simt-core`, verified against host references, and
//! wall-clock-projected at the Fmax the `fpga-fitter` compile produces.

use fpga_fabric::Device;
use fpga_fitter::{compile, CompileOptions, DesignVariant};
use simt_core::ProcessorConfig;
use simt_kernels::workload::{int_vector, lowpass_taps, q15_matrix, q15_signal};
use simt_kernels::{fir, matmul, reduce, vector};

#[test]
fn full_stack_fir() {
    let n = 256;
    let taps = lowpass_taps(16);
    let x = q15_signal(n + taps.len() - 1, 99);
    let (y, run) = fir::fir(&x, &taps, n).unwrap();
    assert_eq!(y, fir::fir_ref(&x, &taps, n));

    // Project onto the compiled clock.
    let r = compile(
        &ProcessorConfig::default(),
        &Device::agfd019(),
        &CompileOptions::unconstrained(),
    );
    let us = run.stats.seconds_at(r.fmax_restricted()) * 1e6;
    assert!(us > 0.0 && us < 100.0, "unreasonable projection {us}");
}

#[test]
fn kernels_agree_across_thread_counts() {
    for n in [16usize, 64, 128, 512, 1024] {
        let x = int_vector(n, n as u64);
        let y = int_vector(n, 2 * n as u64);
        let (z, _) = vector::saxpy(-3, &x, &y).unwrap();
        assert_eq!(z, vector::saxpy_ref(-3, &x, &y), "saxpy n={n}");
    }
}

#[test]
fn reduction_speedup_grows_with_n() {
    // The dynamic-scaling advantage compounds with thread count: the
    // predicated tree pays full-width stores every level.
    let mut last_ratio = 0.0;
    for n in [64usize, 256, 1024] {
        let x = int_vector(n, 5);
        let y = int_vector(n, 6);
        let (_, s) = reduce::dot_scaled(&x, &y).unwrap();
        let (_, m) = reduce::dot_predicated(&x, &y).unwrap();
        let ratio = m.stats.cycles as f64 / s.stats.cycles as f64;
        assert!(
            ratio > last_ratio,
            "n={n}: ratio {ratio:.2} <= {last_ratio:.2}"
        );
        last_ratio = ratio;
    }
    assert!(last_ratio > 4.0, "1024-wide speedup only {last_ratio:.2}x");
}

#[test]
fn matmul_various_shapes() {
    for (m, k, n) in [
        (2usize, 2usize, 2usize),
        (4, 8, 4),
        (16, 4, 32),
        (32, 32, 16),
    ] {
        let a = q15_matrix(m, k, 1);
        let b = q15_matrix(k, n, 2);
        let (c, _) = matmul::matmul(&a, &b, m, k, n).unwrap();
        assert_eq!(c, matmul::matmul_ref(&a, &b, m, k, n), "{m}x{k}x{n}");
    }
}

#[test]
fn egpu_vs_this_work_wall_clock() {
    // Same program, same clocks; the integer-mode clock uplift is the
    // §2.1 speedup.
    let dev = Device::agfd019();
    let cfg = ProcessorConfig::default();
    let base = compile(
        &cfg,
        &dev,
        &CompileOptions::unconstrained().with_variant(DesignVariant::egpu_baseline()),
    )
    .fmax_restricted();
    let this = compile(&cfg, &dev, &CompileOptions::unconstrained()).fmax_restricted();

    let x = int_vector(1024, 1);
    let y = int_vector(1024, 2);
    let (_, run) = reduce::dot_scaled(&x, &y).unwrap();
    let t_base = run.stats.seconds_at(base);
    let t_this = run.stats.seconds_at(this);
    let speedup = t_base / t_this;
    assert!(
        (speedup - 956.0 / 771.0).abs() < 0.02,
        "speedup {speedup:.3} should track the clock ratio"
    );
}

#[test]
fn predicate_free_build_rejects_predicated_reduction() {
    // The §2 configuration economy: a predicate-free build cannot load
    // the predicated kernel at all.
    let n = 64;
    let src = reduce::dot_asm_predicated(n);
    let program = simt_isa::assemble(&src).unwrap();
    let mut cpu = simt_core::Processor::new(
        ProcessorConfig::default()
            .with_threads(n)
            .with_predicates(false),
    )
    .unwrap();
    assert!(matches!(
        cpu.load_program(&program),
        Err(simt_core::LoadError::PredicatesDisabled { .. })
    ));
}

#[test]
fn datapath_identity_inside_the_simulator() {
    // The multiplier's DSP-vector composition is exercised by the
    // simulator on live data: mul.hi of large operands.
    let n = 64;
    let x = simt_kernels::workload::wide_int_vector(n, 31);
    let xw: Vec<u32> = x.iter().map(|&v| v as u32).collect();
    let r = simt_kernels::run_kernel(
        ProcessorConfig::default().with_threads(n),
        "  stid r1
           lds r2, [r1+0]
           mul.hi r3, r2, r2
           sts [r1+128], r3
           exit",
        &[(0, &xw)],
        128,
        n,
        simt_core::RunOptions::default(),
    )
    .unwrap();
    for (i, &got) in r.output.iter().enumerate() {
        let want = (((x[i] as i64) * (x[i] as i64)) >> 32) as u32;
        assert_eq!(got, want, "thread {i}");
    }
}
